//! Seeded property tests for the DoE engine's work-stealing pool, driven by
//! the in-workspace `Rng64` PRNG: random job counts and widths, with random
//! panic injection. Invariants:
//!
//! * every non-panicking job completes **exactly once** and its result
//!   lands in its submission slot;
//! * a panicking job is reported as a failed point in its own slot and does
//!   not poison the pool, abort siblings, or lose their results.

use ffet_core::runner::{Disposition, JobError, Pool};
use ffet_geom::Rng64;
use std::sync::atomic::{AtomicU32, Ordering};

#[test]
fn random_grids_complete_exactly_once_at_random_widths() {
    let mut rng = Rng64::new(0xD0E_5EED);
    for round in 0..16usize {
        let n = rng.range_usize(0, 48);
        let width = rng.range_usize(1, 9);
        let executions: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let pool = Pool::new(width);
        let out = pool.run((0..n).collect(), |&i: &usize| {
            executions[i].fetch_add(1, Ordering::SeqCst);
            Ok::<usize, String>(i.wrapping_mul(31) ^ round)
        });
        assert_eq!(out.len(), n, "round {round}: one outcome per job");
        for (i, o) in out.iter().enumerate() {
            assert_eq!(
                executions[i].load(Ordering::SeqCst),
                1,
                "round {round}: job {i} ran exactly once at width {width}"
            );
            assert_eq!(o.stats.index, i, "submission-order reassembly");
            assert!(o.stats.worker < width, "worker id within pool width");
            assert_eq!(
                *o.result.as_ref().expect("no job failed"),
                i.wrapping_mul(31) ^ round
            );
        }
    }
}

#[test]
fn injected_panics_become_failed_points_without_poisoning_the_pool() {
    let mut rng = Rng64::new(0xBAD_CA11);
    for round in 0..12 {
        let n = rng.range_usize(1, 40);
        let width = rng.range_usize(1, 7);
        let panics: Vec<bool> = (0..n).map(|_| rng.f64() < 0.25).collect();
        let executions: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let pool = Pool::new(width);
        let out = pool.run((0..n).collect(), |&i: &usize| {
            executions[i].fetch_add(1, Ordering::SeqCst);
            assert!(!panics[i], "injected panic in job {i}");
            Ok::<usize, String>(i)
        });
        assert_eq!(out.len(), n);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(
                executions[i].load(Ordering::SeqCst),
                1,
                "round {round}: job {i} ran exactly once despite sibling panics"
            );
            if panics[i] {
                match &o.result {
                    Err(JobError::Panicked(msg)) => {
                        assert!(
                            msg.contains("injected panic"),
                            "panic message is carried: {msg}"
                        );
                    }
                    other => panic!("round {round}: job {i} should have panicked, got {other:?}"),
                }
                assert!(
                    matches!(o.stats.disposition, Disposition::Panicked(_)),
                    "disposition records the panic"
                );
            } else {
                assert_eq!(*o.result.as_ref().expect("survivor completes"), i);
                assert!(o.stats.disposition.is_ok());
            }
        }
    }
}

/// Errors and panics coexist in one grid; each lands in its own slot with
/// the matching disposition string for the run log.
#[test]
fn mixed_error_and_panic_grid_keeps_slots_straight() {
    let pool = Pool::new(3);
    let out = pool.run((0..30u64).collect(), |&i: &u64| {
        if i.is_multiple_of(5) {
            Err(format!("refused {i}"))
        } else if i.is_multiple_of(7) {
            panic!("blew up {i}");
        } else {
            Ok(i * 2)
        }
    });
    for (i, o) in out.iter().enumerate() {
        let i = i as u64;
        if i.is_multiple_of(5) {
            assert!(matches!(&o.result, Err(JobError::Failed(m)) if m == &format!("refused {i}")));
            assert_eq!(
                o.stats.disposition.to_cell(),
                format!("failed: refused {i}")
            );
        } else if i.is_multiple_of(7) {
            assert!(matches!(&o.result, Err(JobError::Panicked(m)) if m.contains("blew up")));
        } else {
            assert_eq!(*o.result.as_ref().expect("plain job"), i * 2);
        }
    }
}

/// A seeded stress shape: many more jobs than workers, with strongly skewed
/// job durations, exercises injector batching plus stealing. The pool must
/// still return every result in submission order.
#[test]
fn skewed_durations_still_reassemble_in_order() {
    let mut rng = Rng64::new(42);
    let costs: Vec<u64> = (0..120).map(|_| rng.range_i64(0, 200) as u64).collect();
    let pool = Pool::new(5);
    let out = pool.run(costs.clone(), |&c: &u64| {
        // Busy work proportional to the random cost so completion order is
        // thoroughly scrambled relative to submission order.
        let mut acc = 0u64;
        for k in 0..(c * 500) {
            acc = acc.wrapping_add(k).rotate_left(7);
        }
        std::hint::black_box(acc);
        Ok::<u64, String>(c)
    });
    assert_eq!(out.len(), costs.len());
    for (o, &c) in out.iter().zip(&costs) {
        assert_eq!(*o.result.as_ref().expect("busy work succeeds"), c);
    }
}
