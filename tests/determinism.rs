//! The DoE engine's determinism contract, enforced end to end:
//!
//! * an experiment produces **byte-identical** CSV tables and identical
//!   `PpaReport`s at every pool width (submission-order reassembly,
//!   per-job seeds, no cross-job communication);
//! * a single `run_flow` call is bit-reproducible, down to the signoff and
//!   timing reports.

use ffet_core::experiments::{self, DesignKind};
use ffet_core::runner::Pool;
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};

/// The same seeded sweep at `jobs=1` and `jobs=4` must agree byte for byte
/// on every table artifact and on every underlying report.
#[test]
fn fig8_sweep_is_pool_width_invariant() {
    let serial = experiments::fig8_on(DesignKind::CounterSmall, &Pool::new(1));
    let parallel = experiments::fig8_on(DesignKind::CounterSmall, &Pool::new(4));
    assert_eq!(
        serial.table.to_csv(),
        parallel.table.to_csv(),
        "CSV must be byte-identical at jobs=1 and jobs=4"
    );
    assert_eq!(serial.max_utils, parallel.max_utils);
    // Full PpaReport equality per sweep point, not just the rendered table.
    assert_eq!(serial.sweeps, parallel.sweeps);
}

/// A mixed grid (baseline + 13 DoE rows sharing one netlist) reassembles
/// identically at any width, including the diff-vs-baseline columns.
#[test]
fn table3_is_pool_width_invariant() {
    let serial = experiments::table3_on(DesignKind::CounterSmall, &Pool::new(1));
    let parallel = experiments::table3_on(DesignKind::CounterSmall, &Pool::new(4));
    assert_eq!(serial.table.to_csv(), parallel.table.to_csv());
    assert_eq!(serial.rows_data, parallel.rows_data);
}

/// Two `run_flow` calls with the same `FlowConfig` produce identical
/// signoff and timing reports (not just the summary PPA numbers).
#[test]
fn run_flow_reproduces_signoff_and_timing_reports() {
    let config = FlowConfig {
        utilization: 0.6,
        pattern: RoutingPattern::new(6, 6).expect("legal"),
        back_pin_ratio: 0.5,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);
    let a = run_flow(&netlist, &library, &config).expect("flow completes");
    let b = run_flow(&netlist, &library, &config).expect("flow completes");
    assert_eq!(a.report, b.report);
    assert_eq!(a.signoff, b.signoff, "signoff report is reproducible");
    assert_eq!(a.timing, b.timing, "timing report is reproducible");
    assert_eq!(a.merged_def.nets.len(), b.merged_def.nets.len());
}
