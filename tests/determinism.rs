//! The DoE engine's determinism contract, enforced end to end:
//!
//! * an experiment produces **byte-identical** CSV tables and identical
//!   `PpaReport`s at every pool width (submission-order reassembly,
//!   per-job seeds, no cross-job communication);
//! * a single `run_flow` call is bit-reproducible, down to the signoff and
//!   timing reports;
//! * the DoE pool width (`FFET_JOBS`) and the router's intra-point worker
//!   count (`FFET_ROUTE_JOBS`) are *independent* knobs — every point of
//!   the {1,4} × {1,4} cross-matrix agrees byte for byte.

use ffet_core::experiments::{self, utilization_sweep, DesignKind};
use ffet_core::runner::Pool;
use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};

/// The same seeded sweep at `jobs=1` and `jobs=4` must agree byte for byte
/// on every table artifact and on every underlying report.
#[test]
fn fig8_sweep_is_pool_width_invariant() {
    let serial = experiments::fig8_on(DesignKind::CounterSmall, &Pool::new(1));
    let parallel = experiments::fig8_on(DesignKind::CounterSmall, &Pool::new(4));
    assert_eq!(
        serial.table.to_csv(),
        parallel.table.to_csv(),
        "CSV must be byte-identical at jobs=1 and jobs=4"
    );
    assert_eq!(serial.max_utils, parallel.max_utils);
    // Full PpaReport equality per sweep point, not just the rendered table.
    assert_eq!(serial.sweeps, parallel.sweeps);
}

/// A mixed grid (baseline + 13 DoE rows sharing one netlist) reassembles
/// identically at any width, including the diff-vs-baseline columns.
#[test]
fn table3_is_pool_width_invariant() {
    let serial = experiments::table3_on(DesignKind::CounterSmall, &Pool::new(1));
    let parallel = experiments::table3_on(DesignKind::CounterSmall, &Pool::new(4));
    assert_eq!(serial.table.to_csv(), parallel.table.to_csv());
    assert_eq!(serial.rows_data, parallel.rows_data);
}

/// The {`FFET_JOBS`} × {`FFET_ROUTE_JOBS`} cross-matrix: a sweep's full
/// per-point results (reports, signoff, recovery dispositions) must be
/// identical at every combination of DoE pool width and router worker
/// count — the two levels of parallelism compose without touching a byte.
#[test]
fn sweep_is_invariant_across_jobs_and_route_jobs_matrix() {
    let base = FlowConfig {
        pattern: RoutingPattern::new(12, 12).expect("legal"),
        back_pin_ratio: 0.5,
        utilization: 0.6,
        route_jobs: 1,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = base.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);
    let utils = [0.58, 0.62];
    let reference = utilization_sweep(&Pool::new(1), &netlist, &library, &base, &utils).1;
    assert_eq!(reference.len(), utils.len(), "sweep closes at both points");
    for jobs in [1usize, 4] {
        for route_jobs in [1usize, 4] {
            if (jobs, route_jobs) == (1, 1) {
                continue;
            }
            let mut config = base.clone();
            config.route_jobs = route_jobs;
            let points = utilization_sweep(&Pool::new(jobs), &netlist, &library, &config, &utils).1;
            assert_eq!(
                reference, points,
                "jobs={jobs} route_jobs={route_jobs} diverged from jobs=1 route_jobs=1"
            );
        }
    }
}

/// Two `run_flow` calls with the same `FlowConfig` produce identical
/// signoff and timing reports (not just the summary PPA numbers).
#[test]
fn run_flow_reproduces_signoff_and_timing_reports() {
    let config = FlowConfig {
        utilization: 0.6,
        pattern: RoutingPattern::new(6, 6).expect("legal"),
        back_pin_ratio: 0.5,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);
    let a = run_flow(&netlist, &library, &config).expect("flow completes");
    let b = run_flow(&netlist, &library, &config).expect("flow completes");
    assert_eq!(a.report, b.report);
    assert_eq!(a.signoff, b.signoff, "signoff report is reproducible");
    assert_eq!(a.timing, b.timing, "timing report is reproducible");
    assert_eq!(a.merged_def.nets.len(), b.merged_def.nets.len());
}
