//! The full flow must come out of static signoff with zero error-severity
//! violations on valid configurations of both technologies (warnings are
//! allowed: they are the congestion/legality view of the DRV proxy).

use ffet_core::{designs, run_flow, FlowConfig};
use ffet_tech::{RoutingPattern, TechKind};

fn assert_clean(label: &str, config: &FlowConfig) {
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);
    let outcome = run_flow(&netlist, &library, config)
        .unwrap_or_else(|e| panic!("{label}: flow fails signoff: {e}"));
    assert!(
        outcome.signoff.is_clean(),
        "{label}:\n{}",
        outcome.signoff.text_table()
    );
    assert_eq!(outcome.report.signoff, "PASS", "{label}");
    assert_eq!(
        outcome.report.signoff_warnings,
        outcome.signoff.drv_warnings(),
        "{label}"
    );
}

#[test]
fn ffet_single_sided_baseline_passes_signoff() {
    assert_clean("FFET FM12BM0", &FlowConfig::baseline(TechKind::Ffet3p5t));
}

#[test]
fn ffet_dual_sided_passes_signoff() {
    assert_clean(
        "FFET FM6BM6 BP0.3",
        &FlowConfig {
            pattern: RoutingPattern::new(6, 6).expect("static"),
            back_pin_ratio: 0.3,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        },
    );
}

#[test]
fn cfet_baseline_passes_signoff() {
    assert_clean("CFET FM12", &FlowConfig::baseline(TechKind::Cfet4t));
}
