//! Golden-run regression tests: the experiment tables for the CounterSmall
//! design, diffed byte-for-byte against checked-in CSVs under
//! `tests/golden/`.
//!
//! These pin the full pipeline — synthesis, P&R, extraction, STA, table
//! formatting — so any unintended numeric or formatting drift fails CI.
//! They run on the env-configured DoE pool (`FFET_JOBS`), so the CI matrix
//! exercises the byte-identical-at-any-width contract for free.
//!
//! After an *intentional* change to flow numerics, re-bless the goldens:
//!
//! ```text
//! FFET_BLESS=1 cargo test -p ffet-core --test golden_experiments
//! ```

use ffet_core::experiments::{self, DesignKind};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/golden/{name}.csv"))
}

/// Diffs `fresh` against the checked-in golden, or regenerates the golden
/// when `FFET_BLESS=1` is set.
fn check_golden(name: &str, fresh: &str) {
    let path = golden_path(name);
    if std::env::var("FFET_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, fresh).expect("write golden");
        // Bless-mode feedback for the human running FFET_BLESS=1.
        #[allow(clippy::print_stderr)]
        {
            eprintln!("blessed {}", path.display());
        }
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with FFET_BLESS=1 cargo test -p ffet-core --test golden_experiments",
            path.display()
        )
    });
    if want != fresh {
        let diff_line = want
            .lines()
            .zip(fresh.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || {
                    format!(
                        "line counts differ ({} vs {})",
                        want.lines().count(),
                        fresh.lines().count()
                    )
                },
                |i| {
                    format!(
                        "first difference at line {}:\n  golden: {}\n  fresh:  {}",
                        i + 1,
                        want.lines().nth(i).unwrap_or(""),
                        fresh.lines().nth(i).unwrap_or("")
                    )
                },
            );
        panic!(
            "{name} drifted from tests/golden/{name}.csv — {diff_line}\n\
             If the change is intentional, re-bless with FFET_BLESS=1."
        );
    }
}

#[test]
fn golden_fig8_counter() {
    let fig8 = experiments::fig8_with(DesignKind::CounterSmall);
    check_golden("fig8_counter", &fig8.table.to_csv());
}

#[test]
fn golden_fig9_counter() {
    let fig9 = experiments::fig9_with(DesignKind::CounterSmall);
    check_golden("fig9_counter", &fig9.table.to_csv());
}

#[test]
fn golden_table3_counter() {
    let table3 = experiments::table3_with(DesignKind::CounterSmall);
    check_golden("table3_counter", &table3.table.to_csv());
}

#[test]
fn golden_ablation_counter() {
    let ablation = experiments::bridging_ablation_with(DesignKind::CounterSmall);
    check_golden("ablation_counter", &ablation.table.to_csv());
}

/// The analytic (non-flow) tables are golden-pinned too; they are cheap and
/// catch library/characterization drift at the source.
#[test]
fn golden_table1() {
    check_golden("table1", &experiments::table1().table.to_csv());
}

#[test]
fn golden_fig4() {
    check_golden("fig4", &experiments::fig4().table.to_csv());
}
