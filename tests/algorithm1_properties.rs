//! Property-style integration tests of the paper's Algorithm 1 across the
//! crates: decomposition invariants, routing connectivity, and the
//! single/dual-sided equivalence of the extracted design.

use ffet_core::{designs, run_flow, FlowConfig};
use ffet_geom::Rng64;
use ffet_pnr::{decompose_nets, floorplan, place, powerplan};
use ffet_tech::{RoutingPattern, Side, TechKind};

/// For any backside pin ratio and legal layer split, Algorithm 1
/// conserves sinks: every sink pin appears in exactly one sub-net, and
/// sources are duplicated at most once per side.
#[test]
fn decomposition_conserves_sinks() {
    let mut rng = Rng64::new(0xa151);
    for _case in 0..6 {
        let bp = 0.05 + rng.f64() * 0.9;
        let back_layers = rng.range_i64(2, 12) as u8;
        let seed = rng.range_i64(0, 1000) as u64;
        let config = FlowConfig {
            back_pin_ratio: bp,
            pattern: RoutingPattern::new(12 - back_layers.min(6), back_layers).expect("legal"),
            seed,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 12);
        let fp = floorplan(&netlist, &library, 0.6, 1.0).expect("floorplan");
        let pp = powerplan(&fp, &library, config.pattern);
        let pl = place(&netlist, &library, &fp, &pp, seed);
        let side_nets =
            decompose_nets(&netlist, &library, &pl, config.pattern).expect("all pins routable");

        let total_sinks: usize = side_nets.iter().map(|n| n.pins.len() - 1).sum();
        let expected: usize = netlist.nets().iter().map(|n| n.sinks.len()).sum::<usize>()
            + netlist
                .ports()
                .iter()
                .filter(|p| p.direction == ffet_netlist::PortDirection::Output)
                .count();
        assert_eq!(total_sinks, expected, "bp={bp} back={back_layers}");

        // At most one front and one back sub-net per net.
        for net_id in side_nets
            .iter()
            .map(|n| n.net)
            .collect::<std::collections::HashSet<_>>()
        {
            for side in [Side::Front, Side::Back] {
                let count = side_nets
                    .iter()
                    .filter(|n| n.net == net_id && n.side == side)
                    .count();
                assert!(count <= 1, "net {net_id:?} has {count} {side} sub-nets");
            }
        }
    }
}

/// PPA reports are well-formed across the DoE space: positive area,
/// frequency, power; backside wirelength zero iff no backside layers.
#[test]
fn flow_reports_well_formed() {
    let mut rng = Rng64::new(0xf10e);
    for _case in 0..6 {
        let bp = [0.16, 0.3, 0.5][rng.range_usize(0, 3)];
        let fm = rng.range_i64(4, 10) as u8;
        let bm = 12 - fm; // total budget 12, like Table III
        let util = 0.45 + rng.f64() * 0.25;
        let config = FlowConfig {
            back_pin_ratio: bp,
            pattern: RoutingPattern::new(fm, bm).expect("legal"),
            utilization: util,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 12);
        let o = run_flow(&netlist, &library, &config).expect("flow");
        assert!(o.report.core_area_um2 > 0.0);
        assert!(o.report.achieved_freq_ghz > 0.0);
        assert!(o.report.power_mw > 0.0);
        assert!(o.report.leakage_mw > 0.0);
        assert!(o.report.wirelength_mm > 0.0);
        assert!(o.report.back_wirelength_mm >= 0.0);
        assert!(o.report.wirelength_mm >= o.report.back_wirelength_mm);
    }
}
