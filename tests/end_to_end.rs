//! Cross-crate integration tests: the complete paper flow from a verified
//! gate-level core to a PPA report, exercising every substrate together.

use ffet_core::{designs, run_flow, FlowConfig};
use ffet_lefdef::{parse_def, write_def};
use ffet_rv32::{build_core, cosimulate, programs};
use ffet_tech::{RoutingPattern, TechKind};

/// The cosimulated RV32 core carried all the way through the FFET
/// dual-sided flow on a small utilization: functional correctness and
/// physical implementation of the same netlist.
#[test]
fn verified_core_flows_to_valid_ppa() {
    let config = FlowConfig {
        utilization: 0.6,
        pattern: RoutingPattern::new(8, 4).expect("legal"),
        back_pin_ratio: 0.3,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");

    // Functional proof first.
    let core = build_core(&library, "rv32_core");
    let cosim = cosimulate(&core, &library, &programs::sum_loop(20), 1_000)
        .expect("core executes sum loop");
    assert!(cosim.retired > 40);

    // Physical implementation of that same netlist.
    let outcome = run_flow(&core.netlist, &library, &config).expect("flow completes");
    let r = &outcome.report;
    assert!(r.core_area_um2 > 100.0, "rv32 core is not tiny");
    assert!(r.achieved_freq_ghz > 0.05);
    assert!(r.power_mw > 0.1);
    assert!(r.back_wirelength_mm > 0.0, "backside routing used");
    assert!(r.cells > 8_000, "rv32 post-synthesis size: {}", r.cells);
}

/// The merged DEF artifact is a faithful, parseable database: round-trips
/// through text and keeps the routing of both sides.
#[test]
fn merged_def_roundtrips_and_carries_both_sides() {
    let config = FlowConfig {
        utilization: 0.6,
        pattern: RoutingPattern::new(6, 6).expect("legal"),
        back_pin_ratio: 0.5,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);
    let outcome = run_flow(&netlist, &library, &config).expect("flow completes");

    let text = write_def(&outcome.merged_def);
    let parsed = parse_def(&text).expect("merged DEF parses back");
    assert_eq!(parsed, outcome.merged_def);

    let front_wl: i64 = outcome.pnr.front_def.total_wirelength();
    let back_wl: i64 = outcome.pnr.back_def.total_wirelength();
    assert!(front_wl > 0 && back_wl > 0);
    assert_eq!(outcome.merged_def.total_wirelength(), front_wl + back_wl);
}

/// CFET and FFET implement the *same* netlist (library cell ids are
/// technology-independent), and the FFET core is smaller at equal
/// utilization — the Fig. 8 area mechanism.
#[test]
fn same_netlist_smaller_ffet_core() {
    let cfet_cfg = FlowConfig {
        utilization: 0.6,
        ..FlowConfig::baseline(TechKind::Cfet4t)
    };
    let ffet_cfg = FlowConfig {
        utilization: 0.6,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let cfet_lib = cfet_cfg.build_library().expect("valid config");
    let ffet_lib = ffet_cfg.build_library().expect("valid config");
    // One netlist, built once, implemented twice.
    let netlist = designs::counter_pipeline(&cfet_lib, 16);
    let c = run_flow(&netlist, &cfet_lib, &cfet_cfg).expect("cfet flow");
    let f = run_flow(&netlist, &ffet_lib, &ffet_cfg).expect("ffet flow");
    assert!(
        f.report.core_area_um2 < c.report.core_area_um2 * 0.9,
        "ffet {} vs cfet {}",
        f.report.core_area_um2,
        c.report.core_area_um2
    );
    // Leakage power never differs by technology (Table I mechanism) by
    // more than sizing noise.
    assert!((f.report.leakage_mw - c.report.leakage_mw).abs() / c.report.leakage_mw < 0.2);
}

/// Determinism across the whole pipeline: identical configs produce
/// identical reports (placement, routing, extraction and STA are all
/// seed-driven, never time- or address-dependent).
#[test]
fn full_flow_is_deterministic() {
    let config = FlowConfig {
        utilization: 0.55,
        pattern: RoutingPattern::new(6, 6).expect("legal"),
        back_pin_ratio: 0.5,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 12);
    let a = run_flow(&netlist, &library, &config).expect("flow");
    let b = run_flow(&netlist, &library, &config).expect("flow");
    assert_eq!(a.report, b.report);
    assert_eq!(a.merged_def, b.merged_def);
}
