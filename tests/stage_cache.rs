//! The stage-cache contract (DESIGN §14), enforced end to end:
//!
//! * a **warm** rerun of a sweep — every stage replaying from the
//!   content-addressed store — produces byte-identical tables, reports,
//!   and timing-stripped metrics at `jobs=1` and `jobs=4`, while
//!   executing ≥ 30% fewer stage invocations than the cold run;
//! * a **poisoned** blob (payload bytes no longer hashing to their
//!   address) is a deterministic miss: the stage recomputes and the flow
//!   result is exactly the uncached one — a corrupt cache can cost time
//!   but never correctness;
//! * a **faulted** run never reads from or writes to the cache: fault
//!   plans force the cache off, so injected corruption cannot poison a
//!   later clean run, and a clean prefix cannot mask an injected fault.

use ffet_core::experiments::{self, utilization_sweep, DesignKind};
use ffet_core::{designs, run_flow, Fault, FaultKind, FaultPlan, FlowConfig, Pool};
use ffet_tech::{RoutingPattern, TechKind};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes every test in this binary: they share the process-global
/// cache-stats registry (and one test mutates the cache-root env var).
static STATS_GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned guard just means another test's assertion fired; the
    // registry is still usable because every test resets it on entry.
    STATS_GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffet-scache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The golden-proven dual-sided configuration (same as the fault matrix):
/// FM12BM12 BP0.5 closes cleanly on the counter pipeline, with the stage
/// cache pointed at an explicit scratch root (never the env: tests run in
/// parallel threads and must not leak a cache root into each other).
fn base_config(root: &Path) -> FlowConfig {
    FlowConfig {
        pattern: RoutingPattern::new(12, 12).expect("static"),
        back_pin_ratio: 0.5,
        utilization: 0.6,
        stage_cache: Some(root.to_path_buf()),
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    }
}

/// Sums every `cache.{kind}.*` counter currently in the registry.
fn stat_total(kind: &str) -> u64 {
    let prefix = format!("cache.{kind}.");
    ffet_obs::cache_stats()
        .iter()
        .filter(|(name, _)| name.starts_with(&prefix))
        .map(|&(_, n)| n)
        .sum()
}

/// Renders a sweep's traces the way the repro driver does, then strips
/// the host-dependent `timing` section; what remains must be bytes-equal
/// between cold and warm runs.
fn stripped_metrics(jobs: usize, traces: Vec<ffet_obs::LabeledPoint>) -> (String, String) {
    let mut artifacts = ffet_obs::RunArtifacts::new(jobs);
    artifacts.extend(traces);
    let metrics = ffet_obs::strip_timing(&artifacts.metrics_json()).expect("strip timing");
    (metrics, artifacts.trace_jsonl())
}

#[test]
fn warm_sweep_is_byte_identical_and_skips_stages_at_any_pool_width() {
    let _g = lock();
    let root = scratch("warm");
    let base = base_config(&root);
    let library = base.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);
    let utils = [0.58, 0.62];

    ffet_obs::cache_stats_reset();
    let cold = utilization_sweep(&Pool::new(1), &netlist, &library, &base, &utils);
    let cold_misses = stat_total("miss");
    assert!(
        stat_total("store") > 0,
        "cold run must populate the cache (stats: {:?})",
        ffet_obs::cache_stats()
    );
    let (cold_metrics, cold_trace) = stripped_metrics(1, cold.3);

    for jobs in [1usize, 4] {
        ffet_obs::cache_stats_reset();
        let warm = utilization_sweep(&Pool::new(jobs), &netlist, &library, &base, &utils);
        assert_eq!(cold.0, warm.0, "max-util column diverged at jobs={jobs}");
        assert_eq!(cold.1, warm.1, "sweep reports diverged at jobs={jobs}");

        let warm_hits = stat_total("hit");
        let warm_misses = stat_total("miss");
        assert!(
            warm_hits > 0,
            "warm rerun at jobs={jobs} never hit the cache"
        );
        // The acceptance bar: a warm rerun executes >= 30% fewer stage
        // invocations (a miss is exactly one executed stage).
        #[allow(clippy::cast_precision_loss)]
        let reduction_ok = (warm_misses as f64) <= (cold_misses as f64) * 0.7;
        assert!(
            reduction_ok,
            "jobs={jobs}: warm run executed {warm_misses} stages vs {cold_misses} cold (< 30% reduction)"
        );

        let (warm_metrics, warm_trace) = stripped_metrics(jobs, warm.3);
        assert_eq!(
            cold_metrics, warm_metrics,
            "timing-stripped metrics.json diverged at jobs={jobs}"
        );
        // Span trees and metric snapshots must be structurally identical;
        // only the `cached` provenance attr may differ between runs.
        let diffs = ffet_obs::diff::diff_traces(&cold_trace, &warm_trace).expect("traces parse");
        assert!(diffs.is_empty(), "jobs={jobs}: trace drift: {diffs:?}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The driver-level contract: with the cache root riding the env var —
/// exactly how the repro binary wires it — a warm rerun of a whole
/// experiment reproduces the golden CSV byte for byte at `jobs` 1 and 4.
#[test]
fn warm_fig8_reproduces_the_golden_csv_via_the_env_knob() {
    let _g = lock();
    let root = scratch("env");
    std::env::set_var(ffet_core::STAGE_CACHE_ENV, &root);
    let cold_csv = experiments::fig8_on(DesignKind::CounterSmall, &Pool::new(1))
        .table
        .to_csv();
    let warm1_csv = experiments::fig8_on(DesignKind::CounterSmall, &Pool::new(1))
        .table
        .to_csv();
    let warm4_csv = experiments::fig8_on(DesignKind::CounterSmall, &Pool::new(4))
        .table
        .to_csv();
    std::env::remove_var(ffet_core::STAGE_CACHE_ENV);
    assert_eq!(cold_csv, warm1_csv, "warm rerun at jobs=1 drifted");
    assert_eq!(cold_csv, warm4_csv, "warm rerun at jobs=4 drifted");
    let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/fig8_counter.csv");
    let want = std::fs::read_to_string(&golden).expect("checked-in golden fig8_counter.csv");
    assert_eq!(
        want, cold_csv,
        "cache-enabled run drifted from the checked-in golden"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn poisoned_blob_is_a_deterministic_miss_never_a_wrong_artifact() {
    let _g = lock();
    let root = scratch("poison");
    let config = base_config(&root);
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 16);

    let first = run_flow(&netlist, &library, &config).expect("clean flow");
    // Corrupt every payload in place: the addresses (and the `.key` links
    // pointing at them) survive, but no body re-hashes to its name.
    let mut poisoned = 0;
    for entry in std::fs::read_dir(&root).expect("cache root exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "blob") {
            std::fs::write(&path, b"poisoned").expect("tamper blob");
            poisoned += 1;
        }
    }
    assert!(poisoned > 0, "clean flow left no blobs to poison");

    ffet_obs::cache_stats_reset();
    let second = run_flow(&netlist, &library, &config).expect("recomputed flow");
    assert_eq!(
        stat_total("hit"),
        0,
        "a poisoned blob must never count as a hit"
    );
    assert!(stat_total("miss") > 0, "poisoned lookups must be misses");
    // Byte-level equivalence of everything the flow hands downstream.
    assert_eq!(first.merged_def, second.merged_def);
    assert_eq!(first.signoff, second.signoff);
    assert_eq!(first.timing, second.timing);
    assert_eq!(first.parasitics, second.parasitics);
    assert_eq!(first.report, second.report);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn faulted_runs_never_touch_the_cache() {
    let _g = lock();
    let root = scratch("fault");
    let clean = base_config(&root);
    let library = clean.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    run_flow(&netlist, &library, &clean).expect("clean flow primes the cache");
    let blobs_before = std::fs::read_dir(&root)
        .expect("cache root exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "blob"))
        .count();
    assert!(blobs_before > 0, "priming run stored nothing");

    // A signoff-failing fault (drc.open), injected with the cache root still set:
    // the fault plan must force the cache off for the whole attempt.
    let mut faulted = clean.clone();
    faulted.fault_plan = FaultPlan {
        faults: vec![Fault::always(FaultKind::RouteOpen)],
        ..FaultPlan::default()
    };
    ffet_obs::cache_stats_reset();
    let result = run_flow(&netlist, &library, &faulted);
    assert!(result.is_err(), "route-open must fail signoff");
    assert_eq!(
        ffet_obs::cache_stats(),
        Vec::new(),
        "a faulted run must neither hit, miss, nor store"
    );
    let blobs_after = std::fs::read_dir(&root)
        .expect("cache root exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "blob"))
        .count();
    assert_eq!(
        blobs_before, blobs_after,
        "a faulted run must not pollute the cache"
    );
    let _ = std::fs::remove_dir_all(&root);
}
