//! The fault matrix: every injectable corruption must provably trip the
//! signoff rule (or runner behavior) it is named for, the union of the
//! error-class faults must cover every error-severity rule the signoff
//! crate can emit, and the recovery ladder must dispose of transient,
//! persistent, invalid, and panicking points deterministically.

use ffet_core::faults::DRV_INFLATE;
use ffet_core::recover::EXTRA_REROUTE_ROUNDS;
use ffet_core::{
    designs, run_flow, run_flow_resilient, Fault, FaultKind, FaultPlan, FlowConfig, FlowError,
    FlowOutcome, FlowStage, JobError, PointDisposition, Pool, RecoveryRung,
};
use ffet_tech::{RoutingPattern, TechKind};
use ffet_verify::{Severity, SignoffReport, ERROR_RULES};
use std::collections::BTreeSet;

/// The golden-proven dual-sided configuration every fault is injected
/// into: FM12BM12 BP0.5 at 60% utilization closes cleanly on the 24-bit
/// counter pipeline, so any signoff failure is the fault's doing.
fn base_config() -> FlowConfig {
    FlowConfig {
        pattern: RoutingPattern::new(12, 12).expect("static"),
        back_pin_ratio: 0.5,
        utilization: 0.6,
        max_attempts: 1,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    }
}

fn run_with_plan(config: &FlowConfig) -> Result<FlowOutcome, FlowError> {
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    run_flow(&netlist, &library, config)
}

fn run_with(kind: FaultKind) -> Result<FlowOutcome, FlowError> {
    let mut config = base_config();
    config.fault_plan = FaultPlan {
        faults: vec![Fault::always(kind)],
        ..FaultPlan::default()
    };
    run_with_plan(&config)
}

/// Unwraps the signoff report a faulted run must fail with.
fn failed_signoff(kind: FaultKind, result: Result<FlowOutcome, FlowError>) -> SignoffReport {
    match result {
        Err(FlowError::Signoff(report)) => report,
        Ok(o) => panic!(
            "{kind:?}: flow passed signoff instead of failing:\n{}",
            o.signoff.text_table()
        ),
        Err(e) => panic!("{kind:?}: flow failed before signoff: {e}"),
    }
}

/// Folds a report's error-severity rules into the coverage set.
fn collect_errors(report: &SignoffReport, tripped: &mut BTreeSet<&'static str>) {
    for (rule, sev, _) in report.rule_counts() {
        if sev == Severity::Error {
            tripped.insert(rule);
        }
    }
}

#[test]
fn every_error_fault_trips_its_expected_rule() {
    let cases: &[(FaultKind, &str)] = &[
        (FaultKind::NetUndriven, "lint.undriven"),
        (FaultKind::NetMultiDriven, "lint.multi-driven"),
        (FaultKind::PinFloat, "lint.floating-input"),
        (FaultKind::CombLoop, "lint.comb-loop"),
        (FaultKind::GhostInstance, "lvs.missing-component"),
        (FaultKind::PlacementCountMismatch, "place.count"),
        (FaultKind::RouteOpen, "drc.open"),
        (FaultKind::RoutePhantom, "drc.extra-routing"),
        (FaultKind::WireNonManhattan, "drc.non-manhattan"),
        (FaultKind::WireOffDie, "drc.off-die"),
        (FaultKind::WireIllegalLayer, "drc.layer-range"),
        (FaultKind::WireWrongDirection, "drc.wrong-direction"),
        (FaultKind::ViaDisplace, "drc.off-die"),
        (FaultKind::DefDropComponent, "lvs.missing-component"),
        (FaultKind::DefDupComponent, "lvs.duplicate-component"),
        (FaultKind::DefMacroSwap, "lvs.macro-mismatch"),
        (FaultKind::DefGhostComponent, "lvs.extra-component"),
        (FaultKind::DefDropNet, "lvs.missing-net"),
        (FaultKind::DefDupNet, "lvs.duplicate-net"),
        (FaultKind::DefGhostNet, "lvs.extra-net"),
        (FaultKind::DefDropConnection, "lvs.missing-connection"),
        (FaultKind::DefAddConnection, "lvs.extra-connection"),
    ];
    let mut tripped: BTreeSet<&'static str> = BTreeSet::new();
    for &(kind, rule) in cases {
        let report = failed_signoff(kind, run_with(kind));
        assert!(
            !report.by_rule(rule).is_empty(),
            "{kind:?} did not trip {rule}:\n{}",
            report.text_table()
        );
        collect_errors(&report, &mut tripped);
    }

    // BridgeOrphan plants a backside-only bridge pin, which only breaks
    // net decomposition when the pattern has no backside layers.
    let mut config = FlowConfig {
        pattern: RoutingPattern::new(12, 0).expect("static"),
        back_pin_ratio: 0.0,
        ..base_config()
    };
    config.fault_plan = FaultPlan {
        faults: vec![Fault::always(FaultKind::BridgeOrphan)],
        ..FaultPlan::default()
    };
    let report = failed_signoff(FaultKind::BridgeOrphan, run_with_plan(&config));
    assert!(
        !report.by_rule("drc.decompose").is_empty(),
        "BridgeOrphan did not trip drc.decompose:\n{}",
        report.text_table()
    );
    collect_errors(&report, &mut tripped);

    // The matrix is the coverage proof: every error-severity rule the
    // signoff crate can emit must be reachable by at least one fault.
    for &rule in ERROR_RULES {
        assert!(
            tripped.contains(rule),
            "no fault trips error rule {rule} (tripped: {tripped:?})"
        );
    }
}

#[test]
fn warning_faults_degrade_without_failing_structurally() {
    // CellDisplace knocks a cell off its site grid: place.off-site fires,
    // and the stranded pin stubs may additionally open nets (an error),
    // so accept either verdict but require the warning.
    let report = match run_with(FaultKind::CellDisplace) {
        Ok(o) => o.signoff,
        Err(FlowError::Signoff(report)) => report,
        Err(e) => panic!("CellDisplace: flow failed before signoff: {e}"),
    };
    assert!(
        !report.by_rule("place.off-site").is_empty(),
        "CellDisplace did not trip place.off-site:\n{}",
        report.text_table()
    );

    // DemandInflate overloads GCells without breaking connectivity: the
    // flow completes with capacity warnings only.
    let outcome = run_with(FaultKind::DemandInflate).expect("warnings do not fail the flow");
    assert!(
        !outcome.signoff.by_rule("drc.gcell-capacity").is_empty(),
        "DemandInflate did not trip drc.gcell-capacity:\n{}",
        outcome.signoff.text_table()
    );
}

#[test]
fn drv_inflate_invalidates_a_structurally_clean_point() {
    let outcome = run_with(FaultKind::DrvInflate).expect("signoff stays clean");
    assert!(outcome.signoff.is_clean());
    assert!(
        outcome.report.drv >= DRV_INFLATE,
        "drv {}",
        outcome.report.drv
    );
    assert!(!outcome.report.valid);
}

#[test]
fn pool_contains_stage_panics() {
    let mut config = base_config();
    config.fault_plan = FaultPlan {
        faults: vec![Fault::always(FaultKind::StagePanic(FlowStage::Pnr))],
        ..FaultPlan::default()
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let pool = Pool::new(2);
    let outcomes = pool.run(vec![0u8], |_| {
        run_flow(&netlist, &library, &config).map(|o| o.report)
    });
    assert_eq!(outcomes.len(), 1);
    let o = &outcomes[0];
    assert!(
        matches!(o.result, Err(JobError::Panicked(_))),
        "pool should contain the stage panic"
    );
    let cell = o.stats.disposition.to_cell();
    assert!(
        cell.starts_with("panicked: fault: injected panic at pnr"),
        "disposition cell: {cell}"
    );
}

#[test]
fn transient_fault_recovers_on_first_retry() {
    let mut config = base_config();
    config.max_attempts = 3;
    config.fault_plan = FaultPlan {
        faults: vec![Fault::until(FaultKind::RouteOpen, 1)],
        ..FaultPlan::default()
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let r = run_flow_resilient(&netlist, &library, &config);
    assert!(r.outcome.is_ok(), "recovered outcome: {:?}", r.recovery);
    assert_eq!(r.recovery.disposition, PointDisposition::Recovered(1));
    assert_eq!(r.recovery.attempts, 2);
    assert!(
        !r.recovery.relaxed,
        "first retry does not relax utilization"
    );
    let rungs: Vec<RecoveryRung> = r.log.attempts.iter().map(|a| a.rung).collect();
    assert_eq!(
        rungs,
        vec![RecoveryRung::Baseline, RecoveryRung::ExtraReroute]
    );
    assert!(r.log.attempts[0].outcome.starts_with("error:"));
    assert_eq!(r.log.attempts[1].outcome, "valid");
}

#[test]
fn persistent_fault_exhausts_the_whole_ladder() {
    let mut config = base_config();
    config.max_attempts = 4;
    config.fault_plan = FaultPlan {
        faults: vec![Fault::always(FaultKind::RouteOpen)],
        ..FaultPlan::default()
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let r = run_flow_resilient(&netlist, &library, &config);
    assert_eq!(r.recovery.disposition, PointDisposition::Failed(3));
    assert_eq!(r.recovery.attempts, 4);
    let log = &r.log.attempts;
    assert_eq!(log.len(), 4);
    assert_eq!(
        log.iter().map(|a| a.rung).collect::<Vec<_>>(),
        vec![
            RecoveryRung::Baseline,
            RecoveryRung::ExtraReroute,
            RecoveryRung::RelaxUtilization,
            RecoveryRung::PerturbSeed,
        ]
    );
    assert_eq!(log[0].extra_reroute_rounds, 0);
    assert_eq!(log[1].extra_reroute_rounds, EXTRA_REROUTE_ROUNDS);
    assert!(log[2].utilization < log[0].utilization);
    assert_ne!(log[3].seed, log[0].seed, "rung 3 perturbs the seed");
    match r.outcome {
        Err(FlowError::Signoff(report)) => assert!(
            !report.by_rule("drc.open").is_empty(),
            "final error keeps the fault's signature"
        ),
        other => panic!(
            "persistent open should fail signoff, got {}",
            match other {
                Ok(_) => "Ok".to_owned(),
                Err(e) => format!("Err({e})"),
            }
        ),
    }
}

#[test]
fn invalid_point_recovers_when_fault_clears() {
    let mut config = base_config();
    config.max_attempts = 2;
    config.fault_plan = FaultPlan {
        faults: vec![Fault::until(FaultKind::DrvInflate, 1)],
        ..FaultPlan::default()
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let r = run_flow_resilient(&netlist, &library, &config);
    assert_eq!(r.recovery.disposition, PointDisposition::Recovered(1));
    let outcome = r.outcome.expect("second attempt is valid");
    assert!(outcome.report.valid);
    assert!(r.log.attempts[0].outcome.starts_with("invalid (drv"));
}

#[test]
fn exhausted_invalid_point_returns_best_attempt() {
    let mut config = base_config();
    config.max_attempts = 2;
    config.fault_plan = FaultPlan {
        faults: vec![Fault::always(FaultKind::DrvInflate)],
        ..FaultPlan::default()
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let r = run_flow_resilient(&netlist, &library, &config);
    assert_eq!(r.recovery.disposition, PointDisposition::Failed(1));
    let outcome = r.outcome.expect("best invalid attempt is still reported");
    assert!(!outcome.report.valid);
    assert!(outcome.report.drv >= DRV_INFLATE);
}

#[test]
fn panicking_stage_is_contained_and_recovered() {
    let mut config = base_config();
    config.max_attempts = 2;
    config.fault_plan = FaultPlan {
        faults: vec![Fault::until(FaultKind::StagePanic(FlowStage::Merge), 1)],
        ..FaultPlan::default()
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let r = run_flow_resilient(&netlist, &library, &config);
    assert_eq!(r.recovery.disposition, PointDisposition::Recovered(1));
    assert!(
        r.log.attempts[0].outcome.starts_with("panicked:"),
        "attempt 0 outcome: {}",
        r.log.attempts[0].outcome
    );
    assert!(r.outcome.is_ok());
}

/// `FaultKind::RoutePanic` panics inside a routing *batch worker* — the
/// panic crosses the batch pool's containment boundary (worker
/// `catch_unwind` → re-raise on the routing thread) before the DoE pool
/// sees it. The DoE pool must still contain it, and the disposition cell
/// must carry the worker's message verbatim, identically at `route_jobs`
/// 1 (inline batch execution) and 4 (pool threads).
#[test]
fn pool_contains_route_batch_panics_at_any_worker_count() {
    let mut cells: Vec<String> = Vec::new();
    for route_jobs in [1usize, 4] {
        let mut config = base_config();
        config.route_jobs = route_jobs;
        config.fault_plan = FaultPlan {
            faults: vec![Fault::always(FaultKind::RoutePanic)],
            ..FaultPlan::default()
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        let pool = Pool::new(2);
        let outcomes = pool.run(vec![0u8], |_| {
            run_flow(&netlist, &library, &config).map(|o| o.report)
        });
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert!(
            matches!(o.result, Err(JobError::Panicked(_))),
            "route_jobs={route_jobs}: pool should contain the batch-worker panic"
        );
        let cell = o.stats.disposition.to_cell();
        assert!(
            cell.starts_with("panicked: fault: injected panic in route batch worker"),
            "route_jobs={route_jobs}: disposition cell: {cell}"
        );
        cells.push(cell);
    }
    assert_eq!(cells[0], cells[1], "disposition is route_jobs-invariant");
}

/// A transient batch-worker panic rides the recovery ladder exactly like a
/// flow-thread stage panic: attempt 0 is logged as panicked with the
/// worker's message, attempt 1 recovers — and the whole `AttemptLog`
/// disposition (rungs, outcome strings, final report) is byte-identical
/// whether the panicking batch ran inline or on pool workers.
#[test]
fn route_batch_panic_recovery_is_route_jobs_invariant() {
    let run = |route_jobs: usize| {
        let mut config = base_config();
        config.max_attempts = 2;
        config.route_jobs = route_jobs;
        config.fault_plan = FaultPlan {
            faults: vec![Fault::until(FaultKind::RoutePanic, 1)],
            ..FaultPlan::default()
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        let r = run_flow_resilient(&netlist, &library, &config);
        assert_eq!(
            r.recovery.disposition,
            PointDisposition::Recovered(1),
            "route_jobs={route_jobs}"
        );
        assert!(
            r.log.attempts[0]
                .outcome
                .starts_with("panicked: fault: injected panic in route batch worker"),
            "route_jobs={route_jobs}: attempt 0 outcome: {}",
            r.log.attempts[0].outcome
        );
        let rungs: Vec<RecoveryRung> = r.log.attempts.iter().map(|a| a.rung).collect();
        let outcomes: Vec<String> = r.log.attempts.iter().map(|a| a.outcome.clone()).collect();
        let report = r.outcome.expect("second attempt is valid").report;
        (r.recovery.disposition.to_cell(), rungs, outcomes, report)
    };
    assert_eq!(run(1), run(4), "recovery log diverged across route_jobs");
}

/// `stage-timeout` forces the cooperative deadline watchdog to fire at the
/// named stage boundary: the attempt is logged with the structured
/// `timeout(stage)` outcome, and a later fault-free attempt recovers the
/// point through the normal ladder.
#[test]
fn stage_timeout_lands_structured_outcome_and_recovers() {
    let mut config = base_config();
    config.max_attempts = 2;
    config.fault_plan = FaultPlan {
        faults: vec![Fault::until(FaultKind::StageTimeout(FlowStage::Pnr), 1)],
        ..FaultPlan::default()
    };
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let r = run_flow_resilient(&netlist, &library, &config);
    assert_eq!(r.recovery.disposition, PointDisposition::Recovered(1));
    assert_eq!(r.log.attempts[0].outcome, "timeout(pnr)");
    assert_eq!(r.log.attempts[1].outcome, "valid");
    assert!(r.outcome.is_ok());
}

/// A persistent timeout exhausts the ladder and surfaces as
/// `FlowError::Timeout` with the stage name intact — never a panic.
#[test]
fn persistent_stage_timeout_exhausts_ladder_without_panicking() {
    for (kind, stage) in [
        (FaultKind::StageTimeout(FlowStage::Synth), "synth"),
        (FaultKind::StageTimeout(FlowStage::Pnr), "pnr"),
        (FaultKind::StageTimeout(FlowStage::Merge), "merge"),
        (FaultKind::StageTimeout(FlowStage::Signoff), "signoff"),
    ] {
        let mut config = base_config();
        config.max_attempts = 2;
        config.fault_plan = FaultPlan {
            faults: vec![Fault::always(kind)],
            ..FaultPlan::default()
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        let r = run_flow_resilient(&netlist, &library, &config);
        assert_eq!(
            r.recovery.disposition,
            PointDisposition::Failed(1),
            "{stage}"
        );
        for a in &r.log.attempts {
            assert_eq!(a.outcome, format!("timeout({stage})"));
        }
        match r.outcome {
            Err(FlowError::Timeout(s)) => assert_eq!(s, stage),
            other => panic!(
                "{stage}: expected FlowError::Timeout, got {}",
                match other {
                    Ok(_) => "Ok".to_owned(),
                    Err(e) => format!("Err({e})"),
                }
            ),
        }
    }
}

/// The forced cancellation fires at the router's round boundary, which is
/// reached identically whether batches run inline or on pool workers: the
/// whole recovery log and final report are `route_jobs`-invariant.
#[test]
fn stage_timeout_recovery_is_route_jobs_invariant() {
    let run = |route_jobs: usize| {
        let mut config = base_config();
        config.max_attempts = 2;
        config.route_jobs = route_jobs;
        config.fault_plan = FaultPlan {
            faults: vec![Fault::until(FaultKind::StageTimeout(FlowStage::Pnr), 1)],
            ..FaultPlan::default()
        };
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 24);
        let r = run_flow_resilient(&netlist, &library, &config);
        let rungs: Vec<RecoveryRung> = r.log.attempts.iter().map(|a| a.rung).collect();
        let outcomes: Vec<String> = r.log.attempts.iter().map(|a| a.outcome.clone()).collect();
        let report = r.outcome.expect("second attempt is valid").report;
        (r.recovery.disposition.to_cell(), rungs, outcomes, report)
    };
    let one = run(1);
    assert_eq!(one.2[0], "timeout(pnr)", "attempt 0 timed out: {:?}", one.2);
    assert_eq!(
        one,
        run(4),
        "timeout disposition diverged across route_jobs"
    );
}

/// A persistent timeout's `timeout(stage)` disposition reaches the sweep
/// runlog rows identically at every pool width — the runlog column the
/// `repro` CSV renders is exactly this string.
#[test]
fn stage_timeout_disposition_reaches_runlog_at_any_width() {
    let mut base = base_config();
    base.fault_plan = FaultPlan {
        faults: vec![Fault::always(FaultKind::StageTimeout(FlowStage::Pnr))],
        ..FaultPlan::default()
    };
    let library = base.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let utils = [0.56, 0.60];
    let run = |width: usize| {
        let pool = Pool::new(width);
        let (_, _, log, _) =
            ffet_core::experiments::utilization_sweep(&pool, &netlist, &library, &base, &utils);
        log.iter()
            .map(|r| (r.label.clone(), r.attempts, r.disposition.clone()))
            .collect::<Vec<_>>()
    };
    let rows = run(1);
    // One row per (util × seed) plus one skipped row per util whose seeds
    // all timed out.
    let (timed_out, skipped): (Vec<_>, Vec<_>) =
        rows.iter().partition(|(_, attempts, _)| *attempts > 0);
    assert_eq!(skipped.len(), utils.len(), "rows: {rows:?}");
    for (label, attempts, disposition) in &timed_out {
        assert_eq!(*attempts, 1, "{label}");
        assert_eq!(disposition, "timeout(pnr)", "{label}");
    }
    assert!(
        skipped.iter().all(|(_, _, d)| d.starts_with("skipped")),
        "rows: {rows:?}"
    );
    assert_eq!(rows, run(4), "timeout rows diverged across pool widths");
}

/// `ckpt-torn-write` and `ckpt-stale` corrupt the *journal layer* only:
/// carried in the flow's fault plan they must be inert, producing a
/// signoff-clean report identical to a fault-free run. (Their journal-side
/// behavior is proven in `ffet_core::ckpt`'s unit tests and the
/// crash-resume integration test.)
#[test]
fn ckpt_faults_are_flow_neutral() {
    let clean = run_with_plan(&base_config()).expect("baseline is clean");
    for kind in [FaultKind::CkptTornWrite, FaultKind::CkptStale] {
        let o = run_with(kind).unwrap_or_else(|e| panic!("{kind:?} perturbed the flow: {e}"));
        assert!(o.signoff.is_clean(), "{kind:?} dirtied signoff");
        assert_eq!(o.report, clean.report, "{kind:?} changed the PPA report");
    }
}

/// The tentpole determinism guarantee: a sweep whose points go through the
/// recovery ladder (including a transient fault) produces byte-identical
/// results and identical dispositions at every pool width.
#[test]
fn recovered_sweep_is_identical_across_pool_widths() {
    let mut base = base_config();
    base.max_attempts = 2;
    base.fault_plan = FaultPlan {
        faults: vec![Fault::until(FaultKind::RouteOpen, 1)],
        ..FaultPlan::default()
    };
    let library = base.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let utils = [0.56, 0.60];

    let run = |width: usize| {
        let pool = Pool::new(width);
        ffet_core::experiments::utilization_sweep(&pool, &netlist, &library, &base, &utils)
    };
    let (max1, points1, log1, _traces1) = run(1);
    let (max4, points4, log4, _traces4) = run(4);

    assert_eq!(max1, max4);
    assert_eq!(points1, points4);
    assert_eq!(points1.len(), utils.len(), "rows survive recovery");
    // Telemetry (worker, wall) legitimately differs; the experiment-facing
    // columns must not.
    let key = |log: &[ffet_core::RunLogRow]| -> Vec<(String, u32, String)> {
        log.iter()
            .map(|r| (r.label.clone(), r.attempts, r.disposition.clone()))
            .collect()
    };
    assert_eq!(key(&log1), key(&log4));
    // Every point needed exactly one retry to clear the transient open.
    for (label, attempts, disposition) in key(&log1) {
        assert_eq!(attempts, 2, "{label}");
        assert_eq!(disposition, "recovered(1)", "{label}");
    }
}
