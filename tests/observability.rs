//! Observability contract tests: metric values and span-tree shape must be
//! deterministic at every pool width (with and without injected faults),
//! the emitted `trace.jsonl` must validate against schema v1, and tracing
//! must stay cheap. The two `#[ignore]`d tests are run explicitly by the
//! CI observability job: one measures tracing overhead, one validates the
//! on-disk artifacts a prior `repro` run left in `results/`.

use ffet_core::experiments::utilization_sweep;
use ffet_core::{designs, Fault, FaultKind, FaultPlan, FlowConfig, Pool};
use ffet_obs::{strip_timing, validate_trace, RunArtifacts};
use ffet_tech::{RoutingPattern, TechKind};

/// The proven dual-sided configuration on the fast counter design (same
/// point as the fault-matrix tests) so the sweep exercises both wafer
/// sides and closes cleanly.
fn base_config() -> FlowConfig {
    FlowConfig {
        pattern: RoutingPattern::new(12, 12).expect("static"),
        back_pin_ratio: 0.5,
        utilization: 0.6,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    }
}

/// Runs the small two-point sweep at the given pool width and collects its
/// traces into artifacts, exactly as the `repro` binary does.
fn sweep_artifacts(width: usize, base: &FlowConfig) -> RunArtifacts {
    let library = base.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let pool = Pool::new(width);
    let utils = [0.56, 0.60];
    let (_, points, _, traces) = utilization_sweep(&pool, &netlist, &library, base, &utils);
    assert_eq!(points.len(), utils.len(), "sweep closes at both points");
    let mut artifacts = RunArtifacts::new(width);
    artifacts.extend(traces);
    artifacts
}

/// The deterministic skeleton of one span: name, id, parent, depth, and
/// rendered attrs — everything except the wall-clock `start_us`/`dur_us`.
type SpanSkeleton = (String, u32, Option<u32>, u16, String);

fn span_skeletons(artifacts: &RunArtifacts) -> Vec<Vec<SpanSkeleton>> {
    artifacts
        .points
        .iter()
        .map(|p| {
            p.data
                .events
                .iter()
                .map(|e| {
                    let attrs = e
                        .attrs
                        .iter()
                        .map(|(k, v)| format!("{k}={v:?}"))
                        .collect::<Vec<_>>()
                        .join(",");
                    (e.name.clone(), e.id, e.parent, e.depth, attrs)
                })
                .collect()
        })
        .collect()
}

#[test]
fn metrics_and_spans_identical_across_pool_widths() {
    // The full {FFET_JOBS} × {FFET_ROUTE_JOBS} cross-matrix: DoE pool
    // width and router worker count are independent; the reference is the
    // fully serial corner.
    let mut base = base_config();
    base.route_jobs = 1;
    let serial = sweep_artifacts(1, &base);
    for jobs in [1usize, 4] {
        for route_jobs in [1usize, 4] {
            if (jobs, route_jobs) == (1, 1) {
                continue;
            }
            let mut config = base.clone();
            config.route_jobs = route_jobs;
            let run = sweep_artifacts(jobs, &config);
            // metrics.json is byte-identical once the timing key is
            // stripped, and the span tree (names, ids, nesting, attrs,
            // order) matches too.
            assert_eq!(
                strip_timing(&serial.metrics_json()).unwrap(),
                strip_timing(&run.metrics_json()).unwrap(),
                "metrics diverged at jobs={jobs} route_jobs={route_jobs}"
            );
            assert_eq!(
                span_skeletons(&serial),
                span_skeletons(&run),
                "span tree diverged at jobs={jobs} route_jobs={route_jobs}"
            );
        }
    }
    // And the traces actually carry the flow's signal, not empty shells.
    let merged = serial.merged_metrics();
    assert_eq!(merged.counters["flow.runs"], 6, "2 utils x 3 seeds");
    assert!(merged.counters["rcx.nets"] > 0);
    assert!(merged.counters["route.vias.back"] > 0, "dual-sided config");
    assert!(merged.histograms["sta.slack_ps"].count > 0);
    assert!(merged.gauges.contains_key("sta.wns_ps"));
    let names: Vec<&str> = serial.points[0]
        .data
        .events
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    for stage in ["flow.synth", "flow.pnr", "flow.rcx", "flow.sta", "flow"] {
        assert!(names.contains(&stage), "missing span {stage}: {names:?}");
    }
}

#[test]
fn metrics_identical_across_pool_widths_with_fault_plan() {
    // Same cross-matrix contract while the recovery ladder is exercised: a
    // transient route-open makes every point take one retry, at every
    // combination of pool width and router worker count.
    let mut base = base_config();
    base.max_attempts = 2;
    base.route_jobs = 1;
    base.fault_plan = FaultPlan {
        faults: vec![Fault::until(FaultKind::RouteOpen, 1)],
        ..FaultPlan::default()
    };
    let serial = sweep_artifacts(1, &base);
    for jobs in [1usize, 4] {
        for route_jobs in [1usize, 4] {
            if (jobs, route_jobs) == (1, 1) {
                continue;
            }
            let mut config = base.clone();
            config.route_jobs = route_jobs;
            let run = sweep_artifacts(jobs, &config);
            assert_eq!(
                strip_timing(&serial.metrics_json()).unwrap(),
                strip_timing(&run.metrics_json()).unwrap(),
                "faulted metrics diverged at jobs={jobs} route_jobs={route_jobs}"
            );
            assert_eq!(
                span_skeletons(&serial),
                span_skeletons(&run),
                "faulted span tree diverged at jobs={jobs} route_jobs={route_jobs}"
            );
        }
    }
    let merged = serial.merged_metrics();
    assert_eq!(merged.counters["recover.attempts"], 12, "6 points x 2");
    assert_eq!(merged.counters["recover.recovered"], 6);
    assert!(!merged.counters.contains_key("recover.clean"));
}

#[test]
fn emitted_trace_validates_against_schema() {
    let artifacts = sweep_artifacts(2, &base_config());
    let trace = artifacts.trace_jsonl();
    let stats = validate_trace(&trace).expect("schema-valid trace");
    assert_eq!(stats.points, artifacts.points.len());
    assert_eq!(stats.metrics_lines, artifacts.points.len());
    assert!(stats.span_lines >= artifacts.points.len() * 5);
    // Labels survive the emit → readback roundtrip.
    let labels = ffet_obs::point_labels(&trace);
    assert_eq!(labels.len(), artifacts.points.len());
    let parsed = ffet_obs::parse_point(&trace, &labels[0]).unwrap();
    assert_eq!(parsed.metrics, artifacts.points[0].data.metrics);
}

/// Tracing overhead contract: running the flow with a collector installed
/// must cost < 5% over running it with tracing disabled (the ambient
/// no-collector path). Ignored by default (it is a timing measurement);
/// the CI observability job runs it explicitly.
#[test]
#[ignore = "timing measurement; run explicitly (CI observability job)"]
fn tracing_overhead_is_under_five_percent() {
    use std::time::Instant;
    let config = base_config();
    let library = config.build_library().expect("valid config");
    let netlist = designs::counter_pipeline(&library, 24);
    let run = || ffet_core::run_flow(&netlist, &library, &config).expect("flow");
    // Warm-up.
    run();
    let sample = |traced: bool| -> f64 {
        let t0 = Instant::now();
        if traced {
            let collector = ffet_obs::Collector::new();
            let _guard = collector.install();
            std::hint::black_box(run());
        } else {
            std::hint::black_box(run());
        }
        t0.elapsed().as_secs_f64()
    };
    // Interleave the two modes so drift hits both equally; compare medians.
    let mut traced: Vec<f64> = Vec::new();
    let mut untraced: Vec<f64> = Vec::new();
    for _ in 0..7 {
        untraced.push(sample(false));
        traced.push(sample(true));
    }
    traced.sort_by(f64::total_cmp);
    untraced.sort_by(f64::total_cmp);
    let (t, u) = (traced[traced.len() / 2], untraced[untraced.len() / 2]);
    assert!(
        t <= u * 1.05,
        "tracing overhead {:.2}% exceeds 5% (traced {t:.4}s vs untraced {u:.4}s)",
        (t / u - 1.0) * 100.0
    );
}

/// Validates the artifacts a prior `repro` run wrote to `results/` at the
/// repository root. Ignored by default (it needs that run to have
/// happened); the CI observability job runs `repro` first, then this.
#[test]
#[ignore = "needs results/ from a prior repro run (CI observability job)"]
fn on_disk_artifacts_validate() {
    let results = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let trace = std::fs::read_to_string(results.join("trace.jsonl"))
        .expect("results/trace.jsonl (run `repro` with a flow experiment first)");
    let stats = validate_trace(&trace).expect("schema-valid trace.jsonl");
    assert!(stats.points > 0);
    assert!(stats.span_lines > 0);
    let metrics = std::fs::read_to_string(results.join("metrics.json"))
        .expect("results/metrics.json (run `repro` with a flow experiment first)");
    let stripped = strip_timing(&metrics).expect("parsable metrics.json");
    assert!(stripped.contains("\"merged\""));
    assert!(metrics.contains("\"timing\""));
}
