//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§IV). Each function returns a typed result whose `table` can
//! be rendered with [`ExpTable::render`] or serialized with
//! [`ExpTable::to_csv`]; flow experiments additionally carry per-point
//! traces (spans + metrics from `ffet-obs`) for the run artifacts. The
//! `repro` binary in `ffet-bench` is the command-line driver.
//!
//! The benchmark design is the gate-level RV32I core
//! ([`crate::designs::rv32_core`]); set [`DesignKind::CounterSmall`] for
//! fast smoke tests of the experiment plumbing.

use crate::designs;
use crate::flow::{FlowConfig, FlowError, StageTimes};
use crate::recover::{run_flow_resilient, PointFailure, PointRecovery};
use crate::report::{pct_diff, PpaReport};
use crate::runner::{JobError, JobOutcome, Pool, RunLogRow};
use ffet_cells::{fig4_area_comparison, CellFunction, CellKind, DriveStrength, Library};
use ffet_netlist::Netlist;
use ffet_obs::LabeledPoint;
use ffet_tech::{RoutingPattern, Side, TechKind, Technology};

/// Which benchmark design the flow experiments run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DesignKind {
    /// The paper's 32-bit RISC-V core (~10k cells).
    #[default]
    Rv32,
    /// A small counter pipeline (fast smoke tests).
    CounterSmall,
}

fn build_design(library: &Library, kind: DesignKind) -> Netlist {
    match kind {
        DesignKind::Rv32 => designs::rv32_core(library),
        DesignKind::CounterSmall => designs::counter_pipeline(library, 24),
    }
}

/// A printable experiment table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Footnotes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl ExpTable {
    /// Serializes the table as CSV (header row first; notes become
    /// `#`-prefixed trailer lines) — the plottable artifact of each
    /// experiment.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("# ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned text (title, header rule, rows, notes).
    /// The caller decides where it goes; only the `repro` CLI prints.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map_or(0, String::len))
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

// ---------------------------------------------------------------------
// Table I — library characterization KPI diffs
// ---------------------------------------------------------------------

/// Result of the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rendered table.
    pub table: ExpTable,
    /// (cell, metric) → percent diff FFET vs CFET.
    pub diffs: Vec<(String, String, f64)>,
}

/// Reproduces Table I: KPI diffs of the FFET libraries w.r.t. CFET for
/// INV/BUF at D1/D2/D4, measured at nominal conditions (10 ps input slew,
/// a fanout-4-style load scaled with drive).
#[must_use]
pub fn table1() -> Table1 {
    let ffet = Library::new(Technology::ffet_3p5t());
    let cfet = Library::new(Technology::cfet_4t());
    let cells = [
        (CellFunction::Inv, DriveStrength::D1, "INVD1"),
        (CellFunction::Inv, DriveStrength::D2, "INVD2"),
        (CellFunction::Inv, DriveStrength::D4, "INVD4"),
        (CellFunction::Buf, DriveStrength::D1, "BUFD1"),
        (CellFunction::Buf, DriveStrength::D2, "BUFD2"),
        (CellFunction::Buf, DriveStrength::D4, "BUFD4"),
    ];
    let slew = 10.0;
    let mut diffs = Vec::new();
    let mut rows = Vec::new();
    type Kpi = fn(&ffet_cells::Cell, f64, f64) -> f64;
    let metrics: [(&str, Kpi); 6] = [
        ("Transition power", |c, s, l| {
            c.timing.transition_energy(s, l)
        }),
        ("Leakage power", |c, _, _| c.timing.leakage_nw),
        ("Rise timing", |c, s, l| {
            c.timing.arcs[0].delay_rise.lookup(s, l)
        }),
        ("Fall timing", |c, s, l| {
            c.timing.arcs[0].delay_fall.lookup(s, l)
        }),
        ("Rise transition", |c, s, l| {
            c.timing.arcs[0].slew_rise.lookup(s, l)
        }),
        ("Fall transition", |c, s, l| {
            c.timing.arcs[0].slew_fall.lookup(s, l)
        }),
    ];
    for (name, f) in metrics {
        let mut row = vec![name.to_owned()];
        for (func, drive, cell_name) in cells {
            let kind = CellKind::new(func, drive);
            // Both libraries carry the full kind set by construction.
            let (Some(fc), Some(cc)) = (ffet.cell_by_kind(kind), cfet.cell_by_kind(kind)) else {
                continue;
            };
            let load = 4.0 * drive.multiple();
            let d = pct_diff(f(fc, slew, load), f(cc, slew, load));
            diffs.push((cell_name.to_owned(), name.to_owned(), d));
            row.push(pct(d));
        }
        rows.push(row);
    }
    let mut header = vec!["KPI diff FFET w.r.t. CFET".to_owned()];
    header.extend(cells.iter().map(|(_, _, n)| (*n).to_owned()));
    Table1 {
        table: ExpTable {
            title: "Table I — library characterization (FFET vs CFET)".into(),
            header,
            rows,
            notes: vec![
                "paper: leakage 0.0% everywhere; INV transition power ≈ flat; BUF timing −10..−16%"
                    .into(),
            ],
        },
        diffs,
    }
}

// ---------------------------------------------------------------------
// Table II — design rules
// ---------------------------------------------------------------------

/// Result of the Table II dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// Rendered table.
    pub table: ExpTable,
}

/// Dumps the encoded Table II layer stacks for verification.
#[must_use]
pub fn table2() -> Table2 {
    let ffet = Technology::ffet_3p5t();
    let cfet = Technology::cfet_4t();
    let mut rows = Vec::new();
    for side in [Side::Front, Side::Back] {
        for index in (0..=12u8).rev() {
            let id = ffet_tech::LayerId::new(side, index);
            let f = ffet.stack().layer(id).map(|l| l.pitch);
            let c = cfet.stack().layer(id).map(|l| l.pitch);
            if f.is_none() && c.is_none() {
                continue;
            }
            rows.push(vec![
                id.name(),
                c.map_or_else(|| "/".into(), |p| p.to_string()),
                f.map_or_else(|| "/".into(), |p| p.to_string()),
            ]);
        }
    }
    rows.push(vec![
        "Poly".into(),
        cfet.stack().poly_pitch.to_string(),
        ffet.stack().poly_pitch.to_string(),
    ]);
    rows.push(vec![
        "BPR".into(),
        cfet.stack()
            .bpr_pitch
            .map_or_else(|| "/".into(), |p| p.to_string()),
        "/".into(),
    ]);
    Table2 {
        table: ExpTable {
            title: "Table II — layer pitches (nm), virtual 5nm PDK".into(),
            header: vec!["Layer".into(), "4T CFET".into(), "3.5T FFET".into()],
            rows,
            notes: vec!["CFET BM1/BM2 are PDN-only (3200/2400 nm)".into()],
        },
    }
}

// ---------------------------------------------------------------------
// Fig. 4 — standard-cell area comparison
// ---------------------------------------------------------------------

/// Result of the Fig. 4 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Rendered table.
    pub table: ExpTable,
    /// Per-cell scaling (1 − FFET/CFET).
    pub scalings: Vec<(String, f64)>,
}

/// Reproduces Fig. 4: cell-area comparison between 3.5T FFET and 4T CFET.
#[must_use]
pub fn fig4() -> Fig4 {
    let rows_data = fig4_area_comparison();
    let mut rows = Vec::new();
    let mut scalings = Vec::new();
    for r in &rows_data {
        rows.push(vec![
            r.function.to_string(),
            format!("{:.4}", r.cfet_nm2 as f64 / 1e6),
            format!("{:.4}", r.ffet_nm2 as f64 / 1e6),
            pct(-r.scaling * 100.0),
        ]);
        scalings.push((r.function.to_string(), r.scaling));
    }
    let avg = scalings.iter().map(|(_, s)| s).sum::<f64>() / scalings.len() as f64;
    Fig4 {
        table: ExpTable {
            title: "Fig. 4 — standard-cell area, 3.5T FFET vs 4T CFET".into(),
            header: vec![
                "Cell".into(),
                "CFET µm²".into(),
                "FFET µm²".into(),
                "FFET Δarea".into(),
            ],
            rows,
            notes: vec![format!(
                "average scaling {:.1}% (paper: ~12.5% plus extra MUX/DFF savings)",
                avg * 100.0
            )],
        },
        scalings,
    }
}

// ---------------------------------------------------------------------
// Flow-based experiments
// ---------------------------------------------------------------------

/// One (utilization, report) point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilPoint {
    /// Requested utilization.
    pub utilization: f64,
    /// Flow result.
    pub report: PpaReport,
}

/// Placement seeds tried per sweep point. A physical designer iterates
/// seeds/settings until the block closes; like the paper's implementations,
/// each reported point is the best (fewest-DRV) run of the attempts.
const SWEEP_SEEDS: [u64; 3] = [42, 1042, 9042];

/// A flow job's distilled result: the PPA point, its stage telemetry, and
/// how the recovery ladder disposed of it.
type FlowPoint = (PpaReport, StageTimes, PointRecovery);

/// Runs one flow through the recovery ladder and keeps only what the sweeps
/// need, dropping the heavy DEF/parasitics artifacts so large DoE grids stay
/// memory-bounded. A clean point takes exactly one attempt, so sweeps with
/// no injected faults behave byte-for-byte as before.
/// Wraps a [`FlowError`] from library construction (before any flow
/// attempt ran) as a zero-attempt [`PointFailure`].
fn config_failure(error: crate::FlowError) -> PointFailure {
    PointFailure { error, attempts: 0 }
}

fn flow_job(
    netlist: &Netlist,
    library: &Library,
    config: &FlowConfig,
) -> Result<FlowPoint, PointFailure> {
    let r = run_flow_resilient(netlist, library, config);
    match r.outcome {
        Ok(o) => Ok((o.report, o.stages, r.recovery)),
        Err(error) => Err(PointFailure {
            error,
            attempts: r.recovery.attempts,
        }),
    }
}

/// Builds the runlog row for one resilient flow point: pool telemetry plus
/// the recovery ladder's attempt count and final disposition.
fn flow_row(experiment: &str, label: String, o: &JobOutcome<FlowPoint, PointFailure>) -> RunLogRow {
    let stages = o.result.as_ref().ok().map(|(_, s, _)| *s);
    let mut row = RunLogRow::from_stats(experiment, label, &o.stats, stages);
    match &o.result {
        Ok((_, _, rec)) => {
            row.attempts = rec.attempts;
            row.disposition = rec.disposition.to_cell();
        }
        Err(JobError::Failed(pf)) => {
            row.attempts = pf.attempts;
            // A point whose last attempt hit the deadline gets the
            // structured `timeout(stage)` disposition the watchdog
            // contract promises (recovered timeouts render `recovered(n)`
            // like any other recovered failure).
            row.disposition = match &pf.error {
                FlowError::Timeout(stage) => format!("timeout({stage})"),
                e => format!("failed({}): {}", pf.attempts.saturating_sub(1), e),
            };
        }
        // The pool already rendered the panic message; a contained panic
        // means the ladder never ran, so a single attempt is charged.
        Err(JobError::Panicked(_)) => row.attempts = 1,
    }
    row
}

/// Records one flow point into both observability sinks: the runlog row
/// (pool telemetry) and the labeled trace (spans + metrics) for the run
/// artifacts. Trace labels are `{experiment}/{label}` so points stay unique
/// when several experiments share one artifact file.
fn record_point(
    experiment: &str,
    label: String,
    o: &JobOutcome<FlowPoint, PointFailure>,
    runlog: &mut Vec<RunLogRow>,
    traces: &mut Vec<LabeledPoint>,
) {
    traces.push(LabeledPoint {
        label: format!("{experiment}/{label}"),
        data: o.trace.clone(),
    });
    runlog.push(flow_row(experiment, label, o));
}

/// Runs the flow across a utilization grid on `pool`, returning all points
/// plus the maximum valid utilization (the paper's "maximum utilization"
/// metric).
///
/// Each point tries three placement seeds and keeps the fewest-DRV run.
/// Results are reassembled in submission order, so the outcome is identical
/// for every pool width. The returned runlog rows carry each job's attempt
/// count and recovery disposition (`clean` / `recovered(n)` / `failed(n)`);
/// the returned traces carry each job's spans and metrics (metric values
/// deterministic, span timings wall-clock).
#[must_use]
pub fn utilization_sweep(
    pool: &Pool,
    netlist: &Netlist,
    library: &Library,
    base: &FlowConfig,
    utils: &[f64],
) -> (
    Option<f64>,
    Vec<UtilPoint>,
    Vec<RunLogRow>,
    Vec<LabeledPoint>,
) {
    let jobs: Vec<FlowConfig> = utils
        .iter()
        .flat_map(|&u| {
            SWEEP_SEEDS.iter().map(move |&seed| FlowConfig {
                utilization: u,
                seed,
                ..base.clone()
            })
        })
        .collect();
    let outcomes = pool.run(jobs, |config| flow_job(netlist, library, config));
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    let (max_valid, points) =
        assemble_sweep("sweep", "", utils, outcomes, &mut runlog, &mut traces);
    (max_valid, points, runlog, traces)
}

/// Folds the per-(utilization × seed) job outcomes of one sweep back into
/// best-of-seeds points, replicating the serial semantics exactly: failed
/// seeds are dropped, ties on DRV keep the earliest seed, and a point with
/// no surviving seed is skipped (and logged as such). A seed that only
/// closed at a *relaxed* utilization ran off-spec, so it loses to any
/// on-spec run regardless of DRV and never backs the max-utilization claim.
fn assemble_sweep(
    experiment: &str,
    label: &str,
    utils: &[f64],
    outcomes: Vec<JobOutcome<FlowPoint, PointFailure>>,
    runlog: &mut Vec<RunLogRow>,
    traces: &mut Vec<LabeledPoint>,
) -> (Option<f64>, Vec<UtilPoint>) {
    assert_eq!(outcomes.len(), utils.len() * SWEEP_SEEDS.len());
    let mut points = Vec::new();
    let mut max_valid = None;
    let mut outcomes = outcomes.into_iter();
    for &u in utils {
        let mut runs: Vec<(PpaReport, PointRecovery)> = Vec::new();
        for &seed in &SWEEP_SEEDS {
            // Length asserted on entry; the iterator cannot run dry.
            let Some(o) = outcomes.next() else { break };
            let point_label = format!("{label}u{u:.2}/s{seed}");
            record_point(experiment, point_label, &o, runlog, traces);
            if let Ok((report, _, rec)) = o.result {
                runs.push((report, rec));
            }
        }
        if runs.is_empty() {
            runlog.push(RunLogRow::skipped(
                experiment,
                format!("{label}u{u:.2}"),
                runlog.len(),
                "no placement seed produced a routable run",
            ));
            continue;
        }
        runs.sort_by_key(|(r, rec)| (rec.relaxed, r.drv));
        let (best, rec) = runs.swap_remove(0);
        // A point that only closed at a relaxed utilization did not close
        // at `u`, so it must not back the max-utilization claim.
        if best.valid && !rec.relaxed {
            max_valid = Some(max_valid.map_or(u, |m: f64| m.max(u)));
        }
        points.push(UtilPoint {
            utilization: u,
            report: best,
        });
    }
    (max_valid, points)
}

/// One configuration of a multi-config utilization sweep.
struct SweepSpec {
    label: String,
    base: FlowConfig,
    utils: Vec<f64>,
}

/// The assembled result of one [`SweepSpec`].
struct SweepResult {
    label: String,
    max_util: Option<f64>,
    points: Vec<UtilPoint>,
}

/// Executes several utilization sweeps as one flat job grid: per-spec
/// library/netlist builds run as pool jobs first, then every
/// (spec × utilization × seed) flow point is submitted together so the pool
/// stays saturated across configuration boundaries.
fn run_sweeps(
    pool: &Pool,
    design: DesignKind,
    experiment: &str,
    specs: Vec<SweepSpec>,
    runlog: &mut Vec<RunLogRow>,
    traces: &mut Vec<LabeledPoint>,
) -> Vec<SweepResult> {
    // Phase 1: contexts (library + netlist) per spec, in parallel.
    let contexts: Vec<(Library, Netlist)> = pool
        .run(specs.iter().collect(), |spec: &&SweepSpec| {
            let library = spec.base.build_library()?;
            let netlist = build_design(&library, design);
            Ok::<_, crate::FlowError>((library, netlist))
        })
        .into_iter()
        .zip(&specs)
        .map(|(o, spec)| {
            runlog.push(RunLogRow::from_stats(
                experiment,
                format!("build:{}", spec.label),
                &o.stats,
                None,
            ));
            match o.result {
                Ok(ctx) => ctx,
                Err(e) => panic!("context build for {} failed: {e}", spec.label),
            }
        })
        .collect();

    // Phase 2: the flat DoE grid.
    struct PointJob {
        spec: usize,
        util: f64,
        seed: u64,
    }
    let jobs: Vec<PointJob> = specs
        .iter()
        .enumerate()
        .flat_map(|(si, spec)| {
            spec.utils.iter().flat_map(move |&u| {
                SWEEP_SEEDS.iter().map(move |&seed| PointJob {
                    spec: si,
                    util: u,
                    seed,
                })
            })
        })
        .collect();
    let mut outcomes = pool
        .run(jobs, |job| {
            let (library, netlist) = &contexts[job.spec];
            let config = FlowConfig {
                utilization: job.util,
                seed: job.seed,
                ..specs[job.spec].base.clone()
            };
            flow_job(netlist, library, &config)
        })
        .into_iter();

    // Phase 3: reassemble per spec, in submission order.
    specs
        .iter()
        .map(|spec| {
            let chunk: Vec<_> = (&mut outcomes)
                .take(spec.utils.len() * SWEEP_SEEDS.len())
                .collect();
            let (max_util, points) = assemble_sweep(
                experiment,
                &format!("{}/", spec.label),
                &spec.utils,
                chunk,
                runlog,
                traces,
            );
            SweepResult {
                label: spec.label.clone(),
                max_util,
                points,
            }
        })
        .collect()
}

/// The three configurations Fig. 8 compares.
fn fig8_configs() -> Vec<(&'static str, FlowConfig)> {
    vec![
        ("4T CFET (FM12)", FlowConfig::baseline(TechKind::Cfet4t)),
        (
            "3.5T FFET FM12 (single-sided)",
            FlowConfig::baseline(TechKind::Ffet3p5t),
        ),
        (
            "3.5T FFET FM12BM12 (FP0.5BP0.5)",
            FlowConfig {
                pattern: RoutingPattern::fixed(12, 12),
                back_pin_ratio: 0.5,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
    ]
}

/// Result of the Fig. 8 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8 {
    /// Rendered table.
    pub table: ExpTable,
    /// Per-config maximum valid utilization.
    pub max_utils: Vec<(String, Option<f64>)>,
    /// All sweep points per config.
    pub sweeps: Vec<(String, Vec<UtilPoint>)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Reproduces Fig. 8: core area vs utilization and the maximum-utilization
/// limits of CFET, single-sided FFET and dual-sided FFET.
#[must_use]
pub fn fig8() -> Fig8 {
    fig8_with(DesignKind::Rv32)
}

/// [`fig8`] with a configurable benchmark design.
#[must_use]
pub fn fig8_with(design: DesignKind) -> Fig8 {
    fig8_on(design, &Pool::from_env())
}

/// [`fig8`] on an explicit DoE pool.
#[must_use]
pub fn fig8_on(design: DesignKind, pool: &Pool) -> Fig8 {
    let utils: Vec<f64> = (1..=13).map(|i| 0.40 + 0.04 * i as f64).collect(); // 0.44..0.92
    let specs = fig8_configs()
        .into_iter()
        .map(|(label, base)| SweepSpec {
            label: label.to_owned(),
            base,
            utils: utils.clone(),
        })
        .collect();
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    let results = run_sweeps(pool, design, "fig8", specs, &mut runlog, &mut traces);
    let mut max_utils = Vec::new();
    let mut sweeps = Vec::new();
    let mut rows = Vec::new();
    for r in results {
        for p in &r.points {
            rows.push(vec![
                r.label.clone(),
                format!("{:.0}%", p.utilization * 100.0),
                format!("{:.1}", p.report.core_area_um2),
                p.report.drv.to_string(),
                if p.report.valid {
                    "valid".into()
                } else {
                    "INVALID".into()
                },
            ]);
        }
        max_utils.push((r.label.clone(), r.max_util));
        sweeps.push((r.label, r.points));
    }
    let mut notes: Vec<String> = max_utils
        .iter()
        .map(|(l, m)| {
            format!(
                "max utilization {l}: {}",
                m.map_or_else(|| "none".into(), |u| format!("{:.0}%", u * 100.0))
            )
        })
        .collect();
    // Area reduction at the highest common valid utilization.
    if let (Some((_, cfet_pts)), Some((_, ffet_pts))) = (sweeps.first(), sweeps.get(2)) {
        if let (Some(c), Some(f)) = (
            cfet_pts.iter().rfind(|p| p.report.valid),
            ffet_pts.iter().find(|p| {
                Some(p.utilization)
                    == cfet_pts
                        .iter()
                        .rfind(|q| q.report.valid)
                        .map(|q| q.utilization)
            }),
        ) {
            notes.push(format!(
                "FFET FM12BM12 core area at CFET's max utilization: {:+.1}% (paper: −23.3% at same utilization)",
                pct_diff(f.report.core_area_um2, c.report.core_area_um2)
            ));
        }
        let min_area = |pts: &[UtilPoint]| {
            pts.iter()
                .filter(|p| p.report.valid)
                .map(|p| p.report.core_area_um2)
                .fold(f64::INFINITY, f64::min)
        };
        let (ca, fa) = (min_area(cfet_pts), min_area(ffet_pts));
        if ca.is_finite() && fa.is_finite() {
            notes.push(format!(
                "minimum valid core area FFET vs CFET: {:+.1}% (paper: −25.1%)",
                pct_diff(fa, ca)
            ));
        }
    }
    notes.push("paper: max util FFET FM12BM12 = 86% (Power-Tap-Cell-limited), FFET FM12 = 76%, both above/below CFET respectively".into());
    Fig8 {
        table: ExpTable {
            title: "Fig. 8 — core area vs utilization & maximum utilization".into(),
            header: vec![
                "Config".into(),
                "Util".into(),
                "Area µm²".into(),
                "DRV".into(),
                "Validity".into(),
            ],
            rows,
            notes,
        },
        max_utils,
        sweeps,
        runlog,
        traces,
    }
}

/// Result of the Fig. 9 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// Rendered table.
    pub table: ExpTable,
    /// (config label, target GHz, achieved GHz, power mW).
    pub points: Vec<(String, f64, f64, f64)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Reproduces Fig. 9: power–frequency comparison of CFET vs single-sided
/// FFET, sweeping the synthesis target from 0.5 to 3 GHz at 76% util.
#[must_use]
pub fn fig9() -> Fig9 {
    fig9_with(DesignKind::Rv32)
}

/// [`fig9`] with a configurable benchmark design.
#[must_use]
pub fn fig9_with(design: DesignKind) -> Fig9 {
    fig9_on(design, &Pool::from_env())
}

/// [`fig9`] on an explicit DoE pool.
#[must_use]
pub fn fig9_on(design: DesignKind, pool: &Pool) -> Fig9 {
    let targets = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
    let configs = [
        (
            "4T CFET",
            FlowConfig {
                utilization: 0.76,
                ..FlowConfig::baseline(TechKind::Cfet4t)
            },
        ),
        (
            "3.5T FFET FM12",
            FlowConfig {
                utilization: 0.76,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
    ];
    let mut runlog = Vec::new();
    let contexts: Vec<(Library, Netlist)> = pool
        .run(configs.iter().collect(), |job: &&(&str, FlowConfig)| {
            let library = job.1.build_library()?;
            let netlist = build_design(&library, design);
            Ok::<_, crate::FlowError>((library, netlist))
        })
        .into_iter()
        .zip(&configs)
        .map(|(o, (label, _))| {
            runlog.push(RunLogRow::from_stats(
                "fig9",
                format!("build:{label}"),
                &o.stats,
                None,
            ));
            o.result
                .unwrap_or_else(|e| panic!("context build for {label} failed: {e}"))
        })
        .collect();
    let jobs: Vec<(usize, f64)> = (0..configs.len())
        .flat_map(|ci| targets.iter().map(move |&t| (ci, t)))
        .collect();
    let outcomes = pool.run(jobs.clone(), |&(ci, t)| {
        let (library, netlist) = &contexts[ci];
        let config = FlowConfig {
            target_freq_ghz: t,
            ..configs[ci].1.clone()
        };
        flow_job(netlist, library, &config)
    });
    let mut traces = Vec::new();
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (o, (ci, t)) in outcomes.into_iter().zip(jobs) {
        let label = configs[ci].0;
        record_point(
            "fig9",
            format!("{label}/t{t:.2}"),
            &o,
            &mut runlog,
            &mut traces,
        );
        if let Ok((report, _, _)) = o.result {
            rows.push(vec![
                label.to_owned(),
                f2(t),
                format!("{:.3}", report.achieved_freq_ghz),
                format!("{:.3}", report.power_mw),
                report.drv.to_string(),
            ]);
            points.push((
                label.to_owned(),
                t,
                report.achieved_freq_ghz,
                report.power_mw,
            ));
        }
    }
    let mut notes = vec![
        "paper: FFET FM12 +25.0% frequency and −11.9% power vs CFET at 76% utilization".into(),
    ];
    let best = |label: &str| {
        points
            .iter()
            .filter(|(l, ..)| l == label)
            .map(|&(_, _, f, _)| f)
            .fold(0.0f64, f64::max)
    };
    let (fc, ff) = (best("4T CFET"), best("3.5T FFET FM12"));
    if fc > 0.0 {
        notes.push(format!(
            "measured best achieved frequency: FFET {:+.1}% vs CFET",
            pct_diff(ff, fc)
        ));
    }
    Fig9 {
        table: ExpTable {
            title: "Fig. 9 — power–frequency, CFET vs FFET FM12 (util 76%)".into(),
            header: vec![
                "Config".into(),
                "Target GHz".into(),
                "Achieved GHz".into(),
                "Power mW".into(),
                "DRV".into(),
            ],
            rows,
            notes,
        },
        points,
        runlog,
        traces,
    }
}

/// Result of the Fig. 10 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// Rendered table.
    pub table: ExpTable,
    /// (config, core area µm², achieved GHz, valid).
    pub points: Vec<(String, f64, f64, bool)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Reproduces Fig. 10: frequency–area at a 1.5 GHz synthesis target (the
/// area axis is swept through the utilization).
#[must_use]
pub fn fig10() -> Fig10 {
    fig10_with(DesignKind::Rv32)
}

/// [`fig10`] with a configurable benchmark design.
#[must_use]
pub fn fig10_with(design: DesignKind) -> Fig10 {
    fig10_on(design, &Pool::from_env())
}

/// [`fig10`] on an explicit DoE pool.
#[must_use]
pub fn fig10_on(design: DesignKind, pool: &Pool) -> Fig10 {
    let utils: Vec<f64> = (0..8).map(|i| 0.46 + 0.06 * i as f64).collect(); // 0.46..0.88
    let configs = [
        ("4T CFET", FlowConfig::baseline(TechKind::Cfet4t)),
        ("3.5T FFET FM12", FlowConfig::baseline(TechKind::Ffet3p5t)),
    ];
    let specs = configs
        .into_iter()
        .map(|(label, base)| SweepSpec {
            label: label.to_owned(),
            base,
            utils: utils.clone(),
        })
        .collect();
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    let results = run_sweeps(pool, design, "fig10", specs, &mut runlog, &mut traces);
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for r in results {
        for p in r.points {
            rows.push(vec![
                r.label.clone(),
                format!("{:.0}%", p.utilization * 100.0),
                format!("{:.1}", p.report.core_area_um2),
                format!("{:.3}", p.report.achieved_freq_ghz),
                if p.report.valid {
                    "valid".into()
                } else {
                    "INVALID".into()
                },
            ]);
            points.push((
                r.label.clone(),
                p.report.core_area_um2,
                p.report.achieved_freq_ghz,
                p.report.valid,
            ));
        }
    }
    Fig10 {
        table: ExpTable {
            title: "Fig. 10 — frequency–area at 1.5 GHz target".into(),
            header: vec![
                "Config".into(),
                "Util".into(),
                "Area µm²".into(),
                "Achieved GHz".into(),
                "Validity".into(),
            ],
            rows,
            notes: vec![
                "paper: FFET FM12 +16.0% frequency at CFET's best area; +23.4% at respective maxima".into(),
            ],
        },
        points,
        runlog,
        traces,
    }
}

/// The five input-pin-density DoEs of Fig. 11 / Table III.
const PIN_DENSITY_DOES: [f64; 5] = [0.04, 0.16, 0.30, 0.40, 0.50];

/// Result of the Fig. 11 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// Rendered table.
    pub table: ExpTable,
    /// (BP ratio, mean achieved GHz, mean power mW) across the util sweep.
    pub means: Vec<(f64, f64, f64)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Reproduces Fig. 11: power–frequency distributions of the five backside
/// pin-density DoEs under FM12BM12, sweeping utilization 46–76%.
#[must_use]
pub fn fig11() -> Fig11 {
    fig11_with(DesignKind::Rv32)
}

/// [`fig11`] with a configurable benchmark design.
#[must_use]
pub fn fig11_with(design: DesignKind) -> Fig11 {
    fig11_on(design, &Pool::from_env())
}

/// [`fig11`] on an explicit DoE pool.
#[must_use]
pub fn fig11_on(design: DesignKind, pool: &Pool) -> Fig11 {
    let utils: Vec<f64> = (0..6).map(|i| 0.46 + 0.06 * i as f64).collect(); // 0.46..0.76
    let specs = PIN_DENSITY_DOES
        .iter()
        .map(|&bp| SweepSpec {
            label: format!("FP{:.2}BP{bp:.2}", 1.0 - bp),
            base: FlowConfig {
                pattern: RoutingPattern::fixed(12, 12),
                back_pin_ratio: bp,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
            utils: utils.clone(),
        })
        .collect();
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    let results = run_sweeps(pool, design, "fig11", specs, &mut runlog, &mut traces);
    let mut rows = Vec::new();
    let mut means = Vec::new();
    for (r, &bp) in results.iter().zip(&PIN_DENSITY_DOES) {
        let mut fsum = 0.0;
        let mut psum = 0.0;
        let mut n = 0.0;
        for p in &r.points {
            rows.push(vec![
                r.label.clone(),
                format!("{:.0}%", p.utilization * 100.0),
                format!("{:.3}", p.report.achieved_freq_ghz),
                format!("{:.3}", p.report.power_mw),
                p.report.drv.to_string(),
            ]);
            fsum += p.report.achieved_freq_ghz;
            psum += p.report.power_mw;
            n += 1.0;
        }
        if n > 0.0 {
            means.push((bp, fsum / n, psum / n));
        }
    }
    let mut notes = vec![
        "paper: FP0.5BP0.5 and FP0.6BP0.4 best, FP0.7BP0.3 next, FP0.84/FP0.96 trailing".into(),
    ];
    for (bp, f, p) in &means {
        notes.push(format!(
            "BP{bp:.2}: mean achieved {f:.3} GHz at mean {p:.3} mW"
        ));
    }
    Fig11 {
        table: ExpTable {
            title: "Fig. 11 — pin-density DoEs under FM12BM12 (util 46–76%)".into(),
            header: vec![
                "DoE".into(),
                "Util".into(),
                "Achieved GHz".into(),
                "Power mW".into(),
                "DRV".into(),
            ],
            rows,
            notes,
        },
        means,
        runlog,
        traces,
    }
}

/// Result of the Table III reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Rendered table.
    pub table: ExpTable,
    /// (BP ratio, pattern, Δfreq %, Δpower %).
    pub rows_data: Vec<(f64, RoutingPattern, f64, f64)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Reproduces Table III: pin density × routing-layer co-optimization with
/// a 12-layer total budget, relative to the single-sided FFET FM12
/// baseline at 76% utilization and 1.5 GHz target.
#[must_use]
pub fn table3() -> Table3 {
    table3_with(DesignKind::Rv32)
}

/// [`table3`] with a configurable benchmark design.
#[must_use]
pub fn table3_with(design: DesignKind) -> Table3 {
    table3_on(design, &Pool::from_env())
}

/// [`table3`] on an explicit DoE pool.
///
/// # Panics
///
/// Panics if the single-sided baseline run fails — every row of the table
/// is a diff against it.
#[must_use]
pub fn table3_on(design: DesignKind, pool: &Pool) -> Table3 {
    // The paper's DoE rows (Table III).
    let rows_spec: [(f64, (u8, u8)); 13] = [
        (0.04, (10, 2)),
        (0.04, (9, 3)),
        (0.16, (9, 3)),
        (0.16, (8, 4)),
        (0.30, (9, 3)),
        (0.30, (8, 4)),
        (0.30, (7, 5)),
        (0.40, (8, 4)),
        (0.40, (7, 5)),
        (0.40, (6, 6)),
        (0.50, (8, 4)),
        (0.50, (7, 5)),
        (0.50, (6, 6)),
    ];
    // 72% utilization: high enough to stress routability, low enough that
    // the well-matched pin-density/layer pairings stay valid (our router
    // weighs backside pin access harder than the paper's, so the exact
    // paper point of 76% leaves only the front-heavy rows valid).
    let base_cfg = FlowConfig {
        utilization: 0.72,
        ..FlowConfig::baseline(TechKind::Ffet3p5t)
    };
    let base_lib = base_cfg
        .build_library()
        .expect("baseline config has no pin redistribution");
    let netlist = build_design(&base_lib, design);

    // The baseline and every DoE row share one netlist but build their own
    // (possibly pin-redistributed) library inside the job, so the whole
    // table is a single flat grid: job 0 is the baseline, jobs 1.. the rows.
    let mut jobs: Vec<(f64, FlowConfig)> = vec![(0.0, base_cfg.clone())];
    jobs.extend(rows_spec.iter().map(|&(bp, (fm, bm))| {
        (
            bp,
            FlowConfig {
                pattern: RoutingPattern::fixed(fm, bm),
                back_pin_ratio: bp,
                ..base_cfg.clone()
            },
        )
    }));
    let outcomes = pool.run(jobs.clone(), |(_, config)| {
        let library = config.build_library().map_err(config_failure)?;
        flow_job(&netlist, &library, config)
    });
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    for (o, (bp, config)) in outcomes.iter().zip(&jobs) {
        let label = if o.stats.index == 0 {
            "baseline/FM12".to_owned()
        } else {
            format!("FP{:.2}BP{bp:.2}/{}", 1.0 - bp, config.pattern)
        };
        record_point("table3", label, o, &mut runlog, &mut traces);
    }
    let mut outcomes = outcomes.into_iter();
    let (base, _, _) = outcomes
        .next()
        .expect("baseline submitted")
        .result
        .unwrap_or_else(|e| panic!("baseline runs: {e}"));

    let mut rows = Vec::new();
    let mut rows_data = Vec::new();
    for (o, (bp, config)) in outcomes.zip(jobs.iter().skip(1)) {
        if let Ok((report, _, _)) = o.result {
            let df = pct_diff(report.achieved_freq_ghz, base.achieved_freq_ghz);
            let dp = pct_diff(report.power_mw, base.power_mw);
            rows.push(vec![
                format!("FP{:.2}BP{bp:.2}", 1.0 - bp),
                config.pattern.to_string(),
                pct(df),
                pct(dp),
                report.drv.to_string(),
            ]);
            rows_data.push((*bp, config.pattern, df, dp));
        }
    }
    Table3 {
        table: ExpTable {
            title: "Table III — pin density × routing layers vs FFET FM12 baseline".into(),
            header: vec![
                "Input pin density".into(),
                "Pattern".into(),
                "Δfreq".into(),
                "Δpower".into(),
                "DRV".into(),
            ],
            rows,
            notes: vec![
                "paper: best Δfreq without power degradation +10.6% (FP0.5BP0.5 FM6BM6); best Δfreq +12.8% (FP0.7BP0.3 FM8BM4/FM7BM5, +1.4% power)".into(),
            ],
        },
        rows_data,
        runlog,
        traces,
    }
}

/// Result of the Fig. 12 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// Rendered table.
    pub table: ExpTable,
    /// (layers per side, max valid utilization).
    pub points: Vec<(u8, Option<f64>)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Reproduces Fig. 12: maximum utilization of FFET FP0.5BP0.5 as the
/// number of routing layers per side shrinks from 12 to 2.
#[must_use]
pub fn fig12() -> Fig12 {
    fig12_with(DesignKind::Rv32)
}

/// [`fig12`] with a configurable benchmark design.
#[must_use]
pub fn fig12_with(design: DesignKind) -> Fig12 {
    fig12_on(design, &Pool::from_env())
}

/// [`fig12`] on an explicit DoE pool.
#[must_use]
pub fn fig12_on(design: DesignKind, pool: &Pool) -> Fig12 {
    // A coarser grid than Fig. 8 keeps this 11-pattern sweep tractable;
    // the paper's plateau (86% down to 4 layers/side, ~70% at 2) is still
    // resolvable.
    let utils: Vec<f64> = vec![0.48, 0.56, 0.64, 0.72, 0.80, 0.84, 0.88];
    let layers: Vec<u8> = (2..=12u8).rev().collect();
    let specs = layers
        .iter()
        .map(|&n| SweepSpec {
            label: format!("FM{n}BM{n}"),
            base: FlowConfig {
                pattern: RoutingPattern::fixed(n, n),
                back_pin_ratio: 0.5,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
            utils: utils.clone(),
        })
        .collect();
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    let results = run_sweeps(pool, design, "fig12", specs, &mut runlog, &mut traces);
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (r, &n) in results.iter().zip(&layers) {
        rows.push(vec![
            r.label.clone(),
            r.max_util
                .map_or_else(|| "none".into(), |u| format!("{:.0}%", u * 100.0)),
        ]);
        points.push((n, r.max_util));
    }
    Fig12 {
        table: ExpTable {
            title: "Fig. 12 — max utilization vs routing layers per side (FP0.5BP0.5)".into(),
            header: vec!["Pattern".into(), "Max utilization".into()],
            rows,
            notes: vec!["paper: constant 86% down to 4 layers/side, ~70% at 2 layers/side".into()],
        },
        points,
        runlog,
        traces,
    }
}

/// Result of the Fig. 13 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// Rendered table.
    pub table: ExpTable,
    /// (layers per side, efficiency GHz/mW, Δ vs 12 layers %).
    pub points: Vec<(u8, f64, f64)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Reproduces Fig. 13: power efficiency of FFET FP0.5BP0.5 vs routing
/// layers per side at 76% utilization / 1.5 GHz target.
#[must_use]
pub fn fig13() -> Fig13 {
    fig13_with(DesignKind::Rv32)
}

/// [`fig13`] with a configurable benchmark design.
#[must_use]
pub fn fig13_with(design: DesignKind) -> Fig13 {
    fig13_on(design, &Pool::from_env())
}

/// [`fig13`] on an explicit DoE pool.
#[must_use]
pub fn fig13_on(design: DesignKind, pool: &Pool) -> Fig13 {
    let layers: Vec<u8> = (3..=12u8).rev().collect();
    // One job per pattern; each builds its own library + netlist, so the
    // whole figure parallelizes including the context builds.
    let outcomes = pool.run(layers.clone(), |&n| {
        let config = FlowConfig {
            pattern: RoutingPattern::fixed(n, n),
            back_pin_ratio: 0.5,
            utilization: 0.76,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library().map_err(config_failure)?;
        let netlist = build_design(&library, design);
        flow_job(&netlist, &library, &config)
    });
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    let mut effs: Vec<(u8, f64)> = Vec::new();
    for (o, &n) in outcomes.into_iter().zip(&layers) {
        record_point("fig13", format!("FM{n}BM{n}"), &o, &mut runlog, &mut traces);
        if let Ok((report, _, _)) = o.result {
            effs.push((n, report.efficiency_ghz_per_mw()));
        }
    }
    let base = effs.first().map_or(1.0, |&(_, e)| e);
    let points: Vec<(u8, f64, f64)> = effs
        .iter()
        .map(|&(n, e)| (n, e, pct_diff(e, base)))
        .collect();
    let rows = points
        .iter()
        .map(|&(n, e, d)| vec![format!("FM{n}BM{n}"), format!("{e:.4}"), pct(d)])
        .collect();
    Fig13 {
        table: ExpTable {
            title: "Fig. 13 — power efficiency vs routing layers per side".into(),
            header: vec!["Pattern".into(), "GHz/mW".into(), "Δ vs 12 layers".into()],
            rows,
            notes: vec![
                "paper: only −0.68% efficiency when reduced from 12 to 5 layers per side".into(),
            ],
        },
        points,
        runlog,
        traces,
    }
}

// ---------------------------------------------------------------------
// Ablation: Algorithm 1 vs conventional bridging cells
// ---------------------------------------------------------------------

/// Result of the bridging-vs-dual-sided-pins ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct BridgingAblation {
    /// Rendered table.
    pub table: ExpTable,
    /// (label, report) per configuration.
    pub reports: Vec<(String, PpaReport)>,
    /// Per-job telemetry (outside the determinism contract).
    pub runlog: Vec<RunLogRow>,
    /// Per-point spans and metrics for the run artifacts (metric values
    /// deterministic, span timings wall-clock).
    pub traces: Vec<LabeledPoint>,
}

/// Ablation of the paper's key design choice (§III.A): dual-sided signals
/// via redistributed input pins (Algorithm 1) against the conventional
/// bridging-cell transfer, and against staying single-sided. The paper
/// skipped bridging cells "to minimize the area cost" — this experiment
/// measures that cost.
#[must_use]
pub fn bridging_ablation() -> BridgingAblation {
    bridging_ablation_with(DesignKind::Rv32)
}

/// [`bridging_ablation`] with a configurable benchmark design.
#[must_use]
pub fn bridging_ablation_with(design: DesignKind) -> BridgingAblation {
    bridging_ablation_on(design, &Pool::from_env())
}

/// [`bridging_ablation`] on an explicit DoE pool.
#[must_use]
pub fn bridging_ablation_on(design: DesignKind, pool: &Pool) -> BridgingAblation {
    let configs = [
        (
            "single-sided FM12 (baseline)",
            FlowConfig {
                utilization: 0.7,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
        (
            "Algorithm 1: FM6BM6 FP0.5BP0.5",
            FlowConfig {
                utilization: 0.7,
                pattern: RoutingPattern::fixed(6, 6),
                back_pin_ratio: 0.5,
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
        (
            "bridging cells: FM6BM6 FP1.0",
            FlowConfig {
                utilization: 0.7,
                pattern: RoutingPattern::fixed(6, 6),
                back_pin_ratio: 0.0,
                bridging_min_nm: Some(2_000),
                ..FlowConfig::baseline(TechKind::Ffet3p5t)
            },
        ),
    ];
    let outcomes = pool.run(configs.to_vec(), |(_, config)| {
        let library = config.build_library().map_err(config_failure)?;
        let netlist = build_design(&library, design);
        flow_job(&netlist, &library, config)
    });
    let mut runlog = Vec::new();
    let mut traces = Vec::new();
    let mut reports = Vec::new();
    let mut rows = Vec::new();
    for (o, (label, _)) in outcomes.into_iter().zip(configs) {
        record_point("ablation", label.to_owned(), &o, &mut runlog, &mut traces);
        if let Ok((report, _, _)) = o.result {
            rows.push(vec![
                label.to_owned(),
                report.cells.to_string(),
                format!("{:.1}", report.core_area_um2),
                format!("{:.3}", report.achieved_freq_ghz),
                format!("{:.3}", report.power_mw),
                format!("{:.2}", report.back_wirelength_mm),
                report.drv.to_string(),
            ]);
            reports.push((label.to_owned(), report));
        }
    }
    let mut notes = vec![
        "paper: bridging cells cost area and design complexity; FFET's dual-sided pins avoid them entirely".into(),
    ];
    if let (Some((_, alg1)), Some((_, bridged))) = (reports.get(1), reports.get(2)) {
        notes.push(format!(
            "bridging vs Algorithm 1: {:+.1}% cells, {:+.1}% area, {:+.1}% frequency",
            pct_diff(bridged.cells as f64, alg1.cells as f64),
            pct_diff(bridged.core_area_um2, alg1.core_area_um2),
            pct_diff(bridged.achieved_freq_ghz, alg1.achieved_freq_ghz),
        ));
    }
    BridgingAblation {
        table: ExpTable {
            title: "Ablation — dual-sided pins (Algorithm 1) vs bridging cells".into(),
            header: vec![
                "Config".into(),
                "Cells".into(),
                "Area µm²".into(),
                "GHz".into(),
                "mW".into(),
                "Back wl mm".into(),
                "DRV".into(),
            ],
            rows,
            notes,
        },
        reports,
        runlog,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridging_ablation_smoke() {
        let a = bridging_ablation_with(DesignKind::CounterSmall);
        assert_eq!(a.reports.len(), 3);
        // The bridging config physically uses the backside.
        let bridged = &a.reports[2].1;
        assert!(bridged.back_wirelength_mm >= 0.0);
        // And costs cells relative to Algorithm 1.
        assert!(bridged.cells >= a.reports[1].1.cells);
    }

    #[test]
    fn table1_leakage_is_identical() {
        let t = table1();
        for (cell, metric, diff) in &t.diffs {
            if metric == "Leakage power" {
                assert_eq!(*diff, 0.0, "{cell}");
            }
        }
        // Timing improves (negative diffs) for BUF cells.
        let buf_fall: Vec<f64> = t
            .diffs
            .iter()
            .filter(|(c, m, _)| c.starts_with("BUF") && m == "Fall timing")
            .map(|&(_, _, d)| d)
            .collect();
        assert!(buf_fall.iter().all(|&d| d < -3.0), "{buf_fall:?}");
    }

    #[test]
    fn fig4_has_all_cells_and_dff_extra_saving() {
        let f = fig4();
        assert_eq!(f.scalings.len(), CellFunction::FIG4_SET.len());
        let dff = f.scalings.iter().find(|(n, _)| n == "DFF").unwrap().1;
        let inv = f.scalings.iter().find(|(n, _)| n == "INV").unwrap().1;
        assert!(dff > inv);
    }

    #[test]
    fn csv_escapes_and_rounds_trips_shape() {
        let t = ExpTable {
            title: "t".into(),
            header: vec!["a".into(), "b,c".into()],
            rows: vec![vec!["1".into(), "x\"y".into()]],
            notes: vec!["note".into()],
        };
        let csv = t.to_csv();
        assert!(csv.starts_with("a,\"b,c\"\n"));
        assert!(csv.contains("1,\"x\"\"y\"\n"));
        assert!(csv.trim_end().ends_with("# note"));
    }

    #[test]
    fn table2_lists_both_stacks() {
        let t = table2();
        assert!(t.table.rows.iter().any(|r| r[0] == "FM12"));
        assert!(t.table.rows.iter().any(|r| r[0] == "BM12" && r[1] == "/"));
    }

    #[test]
    fn smoke_fig9_on_small_design() {
        // Plumbing check on the fast design: both configs produce points
        // and the FFET points are not slower across the board.
        let f = fig9_with(DesignKind::CounterSmall);
        assert!(f.points.len() >= 8);
        let mean = |label: &str| {
            let v: Vec<f64> = f
                .points
                .iter()
                .filter(|(l, ..)| l == label)
                .map(|&(_, _, fr, _)| fr)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean("3.5T FFET FM12") > mean("4T CFET") * 0.95);
    }
}
