//! Content-addressed stage cache: memoize flow stages across sweep points
//! and runs (DESIGN §14).
//!
//! [`crate::run_flow`] is an explicit DAG of six stages ([`Stage`]); each
//! edge carries a hashable artifact. A stage's *input key* is a canonical
//! string over (upstream artifact addresses, the stage-relevant
//! [`FlowConfig`](crate::FlowConfig) fields, the library signature, seed);
//! its *output payload* is a canonical serialization of the artifact plus
//! the stage's captured span/metric trace ([`ffet_obs::capture`]). Payloads
//! are stored content-addressed under `results/ckpt/objects/`: the address
//! is the FNV-1a hash of the body, so reads are self-verifying and a
//! corrupt ("poisoned") blob degrades to a deterministic miss — never a
//! wrong artifact. A `<keyhash>.key` link file maps input keys to payload
//! addresses.
//!
//! Invalidation is purely structural: any change to a stage's inputs —
//! upstream payload bytes, config field, library, seed, payload schema
//! ([`PAYLOAD_VERSION`]) — changes the key, so stale entries are simply
//! never looked up again (`ffet cache gc` reclaims them). Faulted runs
//! bypass the cache entirely (`run_flow` passes no cache when the fault
//! plan is non-empty), so fault-injected artifacts can neither hit nor
//! pollute it; recovery-ladder attempts perturb seed/utilization/reroute
//! budget and therefore key differently by construction.
//!
//! Determinism (§7): a cache hit rehydrates the artifact *and* its
//! captured trace byte-identically, so metric values and span-tree shape
//! are unchanged warm vs cold. Only the `cached` span attribute (hit/miss
//! provenance) and the process-global [`ffet_obs::cache_stats`] registry —
//! both outside the deterministic plane — differ.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::ckpt::{atomic_write_unique, fnv1a64, hash_hex};
use crate::flow::FlowConfig;
use ffet_geom::{Orientation, Point, Rect};
use ffet_lefdef::{Def, DefComponent, DefConnection, DefNet, DefSpecialNet, DefVia, DefWire};
use ffet_netlist::{InstId, Instance, Net, NetId, Netlist, PinRef, Port, PortDirection};
use ffet_obs::{AttrValue, Histogram, MetricsSnapshot, PointData, SpanEvent};
use ffet_pnr::{
    ClockTree, Floorplan, Placement, PnrResult, PowerPlan, RoutedNet, RoutingResult, Row, TapCell,
};
use ffet_rcx::{NetParasitics, SinkParasitics};
use ffet_sta::{PathStep, PowerReport, TimingReport};
use ffet_tech::{LayerId, Side};
use ffet_verify::{Severity, SignoffReport, Violation};

/// Payload/key schema version: bumped on any change to the canonical
/// serialization or key derivation, which invalidates every existing entry
/// (old blobs become unreachable garbage for `gc`, never wrong answers).
pub const PAYLOAD_VERSION: u64 = 1;

/// Environment variable enabling the stage cache for driver binaries
/// (`repro`, benches). Unset, empty or `0` → disabled; `1` → the default
/// root [`DEFAULT_ROOT`]; anything else → that path. Tests set
/// [`crate::FlowConfig::stage_cache`] directly instead (env is process-wide
/// and `cargo test` is multi-threaded).
pub const STAGE_CACHE_ENV: &str = "FFET_STAGE_CACHE";

/// Default cache root, relative to the run's working directory (inside the
/// PR 8 checkpoint directory, beside the experiment-level blobs).
pub const DEFAULT_ROOT: &str = "results/ckpt/objects";

/// Manifest file inside the cache root: append-only size/stage accounting
/// for `ffet cache stats`/`gc` (advisory — the blobs themselves are ground
/// truth; see [`stats`]).
pub const MANIFEST_FILE: &str = "manifest.jsonl";

/// The stage-cache root from [`STAGE_CACHE_ENV`], if enabled.
#[must_use]
pub fn root_from_env() -> Option<PathBuf> {
    let value = std::env::var(STAGE_CACHE_ENV).ok()?;
    match value.trim() {
        "" | "0" => None,
        "1" => Some(PathBuf::from(DEFAULT_ROOT)),
        path => Some(PathBuf::from(path)),
    }
}

/// The six flow stages, in pipeline order — the nodes of the stage DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Synthesis-lite (fanout buffering + drive sizing).
    Synth,
    /// Floorplan → powerplan → place → CTS → dual-sided route.
    Pnr,
    /// Dual-sided DEF merge.
    Merge,
    /// Static signoff (lint + DRC + LVS-lite).
    Signoff,
    /// Dual-sided RC extraction.
    Rcx,
    /// STA + power.
    Sta,
}

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Synth,
        Stage::Pnr,
        Stage::Merge,
        Stage::Signoff,
        Stage::Rcx,
        Stage::Sta,
    ];

    /// Stage name as used in cache keys, event names and the manifest.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Synth => "synth",
            Stage::Pnr => "pnr",
            Stage::Merge => "merge",
            Stage::Signoff => "signoff",
            Stage::Rcx => "rcx",
            Stage::Sta => "sta",
        }
    }

    /// Upstream stages whose payload addresses enter this stage's key —
    /// the DAG edges. `Synth` additionally keys on the input netlist hash,
    /// and every stage keys on its slice of the config (see the `*_key`
    /// functions).
    #[must_use]
    pub fn deps(self) -> &'static [Stage] {
        match self {
            Stage::Synth => &[],
            Stage::Pnr => &[Stage::Synth],
            Stage::Merge => &[Stage::Pnr],
            Stage::Signoff => &[Stage::Pnr, Stage::Merge],
            Stage::Rcx => &[Stage::Pnr, Stage::Merge],
            Stage::Sta => &[Stage::Pnr, Stage::Rcx],
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical codec
// ---------------------------------------------------------------------------
//
// A deliberately boring token stream: every scalar is one whitespace-
// terminated token, floats are the hex of their IEEE bits (bit-exact round
// trip), strings are length-prefixed raw bytes. Canonical by construction —
// the same value always encodes to the same bytes, which is what makes
// content addressing work. Decoding is total: any malformed input yields
// `None`, which the cache treats as a miss.

/// Canonical payload encoder.
pub struct Enc {
    buf: String,
}

impl Enc {
    /// Starts a payload for `stage` (version + stage tag prefix).
    #[must_use]
    pub fn new(stage: &str) -> Enc {
        let mut e = Enc { buf: String::new() };
        e.u(PAYLOAD_VERSION);
        e.s(stage);
        e
    }

    fn u(&mut self, v: u64) {
        let _ = write!(self.buf, "{v} ");
    }

    fn i(&mut self, v: i64) {
        let _ = write!(self.buf, "{v} ");
    }

    fn i128v(&mut self, v: i128) {
        let _ = write!(self.buf, "{v} ");
    }

    fn f(&mut self, v: f64) {
        let _ = write!(self.buf, "{:016x} ", v.to_bits());
    }

    fn b(&mut self, v: bool) {
        self.u(u64::from(v));
    }

    fn s(&mut self, v: &str) {
        let _ = write!(self.buf, "{}:", v.len());
        self.buf.push_str(v);
        self.buf.push(' ');
    }

    /// The finished payload body.
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Canonical payload decoder; every reader returns `None` on malformed
/// input (the caller treats the payload as a miss).
pub struct Dec<'a> {
    rest: &'a str,
}

impl<'a> Dec<'a> {
    /// Opens a payload, validating the version + stage tag prefix.
    #[must_use]
    pub fn new(text: &'a str, stage: &str) -> Option<Dec<'a>> {
        let mut d = Dec { rest: text };
        if d.u()? != PAYLOAD_VERSION || d.s()? != stage {
            return None;
        }
        Some(d)
    }

    fn token(&mut self) -> Option<&'a str> {
        let sp = self.rest.find(' ')?;
        let tok = &self.rest[..sp];
        self.rest = &self.rest[sp + 1..];
        Some(tok)
    }

    fn u(&mut self) -> Option<u64> {
        self.token()?.parse().ok()
    }

    fn i(&mut self) -> Option<i64> {
        self.token()?.parse().ok()
    }

    fn i128v(&mut self) -> Option<i128> {
        self.token()?.parse().ok()
    }

    fn f(&mut self) -> Option<f64> {
        u64::from_str_radix(self.token()?, 16)
            .ok()
            .map(f64::from_bits)
    }

    fn b(&mut self) -> Option<bool> {
        match self.u()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn s(&mut self) -> Option<&'a str> {
        let colon = self.rest.find(':')?;
        let len: usize = self.rest[..colon].parse().ok()?;
        let start = colon + 1;
        let out = self.rest.get(start..start + len)?;
        self.rest = self.rest.get(start + len..)?.strip_prefix(' ')?;
        Some(out)
    }

    /// Element count for a sequence, bounded by the remaining input (every
    /// element is at least two bytes) so a corrupt length cannot drive a
    /// pathological allocation.
    fn len(&mut self) -> Option<usize> {
        let n = usize::try_from(self.u()?).ok()?;
        (n <= self.rest.len()).then_some(n)
    }

    fn usz(&mut self) -> Option<usize> {
        usize::try_from(self.u()?).ok()
    }

    fn u32v(&mut self) -> Option<u32> {
        u32::try_from(self.u()?).ok()
    }

    /// True once the payload is fully consumed (trailing garbage → reject).
    #[must_use]
    pub fn done(&self) -> bool {
        self.rest.is_empty()
    }
}

// --- geometry / id leaves ---

fn enc_point(e: &mut Enc, p: Point) {
    e.i(p.x);
    e.i(p.y);
}

fn dec_point(d: &mut Dec<'_>) -> Option<Point> {
    Some(Point {
        x: d.i()?,
        y: d.i()?,
    })
}

fn enc_rect(e: &mut Enc, r: Rect) {
    enc_point(e, r.lo);
    enc_point(e, r.hi);
}

fn dec_rect(d: &mut Dec<'_>) -> Option<Rect> {
    Some(Rect {
        lo: dec_point(d)?,
        hi: dec_point(d)?,
    })
}

fn enc_orient(e: &mut Enc, o: Orientation) {
    e.b(o == Orientation::FlippedSouth);
}

fn dec_orient(d: &mut Dec<'_>) -> Option<Orientation> {
    Some(if d.b()? {
        Orientation::FlippedSouth
    } else {
        Orientation::North
    })
}

fn enc_layer(e: &mut Enc, l: LayerId) {
    e.b(l.side == Side::Back);
    e.u(u64::from(l.index));
}

fn dec_layer(d: &mut Dec<'_>) -> Option<LayerId> {
    let side = if d.b()? { Side::Back } else { Side::Front };
    Some(LayerId {
        side,
        index: u8::try_from(d.u()?).ok()?,
    })
}

fn enc_pinref(e: &mut Enc, p: PinRef) {
    e.u(u64::from(p.inst.0));
    e.u(p.pin as u64);
}

fn dec_pinref(d: &mut Dec<'_>) -> Option<PinRef> {
    Some(PinRef {
        inst: InstId(d.u32v()?),
        pin: d.usz()?,
    })
}

// --- netlist ---

fn enc_netlist(e: &mut Enc, nl: &Netlist) {
    e.s(nl.name());
    e.u(nl.instances().len() as u64);
    for inst in nl.instances() {
        e.s(&inst.name);
        e.u(u64::from(inst.cell.0));
        e.u(inst.conns.len() as u64);
        for conn in &inst.conns {
            match conn {
                Some(net) => {
                    e.b(true);
                    e.u(u64::from(net.0));
                }
                None => e.b(false),
            }
        }
        e.b(inst.fixed);
    }
    e.u(nl.nets().len() as u64);
    for net in nl.nets() {
        e.s(&net.name);
        match net.driver {
            Some(p) => {
                e.b(true);
                enc_pinref(e, p);
            }
            None => e.b(false),
        }
        e.u(net.sinks.len() as u64);
        for &s in &net.sinks {
            enc_pinref(e, s);
        }
        e.b(net.is_clock);
    }
    e.u(nl.ports().len() as u64);
    for port in nl.ports() {
        e.s(&port.name);
        e.b(port.direction == PortDirection::Output);
        e.u(u64::from(port.net.0));
    }
}

fn dec_netlist(d: &mut Dec<'_>) -> Option<Netlist> {
    let name = d.s()?.to_owned();
    let mut instances = Vec::with_capacity(d.len()?);
    for _ in 0..instances.capacity() {
        let iname = d.s()?.to_owned();
        let cell = ffet_cells::CellId(d.u32v()?);
        let mut conns = Vec::with_capacity(d.len()?);
        for _ in 0..conns.capacity() {
            conns.push(if d.b()? { Some(NetId(d.u32v()?)) } else { None });
        }
        instances.push(Instance {
            name: iname,
            cell,
            conns,
            fixed: d.b()?,
        });
    }
    let mut nets = Vec::with_capacity(d.len()?);
    for _ in 0..nets.capacity() {
        let nname = d.s()?.to_owned();
        let driver = if d.b()? { Some(dec_pinref(d)?) } else { None };
        let mut sinks = Vec::with_capacity(d.len()?);
        for _ in 0..sinks.capacity() {
            sinks.push(dec_pinref(d)?);
        }
        nets.push(Net {
            name: nname,
            driver,
            sinks,
            is_clock: d.b()?,
        });
    }
    let mut ports = Vec::with_capacity(d.len()?);
    for _ in 0..ports.capacity() {
        let pname = d.s()?.to_owned();
        let direction = if d.b()? {
            PortDirection::Output
        } else {
            PortDirection::Input
        };
        ports.push(Port {
            name: pname,
            direction,
            net: NetId(d.u32v()?),
        });
    }
    Netlist::from_parts(name, instances, nets, ports).ok()
}

// --- DEF ---

fn enc_def(e: &mut Enc, def: &Def) {
    e.s(&def.design);
    e.i(def.dbu_per_micron);
    enc_rect(e, def.die);
    e.u(def.components.len() as u64);
    for c in &def.components {
        e.s(&c.name);
        e.s(&c.macro_name);
        enc_point(e, c.origin);
        enc_orient(e, c.orient);
        e.b(c.fixed);
    }
    e.u(def.nets.len() as u64);
    for n in &def.nets {
        e.s(&n.name);
        e.u(n.connections.len() as u64);
        for conn in &n.connections {
            e.s(&conn.instance);
            e.s(&conn.pin);
        }
        e.u(n.wires.len() as u64);
        for w in &n.wires {
            enc_layer(e, w.layer);
            enc_point(e, w.from);
            enc_point(e, w.to);
        }
        e.u(n.vias.len() as u64);
        for v in &n.vias {
            enc_point(e, v.at);
            enc_layer(e, v.from_layer);
            enc_layer(e, v.to_layer);
        }
    }
    e.u(def.special_nets.len() as u64);
    for sn in &def.special_nets {
        enc_special_net(e, sn);
    }
}

fn enc_special_net(e: &mut Enc, sn: &DefSpecialNet) {
    e.s(&sn.name);
    e.u(sn.shapes.len() as u64);
    for &(layer, rect) in &sn.shapes {
        enc_layer(e, layer);
        enc_rect(e, rect);
    }
}

fn dec_special_net(d: &mut Dec<'_>) -> Option<DefSpecialNet> {
    let name = d.s()?.to_owned();
    let mut shapes = Vec::with_capacity(d.len()?);
    for _ in 0..shapes.capacity() {
        shapes.push((dec_layer(d)?, dec_rect(d)?));
    }
    Some(DefSpecialNet { name, shapes })
}

fn dec_def(d: &mut Dec<'_>) -> Option<Def> {
    let design = d.s()?.to_owned();
    let dbu_per_micron = d.i()?;
    let die = dec_rect(d)?;
    let mut components = Vec::with_capacity(d.len()?);
    for _ in 0..components.capacity() {
        components.push(DefComponent {
            name: d.s()?.to_owned(),
            macro_name: d.s()?.to_owned(),
            origin: dec_point(d)?,
            orient: dec_orient(d)?,
            fixed: d.b()?,
        });
    }
    let mut nets = Vec::with_capacity(d.len()?);
    for _ in 0..nets.capacity() {
        let name = d.s()?.to_owned();
        let mut connections = Vec::with_capacity(d.len()?);
        for _ in 0..connections.capacity() {
            connections.push(DefConnection {
                instance: d.s()?.to_owned(),
                pin: d.s()?.to_owned(),
            });
        }
        let mut wires = Vec::with_capacity(d.len()?);
        for _ in 0..wires.capacity() {
            wires.push(DefWire {
                layer: dec_layer(d)?,
                from: dec_point(d)?,
                to: dec_point(d)?,
            });
        }
        let mut vias = Vec::with_capacity(d.len()?);
        for _ in 0..vias.capacity() {
            vias.push(DefVia {
                at: dec_point(d)?,
                from_layer: dec_layer(d)?,
                to_layer: dec_layer(d)?,
            });
        }
        nets.push(DefNet {
            name,
            connections,
            wires,
            vias,
        });
    }
    let mut special_nets = Vec::with_capacity(d.len()?);
    for _ in 0..special_nets.capacity() {
        special_nets.push(dec_special_net(d)?);
    }
    Some(Def {
        design,
        dbu_per_micron,
        die,
        components,
        nets,
        special_nets,
    })
}

// --- P&R result ---

fn enc_pnr_result(e: &mut Enc, pnr: &PnrResult) {
    let fp = &pnr.floorplan;
    enc_rect(e, fp.die);
    enc_rect(e, fp.core);
    e.u(fp.rows.len() as u64);
    for row in &fp.rows {
        e.i(row.y);
        e.i(row.x);
        e.i(row.sites);
        enc_orient(e, row.orient);
    }
    e.f(fp.target_utilization);
    e.i128v(fp.cell_area_nm2);

    let pp = &pnr.powerplan;
    e.u(pp.special_nets.len() as u64);
    for sn in &pp.special_nets {
        enc_special_net(e, sn);
    }
    e.u(pp.taps.len() as u64);
    for tap in &pp.taps {
        e.u(tap.row as u64);
        e.i(tap.site);
        e.i(tap.width_sites);
    }
    e.u(pp.vss_stripe_x.len() as u64);
    for &x in &pp.vss_stripe_x {
        e.i(x);
    }

    let pl = &pnr.placement;
    e.u(pl.origins.len() as u64);
    for &p in &pl.origins {
        enc_point(e, p);
    }
    e.u(pl.orients.len() as u64);
    for &o in &pl.orients {
        enc_orient(e, o);
    }
    e.u(u64::from(pl.violations));
    e.i(pl.hpwl_nm);
    e.u(pl.port_positions.len() as u64);
    for &p in &pl.port_positions {
        enc_point(e, p);
    }

    let ct = &pnr.clock;
    e.u(ct.buffers.len() as u64);
    for &b in &ct.buffers {
        e.u(u64::from(b.0));
    }
    e.u(u64::from(ct.levels));
    e.u(ct.sink_count as u64);

    let rt = &pnr.routing;
    e.u(rt.nets.len() as u64);
    for rn in &rt.nets {
        e.u(u64::from(rn.net.0));
        e.b(rn.side == Side::Back);
        e.u(rn.wires.len() as u64);
        for w in &rn.wires {
            enc_layer(e, w.layer);
            enc_point(e, w.from);
            enc_point(e, w.to);
        }
        e.u(rn.vias.len() as u64);
        for v in &rn.vias {
            enc_point(e, v.at);
            enc_layer(e, v.from_layer);
            enc_layer(e, v.to_layer);
        }
    }
    e.f(rt.overflow_tracks);
    e.u(u64::from(rt.drv_count));
    e.i(rt.wirelength_nm);
    e.u(rt.via_count as u64);
    e.f(rt.peak_congestion);
    e.i(rt.back_wirelength_nm);
    e.u(rt.hot_gcells.len() as u64);
    for &(x, y, side, hd, vd) in &rt.hot_gcells {
        e.u(u64::from(x));
        e.u(u64::from(y));
        e.b(side == Side::Back);
        e.f(hd);
        e.f(vd);
    }

    enc_def(e, &pnr.front_def);
    enc_def(e, &pnr.back_def);
}

fn dec_side(d: &mut Dec<'_>) -> Option<Side> {
    Some(if d.b()? { Side::Back } else { Side::Front })
}

fn dec_pnr_result(d: &mut Dec<'_>) -> Option<PnrResult> {
    let die = dec_rect(d)?;
    let core = dec_rect(d)?;
    let mut rows = Vec::with_capacity(d.len()?);
    for _ in 0..rows.capacity() {
        rows.push(Row {
            y: d.i()?,
            x: d.i()?,
            sites: d.i()?,
            orient: dec_orient(d)?,
        });
    }
    let floorplan = Floorplan {
        die,
        core,
        rows,
        target_utilization: d.f()?,
        cell_area_nm2: d.i128v()?,
    };

    let mut special_nets = Vec::with_capacity(d.len()?);
    for _ in 0..special_nets.capacity() {
        special_nets.push(dec_special_net(d)?);
    }
    let mut taps = Vec::with_capacity(d.len()?);
    for _ in 0..taps.capacity() {
        taps.push(TapCell {
            row: d.usz()?,
            site: d.i()?,
            width_sites: d.i()?,
        });
    }
    let mut vss_stripe_x = Vec::with_capacity(d.len()?);
    for _ in 0..vss_stripe_x.capacity() {
        vss_stripe_x.push(d.i()?);
    }
    let powerplan = PowerPlan {
        special_nets,
        taps,
        vss_stripe_x,
    };

    let mut origins = Vec::with_capacity(d.len()?);
    for _ in 0..origins.capacity() {
        origins.push(dec_point(d)?);
    }
    let mut orients = Vec::with_capacity(d.len()?);
    for _ in 0..orients.capacity() {
        orients.push(dec_orient(d)?);
    }
    let violations = d.u32v()?;
    let hpwl_nm = d.i()?;
    let mut port_positions = Vec::with_capacity(d.len()?);
    for _ in 0..port_positions.capacity() {
        port_positions.push(dec_point(d)?);
    }
    let placement = Placement {
        origins,
        orients,
        violations,
        hpwl_nm,
        port_positions,
    };

    let mut buffers = Vec::with_capacity(d.len()?);
    for _ in 0..buffers.capacity() {
        buffers.push(InstId(d.u32v()?));
    }
    let clock = ClockTree {
        buffers,
        levels: d.u32v()?,
        sink_count: d.usz()?,
    };

    let mut nets = Vec::with_capacity(d.len()?);
    for _ in 0..nets.capacity() {
        let net = NetId(d.u32v()?);
        let side = dec_side(d)?;
        let mut wires = Vec::with_capacity(d.len()?);
        for _ in 0..wires.capacity() {
            wires.push(DefWire {
                layer: dec_layer(d)?,
                from: dec_point(d)?,
                to: dec_point(d)?,
            });
        }
        let mut vias = Vec::with_capacity(d.len()?);
        for _ in 0..vias.capacity() {
            vias.push(DefVia {
                at: dec_point(d)?,
                from_layer: dec_layer(d)?,
                to_layer: dec_layer(d)?,
            });
        }
        nets.push(RoutedNet {
            net,
            side,
            wires,
            vias,
        });
    }
    let overflow_tracks = d.f()?;
    let drv_count = d.u32v()?;
    let wirelength_nm = d.i()?;
    let via_count = d.usz()?;
    let peak_congestion = d.f()?;
    let back_wirelength_nm = d.i()?;
    let mut hot_gcells = Vec::with_capacity(d.len()?);
    for _ in 0..hot_gcells.capacity() {
        hot_gcells.push((
            u16::try_from(d.u()?).ok()?,
            u16::try_from(d.u()?).ok()?,
            dec_side(d)?,
            d.f()?,
            d.f()?,
        ));
    }
    let routing = RoutingResult {
        nets,
        overflow_tracks,
        drv_count,
        wirelength_nm,
        via_count,
        peak_congestion,
        back_wirelength_nm,
        hot_gcells,
    };

    Some(PnrResult {
        floorplan,
        powerplan,
        placement,
        clock,
        routing,
        front_def: dec_def(d)?,
        back_def: dec_def(d)?,
    })
}

// --- signoff ---

/// Interner for `Violation::rule` (`&'static str` in the live type).
/// Signoff rule ids form a small closed set, so the leak is bounded by
/// that set's total size regardless of how many payloads are decoded.
static RULE_NAMES: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());

fn intern_rule(name: &str) -> &'static str {
    let mut map = RULE_NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&interned) = map.get(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(name.to_owned(), leaked);
    leaked
}

fn enc_signoff(e: &mut Enc, report: &SignoffReport) {
    e.u(report.violations.len() as u64);
    for v in &report.violations {
        e.s(v.rule);
        e.b(v.severity == Severity::Error);
        e.s(&v.subject);
        match v.location {
            Some(p) => {
                e.b(true);
                enc_point(e, p);
            }
            None => e.b(false),
        }
        e.s(&v.message);
    }
}

fn dec_signoff(d: &mut Dec<'_>) -> Option<SignoffReport> {
    let mut violations = Vec::with_capacity(d.len()?);
    for _ in 0..violations.capacity() {
        let rule = intern_rule(d.s()?);
        let severity = if d.b()? {
            Severity::Error
        } else {
            Severity::Warning
        };
        let subject = d.s()?.to_owned();
        let location = if d.b()? { Some(dec_point(d)?) } else { None };
        violations.push(Violation {
            rule,
            severity,
            subject,
            location,
            message: d.s()?.to_owned(),
        });
    }
    Some(SignoffReport { violations })
}

// --- parasitics / timing / power ---

fn enc_parasitics(e: &mut Enc, parasitics: &[Option<NetParasitics>]) {
    e.u(parasitics.len() as u64);
    for slot in parasitics {
        match slot {
            Some(np) => {
                e.b(true);
                e.s(&np.name);
                e.f(np.total_cap_ff);
                e.u(np.sinks.len() as u64);
                for s in &np.sinks {
                    e.f(s.path_res_kohm);
                    e.f(s.wire_elmore_ps);
                    e.b(s.connected);
                }
            }
            None => e.b(false),
        }
    }
}

fn dec_parasitics(d: &mut Dec<'_>) -> Option<Vec<Option<NetParasitics>>> {
    let mut out = Vec::with_capacity(d.len()?);
    for _ in 0..out.capacity() {
        if !d.b()? {
            out.push(None);
            continue;
        }
        let name = d.s()?.to_owned();
        let total_cap_ff = d.f()?;
        let mut sinks = Vec::with_capacity(d.len()?);
        for _ in 0..sinks.capacity() {
            sinks.push(SinkParasitics {
                path_res_kohm: d.f()?,
                wire_elmore_ps: d.f()?,
                connected: d.b()?,
            });
        }
        out.push(Some(NetParasitics {
            name,
            total_cap_ff,
            sinks,
        }));
    }
    Some(out)
}

fn enc_timing(e: &mut Enc, timing: &TimingReport) {
    e.f(timing.critical_path_ps);
    e.f(timing.max_frequency_ghz);
    e.f(timing.wns_ps);
    e.u(timing.endpoints as u64);
    e.s(&timing.critical_net);
    e.u(timing.path.len() as u64);
    for step in &timing.path {
        e.s(&step.net);
        e.f(step.arrival_ps);
        e.f(step.cell_delay_ps);
        e.f(step.wire_delay_ps);
        e.s(&step.cell);
        e.u(step.fanout as u64);
    }
}

fn dec_timing(d: &mut Dec<'_>) -> Option<TimingReport> {
    let critical_path_ps = d.f()?;
    let max_frequency_ghz = d.f()?;
    let wns_ps = d.f()?;
    let endpoints = d.usz()?;
    let critical_net = d.s()?.to_owned();
    let mut path = Vec::with_capacity(d.len()?);
    for _ in 0..path.capacity() {
        path.push(PathStep {
            net: d.s()?.to_owned(),
            arrival_ps: d.f()?,
            cell_delay_ps: d.f()?,
            wire_delay_ps: d.f()?,
            cell: d.s()?.to_owned(),
            fanout: d.usz()?,
        });
    }
    Some(TimingReport {
        critical_path_ps,
        max_frequency_ghz,
        wns_ps,
        endpoints,
        critical_net,
        path,
    })
}

fn enc_power(e: &mut Enc, power: &PowerReport) {
    e.f(power.switching_mw);
    e.f(power.internal_mw);
    e.f(power.leakage_mw);
    e.f(power.clock_mw);
}

fn dec_power(d: &mut Dec<'_>) -> Option<PowerReport> {
    Some(PowerReport {
        switching_mw: d.f()?,
        internal_mw: d.f()?,
        leakage_mw: d.f()?,
        clock_mw: d.f()?,
    })
}

// --- captured trace (spans + metrics) ---

fn enc_point_data(e: &mut Enc, data: &PointData) {
    e.u(data.events.len() as u64);
    for ev in &data.events {
        e.u(u64::from(ev.id));
        match ev.parent {
            Some(p) => {
                e.b(true);
                e.u(u64::from(p));
            }
            None => e.b(false),
        }
        e.u(u64::from(ev.depth));
        e.s(&ev.name);
        // start_us/dur_us are wall clock: stripped before storage, zeroed
        // on decode.
        e.u(ev.attrs.len() as u64);
        for (key, value) in &ev.attrs {
            e.s(key);
            match value {
                AttrValue::Str(s) => {
                    e.u(0);
                    e.s(s);
                }
                AttrValue::Int(i) => {
                    e.u(1);
                    e.i(*i);
                }
                AttrValue::Float(x) => {
                    e.u(2);
                    e.f(*x);
                }
                AttrValue::Bool(b) => {
                    e.u(3);
                    e.b(*b);
                }
            }
        }
    }
    let m = &data.metrics;
    e.u(m.counters.len() as u64);
    for (name, value) in &m.counters {
        e.s(name);
        e.i(*value);
    }
    e.u(m.gauges.len() as u64);
    for (name, value) in &m.gauges {
        e.s(name);
        e.f(*value);
    }
    e.u(m.histograms.len() as u64);
    for (name, h) in &m.histograms {
        e.s(name);
        e.u(h.count);
        e.f(h.sum);
        e.f(h.min);
        e.f(h.max);
        e.u(h.buckets.len() as u64);
        for &b in &h.buckets {
            e.u(b);
        }
    }
}

fn dec_point_data(d: &mut Dec<'_>) -> Option<PointData> {
    let mut events = Vec::with_capacity(d.len()?);
    for _ in 0..events.capacity() {
        let id = d.u32v()?;
        let parent = if d.b()? { Some(d.u32v()?) } else { None };
        let depth = u16::try_from(d.u()?).ok()?;
        let name = d.s()?.to_owned();
        let mut attrs = Vec::with_capacity(d.len()?);
        for _ in 0..attrs.capacity() {
            let key = d.s()?.to_owned();
            let value = match d.u()? {
                0 => AttrValue::Str(d.s()?.to_owned()),
                1 => AttrValue::Int(d.i()?),
                2 => AttrValue::Float(d.f()?),
                3 => AttrValue::Bool(d.b()?),
                _ => return None,
            };
            attrs.push((key, value));
        }
        events.push(SpanEvent {
            id,
            parent,
            depth,
            name,
            start_us: 0.0,
            dur_us: 0.0,
            attrs,
        });
    }
    let mut metrics = MetricsSnapshot::default();
    for _ in 0..d.len()? {
        let name = d.s()?.to_owned();
        metrics.counters.insert(name, d.i()?);
    }
    for _ in 0..d.len()? {
        let name = d.s()?.to_owned();
        metrics.gauges.insert(name, d.f()?);
    }
    for _ in 0..d.len()? {
        let name = d.s()?.to_owned();
        let mut h = Histogram {
            count: d.u()?,
            sum: d.f()?,
            min: d.f()?,
            max: d.f()?,
            ..Histogram::default()
        };
        if d.usz()? != h.buckets.len() {
            return None;
        }
        for slot in &mut h.buckets {
            *slot = d.u()?;
        }
        metrics.histograms.insert(name, h);
    }
    Some(PointData { events, metrics })
}

// ---------------------------------------------------------------------------
// Per-stage payloads
// ---------------------------------------------------------------------------

/// Encodes the synth payload: the synthesized netlist plus the stage's
/// captured (timing-stripped) trace.
#[must_use]
pub fn encode_synth(netlist: &Netlist, data: &PointData) -> String {
    let mut e = Enc::new(Stage::Synth.name());
    enc_netlist(&mut e, netlist);
    enc_point_data(&mut e, data);
    e.finish()
}

/// Decodes a synth payload; `None` on any mismatch (treated as a miss).
#[must_use]
pub fn decode_synth(text: &str) -> Option<(Netlist, PointData)> {
    let mut d = Dec::new(text, Stage::Synth.name())?;
    let netlist = dec_netlist(&mut d)?;
    let data = dec_point_data(&mut d)?;
    d.done().then_some((netlist, data))
}

/// Encodes the pnr payload: the post-CTS netlist (P&R inserts clock
/// buffers), the full [`PnrResult`], and the captured trace.
#[must_use]
pub fn encode_pnr(value: &(Netlist, PnrResult), data: &PointData) -> String {
    let mut e = Enc::new(Stage::Pnr.name());
    enc_netlist(&mut e, &value.0);
    enc_pnr_result(&mut e, &value.1);
    enc_point_data(&mut e, data);
    e.finish()
}

/// Decodes a pnr payload.
#[must_use]
pub fn decode_pnr(text: &str) -> Option<((Netlist, PnrResult), PointData)> {
    let mut d = Dec::new(text, Stage::Pnr.name())?;
    let netlist = dec_netlist(&mut d)?;
    let pnr = dec_pnr_result(&mut d)?;
    let data = dec_point_data(&mut d)?;
    d.done().then_some(((netlist, pnr), data))
}

/// Encodes the merge payload (the merged dual-sided DEF).
#[must_use]
pub fn encode_merge(def: &Def, data: &PointData) -> String {
    let mut e = Enc::new(Stage::Merge.name());
    enc_def(&mut e, def);
    enc_point_data(&mut e, data);
    e.finish()
}

/// Decodes a merge payload.
#[must_use]
pub fn decode_merge(text: &str) -> Option<(Def, PointData)> {
    let mut d = Dec::new(text, Stage::Merge.name())?;
    let def = dec_def(&mut d)?;
    let data = dec_point_data(&mut d)?;
    d.done().then_some((def, data))
}

/// Encodes the signoff payload (the full structured report).
#[must_use]
pub fn encode_signoff_payload(report: &SignoffReport, data: &PointData) -> String {
    let mut e = Enc::new(Stage::Signoff.name());
    enc_signoff(&mut e, report);
    enc_point_data(&mut e, data);
    e.finish()
}

/// Decodes a signoff payload.
#[must_use]
pub fn decode_signoff_payload(text: &str) -> Option<(SignoffReport, PointData)> {
    let mut d = Dec::new(text, Stage::Signoff.name())?;
    let report = dec_signoff(&mut d)?;
    let data = dec_point_data(&mut d)?;
    d.done().then_some((report, data))
}

/// Encodes the rcx payload (per-net parasitics, `None` slots preserved).
#[must_use]
pub fn encode_rcx(parasitics: &[Option<NetParasitics>], data: &PointData) -> String {
    let mut e = Enc::new(Stage::Rcx.name());
    enc_parasitics(&mut e, parasitics);
    enc_point_data(&mut e, data);
    e.finish()
}

/// Decodes an rcx payload.
#[must_use]
pub fn decode_rcx(text: &str) -> Option<(Vec<Option<NetParasitics>>, PointData)> {
    let mut d = Dec::new(text, Stage::Rcx.name())?;
    let parasitics = dec_parasitics(&mut d)?;
    let data = dec_point_data(&mut d)?;
    d.done().then_some((parasitics, data))
}

/// Encodes the sta payload (timing + power reports).
#[must_use]
pub fn encode_sta(value: &(TimingReport, PowerReport), data: &PointData) -> String {
    let mut e = Enc::new(Stage::Sta.name());
    enc_timing(&mut e, &value.0);
    enc_power(&mut e, &value.1);
    enc_point_data(&mut e, data);
    e.finish()
}

/// Decodes an sta payload.
#[must_use]
pub fn decode_sta(text: &str) -> Option<((TimingReport, PowerReport), PointData)> {
    let mut d = Dec::new(text, Stage::Sta.name())?;
    let timing = dec_timing(&mut d)?;
    let power = dec_power(&mut d)?;
    let data = dec_point_data(&mut d)?;
    d.done().then_some(((timing, power), data))
}

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------
//
// Keys are canonical strings (then FNV-hashed into the `.key` link name).
// Wall-clock/driver-only knobs — `route_jobs`, `deadline_ms`,
// `max_attempts`, `stage_cache` itself — are deliberately excluded: they
// never change an artifact byte (§7), so entries shared across them stay
// valid. `fault_plan` never reaches a key because faulted runs bypass the
// cache entirely.

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Signature of the library a config builds: `Library::new` is a pure
/// function of the technology, and `redistribute_input_pins` (applied only
/// when `back_pin_ratio > 0`) additionally depends on the ratio and seed.
#[must_use]
pub fn library_sig(config: &FlowConfig) -> String {
    let seed = if config.back_pin_ratio > 0.0 {
        config.seed
    } else {
        0
    };
    format!("{:?}|{}|{seed}", config.tech, bits(config.back_pin_ratio))
}

/// Synth-stage key. Synthesis reads only cell kinds/drives/input caps —
/// all functions of the technology alone (pin-side redistribution moves
/// pin *geometry*, which synthesis never sees) — so the key deliberately
/// omits `back_pin_ratio` and `seed`: every point of a back-pin-ratio or
/// seed axis shares one synth entry.
#[must_use]
pub fn synth_key(config: &FlowConfig, netlist: &Netlist) -> String {
    let mut e = Enc::new("synth-input");
    enc_netlist(&mut e, netlist);
    let input_hash = hash_hex(fnv1a64(e.finish().as_bytes()));
    format!(
        "sc{PAYLOAD_VERSION}|synth|{:?}|{}|{input_hash}",
        config.tech,
        bits(config.target_freq_ghz)
    )
}

/// Pnr-stage key over the synth payload address and every placement/
/// routing-relevant config field.
#[must_use]
pub fn pnr_key(config: &FlowConfig, synth_addr: &str) -> String {
    format!(
        "sc{PAYLOAD_VERSION}|pnr|{synth_addr}|{}|{}|{}|{}|{}|{:?}|{}",
        library_sig(config),
        config.seed,
        bits(config.utilization),
        bits(config.aspect_ratio),
        config.pattern,
        config.bridging_min_nm,
        config.extra_reroute_rounds
    )
}

/// Merge-stage key: the merge is a pure function of the two side DEFs,
/// both inside the pnr payload.
#[must_use]
pub fn merge_key(pnr_addr: &str) -> String {
    format!("sc{PAYLOAD_VERSION}|merge|{pnr_addr}")
}

/// Signoff-stage key over the pnr and merge payloads plus the library and
/// routing pattern the checks run under.
#[must_use]
pub fn signoff_key(config: &FlowConfig, pnr_addr: &str, merge_addr: &str) -> String {
    format!(
        "sc{PAYLOAD_VERSION}|signoff|{pnr_addr}|{merge_addr}|{}|{}",
        library_sig(config),
        config.pattern
    )
}

/// Rcx-stage key over the pnr and merge payloads plus the library
/// (extraction reads layer RC from the technology).
#[must_use]
pub fn rcx_key(config: &FlowConfig, pnr_addr: &str, merge_addr: &str) -> String {
    format!(
        "sc{PAYLOAD_VERSION}|rcx|{pnr_addr}|{merge_addr}|{}",
        library_sig(config)
    )
}

/// Sta-stage key over the pnr and rcx payloads plus the analysis operating
/// point (clock target and switching activity).
#[must_use]
pub fn sta_key(config: &FlowConfig, pnr_addr: &str, rcx_addr: &str) -> String {
    format!(
        "sc{PAYLOAD_VERSION}|sta|{pnr_addr}|{rcx_addr}|{}|{}|{}",
        library_sig(config),
        bits(config.target_freq_ghz),
        bits(config.activity)
    )
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Serializes manifest appends within this process (cross-process safety
/// comes from `O_APPEND` single-write lines, same posture as the ledger).
static MANIFEST_LOCK: Mutex<()> = Mutex::new(());

/// Handle to a stage-cache root directory. Cheap: holds only the path;
/// every operation is a direct filesystem access, so concurrent handles
/// (any pool width, even multiple processes) see one coherent store.
#[derive(Debug, Clone)]
pub struct StageCache {
    root: PathBuf,
}

impl StageCache {
    /// Opens (without creating) a cache at `root`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> StageCache {
        StageCache { root: root.into() }
    }

    /// The cache root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn blob_path(&self, addr: &str) -> PathBuf {
        self.root.join(format!("{addr}.blob"))
    }

    fn key_path(&self, key: &str) -> PathBuf {
        self.root
            .join(format!("{}.key", hash_hex(fnv1a64(key.as_bytes()))))
    }

    /// Looks `key` up: resolves its link, reads the payload blob and
    /// re-verifies the content address. Any failure — missing link,
    /// malformed address, missing blob, hash mismatch (a poisoned object)
    /// — is a miss.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<(String, String)> {
        let addr = fs::read_to_string(self.key_path(key)).ok()?;
        let addr = addr.trim();
        if addr.len() != 16 || !addr.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let body = fs::read_to_string(self.blob_path(addr)).ok()?;
        if hash_hex(fnv1a64(body.as_bytes())) != addr {
            return None;
        }
        Some((addr.to_owned(), body))
    }

    /// Stores `payload` under `key` and returns its content address.
    /// Best-effort: any I/O failure returns `None` (the stage result is
    /// still valid, just not cached — and downstream stages then key as
    /// uncacheable). An existing blob at the same address is left
    /// untouched: same address means same bytes for an honest writer, and
    /// a poisoned blob stays a deterministic miss until `gc` removes it.
    #[must_use]
    pub fn store(&self, key: &str, stage: &'static str, payload: &str) -> Option<String> {
        let addr = hash_hex(fnv1a64(payload.as_bytes()));
        let blob = self.blob_path(&addr);
        let newly_written = if blob.exists() {
            false
        } else {
            atomic_write_unique(&blob, payload.as_bytes()).ok()?;
            true
        };
        atomic_write_unique(&self.key_path(key), addr.as_bytes()).ok()?;
        if newly_written {
            self.manifest_append(&addr, stage, payload.len());
        }
        Some(addr)
    }

    /// Appends one accounting record to the manifest. Advisory: failures
    /// are swallowed (stats falls back to directory scans) and records are
    /// checksummed so a torn line is skipped on load.
    fn manifest_append(&self, addr: &str, stage: &str, bytes: usize) {
        let _guard = MANIFEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let body = format!("{{\"addr\":\"{addr}\",\"stage\":\"{stage}\",\"bytes\":{bytes}}}");
        let line = format!("v1 {} {body}\n", hash_hex(fnv1a64(body.as_bytes())));
        let _ = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(MANIFEST_FILE))
            .and_then(|mut f| f.write_all(line.as_bytes()));
    }
}

/// Loads the manifest: `addr → (stage, bytes)`, last record wins. Corrupt
/// or torn lines are skipped — the manifest is advisory accounting, not a
/// replay order.
fn load_manifest(root: &Path) -> BTreeMap<String, (String, u64)> {
    let mut out = BTreeMap::new();
    let Ok(text) = fs::read_to_string(root.join(MANIFEST_FILE)) else {
        return out;
    };
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("v1 ") else {
            continue;
        };
        let Some((crc, body)) = rest.split_once(' ') else {
            continue;
        };
        if hash_hex(fnv1a64(body.as_bytes())) != crc {
            continue;
        }
        let Ok(json) = ffet_obs::parse_json(body) else {
            continue;
        };
        let (Some(addr), Some(stage), Some(bytes)) = (
            json.get("addr").and_then(ffet_obs::Json::as_str),
            json.get("stage").and_then(ffet_obs::Json::as_str),
            json.get("bytes").and_then(ffet_obs::Json::as_i64),
        ) else {
            continue;
        };
        out.insert(
            addr.to_owned(),
            (stage.to_owned(), u64::try_from(bytes).unwrap_or(0)),
        );
    }
    out
}

/// Sorted `(file_name, byte_size)` listing of the cache root. A missing
/// root lists as empty.
fn sorted_entries(root: &Path) -> std::io::Result<Vec<(String, u64)>> {
    let mut out = Vec::new();
    let iter = match fs::read_dir(root) {
        Ok(iter) => iter,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in iter {
        let entry = entry?;
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let size = entry.metadata().map_or(0, |m| m.len());
        out.push((name, size));
    }
    out.sort();
    Ok(out)
}

/// What `ffet cache stats` reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStatsReport {
    /// Payload blobs on disk.
    pub blobs: usize,
    /// Total payload bytes on disk (ground truth: file sizes).
    pub blob_bytes: u64,
    /// Key links on disk.
    pub links: usize,
    /// Per-stage `(count, bytes)` from the manifest.
    pub per_stage: BTreeMap<String, (usize, u64)>,
    /// Blobs with no manifest record (e.g. written before accounting, or
    /// the manifest was truncated).
    pub unattributed: usize,
    /// Orphan `*.tmp` siblings from crashed writers.
    pub tmp_orphans: usize,
}

/// Scans the cache and reports size accounting.
///
/// # Errors
///
/// Propagates directory-scan I/O errors (a missing root reports empty).
pub fn stats(root: &Path) -> std::io::Result<CacheStatsReport> {
    let manifest = load_manifest(root);
    let mut report = CacheStatsReport::default();
    for (name, size) in sorted_entries(root)? {
        if let Some(addr) = name.strip_suffix(".blob") {
            report.blobs += 1;
            report.blob_bytes += size;
            match manifest.get(addr) {
                Some((stage, _)) => {
                    let slot = report.per_stage.entry(stage.clone()).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += size;
                }
                None => report.unattributed += 1,
            }
        } else if name.ends_with(".key") {
            report.links += 1;
        } else if name.ends_with(".tmp") {
            report.tmp_orphans += 1;
        }
    }
    Ok(report)
}

/// What `ffet cache verify` reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blobs whose body re-hashed to their address.
    pub blobs_ok: usize,
    /// Addresses of poisoned blobs (hash mismatch).
    pub corrupt: Vec<String>,
    /// Links resolving to a verified blob.
    pub links_ok: usize,
    /// Links whose target is missing, malformed, or corrupt.
    pub dangling: usize,
}

/// Re-hashes every blob and resolves every link.
///
/// # Errors
///
/// Propagates directory-scan I/O errors.
pub fn verify(root: &Path) -> std::io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let mut valid = std::collections::BTreeSet::new();
    let entries = sorted_entries(root)?;
    for (name, _) in &entries {
        if let Some(addr) = name.strip_suffix(".blob") {
            let ok = fs::read_to_string(root.join(name))
                .is_ok_and(|body| hash_hex(fnv1a64(body.as_bytes())) == addr);
            if ok {
                report.blobs_ok += 1;
                valid.insert(addr.to_owned());
            } else {
                report.corrupt.push(addr.to_owned());
            }
        }
    }
    for (name, _) in &entries {
        if name.ends_with(".key") {
            let target = fs::read_to_string(root.join(name)).unwrap_or_default();
            if valid.contains(target.trim()) {
                report.links_ok += 1;
            } else {
                report.dangling += 1;
            }
        }
    }
    Ok(report)
}

/// What `ffet cache gc` reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Orphan/corrupt blobs removed.
    pub removed_blobs: usize,
    /// Bytes reclaimed from removed blobs.
    pub freed_bytes: u64,
    /// Dangling links removed.
    pub removed_links: usize,
    /// Crashed-writer `*.tmp` files removed.
    pub removed_tmp: usize,
    /// Blobs kept (referenced and verified).
    pub kept_blobs: usize,
}

/// Removes everything unreachable or invalid: poisoned blobs, blobs no
/// link references, links whose target is missing or corrupt, and orphan
/// `*.tmp` files. The manifest is rewritten to cover only surviving blobs.
///
/// # Errors
///
/// Propagates directory-scan I/O errors (individual unlink failures are
/// counted as kept, never fatal).
pub fn gc(root: &Path) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    let entries = sorted_entries(root)?;
    // Pass 1: verify blobs.
    let mut valid = std::collections::BTreeSet::new();
    for (name, _) in &entries {
        if let Some(addr) = name.strip_suffix(".blob") {
            let ok = fs::read_to_string(root.join(name))
                .is_ok_and(|body| hash_hex(fnv1a64(body.as_bytes())) == addr);
            if ok {
                valid.insert(addr.to_owned());
            }
        }
    }
    // Pass 2: resolve links; drop dangling ones, collect references.
    let mut referenced = std::collections::BTreeSet::new();
    for (name, _) in &entries {
        if name.ends_with(".key") {
            let target = fs::read_to_string(root.join(name)).unwrap_or_default();
            let target = target.trim();
            if valid.contains(target) {
                referenced.insert(target.to_owned());
            } else if fs::remove_file(root.join(name)).is_ok() {
                report.removed_links += 1;
            }
        }
    }
    // Pass 3: drop unreferenced/corrupt blobs and crashed-writer tmps.
    for (name, size) in &entries {
        if let Some(addr) = name.strip_suffix(".blob") {
            if referenced.contains(addr) {
                report.kept_blobs += 1;
            } else if fs::remove_file(root.join(name)).is_ok() {
                report.removed_blobs += 1;
                report.freed_bytes += size;
            } else {
                report.kept_blobs += 1;
            }
        } else if name.ends_with(".tmp") && fs::remove_file(root.join(name)).is_ok() {
            report.removed_tmp += 1;
        }
    }
    // Rewrite the manifest to only surviving blobs (fresh accounting).
    let manifest = load_manifest(root);
    let mut text = String::new();
    for addr in &referenced {
        if let Some((stage, bytes)) = manifest.get(addr) {
            let body = format!("{{\"addr\":\"{addr}\",\"stage\":\"{stage}\",\"bytes\":{bytes}}}");
            let _ = writeln!(text, "v1 {} {body}", hash_hex(fnv1a64(body.as_bytes())));
        }
    }
    if root.exists() {
        let _ = atomic_write_unique(&root.join(MANIFEST_FILE), text.as_bytes());
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// The stage runner
// ---------------------------------------------------------------------------

/// Runs one stage through the cache.
///
/// - `cache`/`key` absent → `compute` runs inline under the ambient
///   collector, exactly as an uncached flow would (zero overhead, byte-
///   identical event stream).
/// - Hit → the payload is decoded, its captured trace is
///   [`ffet_obs::replay`]ed (root spans get `cached=true`), and the
///   artifact is returned with a stage time of `0.0` ms.
/// - Miss → `compute` runs under [`ffet_obs::capture`]; on success the
///   capture is replayed (`cached=false`), timing-stripped, encoded and
///   stored. Errors are replayed but never stored, so failed attempts
///   (timeouts, dirty signoff) cannot populate the cache.
///
/// Returns `(artifact, stage_ms, payload_addr)`; the address is `None`
/// when uncached or when the store failed (downstream stages then skip
/// caching too, keeping keys sound).
///
/// # Errors
///
/// Whatever `compute` returns.
pub fn run_stage<T, E>(
    cache: Option<&StageCache>,
    key: Option<String>,
    stage: &'static str,
    encode: impl FnOnce(&T, &PointData) -> String,
    decode: impl FnOnce(&str) -> Option<(T, PointData)>,
    compute: impl FnOnce() -> Result<(T, f64), E>,
) -> Result<(T, f64, Option<String>), E> {
    let (Some(cache), Some(key)) = (cache, key) else {
        let (value, ms) = compute()?;
        return Ok((value, ms, None));
    };
    if let Some((addr, body)) = cache.lookup(&key) {
        if let Some((value, data)) = decode(&body) {
            ffet_obs::cache_event("cache.hit", stage);
            ffet_obs::replay(
                &data,
                ffet_obs::ambient_elapsed_us(),
                &[("cached".to_owned(), AttrValue::Bool(true))],
            );
            return Ok((value, 0.0, Some(addr)));
        }
    }
    ffet_obs::cache_event("cache.miss", stage);
    let offset_us = ffet_obs::ambient_elapsed_us();
    let (result, mut data) = ffet_obs::capture(compute);
    match result {
        Ok((value, ms)) => {
            ffet_obs::replay(
                &data,
                offset_us,
                &[("cached".to_owned(), AttrValue::Bool(false))],
            );
            ffet_obs::strip_point_timing(&mut data);
            let payload = encode(&value, &data);
            let addr = cache.store(&key, stage, &payload);
            if addr.is_some() {
                ffet_obs::cache_event("cache.store", stage);
            }
            Ok((value, ms, addr))
        }
        Err(e) => {
            ffet_obs::replay(
                &data,
                offset_us,
                &[("cached".to_owned(), AttrValue::Bool(false))],
            );
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::TechKind;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ffet-stagecache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn small_flow_pieces() -> (FlowConfig, ffet_cells::Library, Netlist) {
        let config = FlowConfig {
            pattern: ffet_tech::RoutingPattern::new(12, 12).expect("static"),
            back_pin_ratio: 0.5,
            utilization: 0.6,
            ..FlowConfig::baseline(TechKind::Ffet3p5t)
        };
        let library = config.build_library().expect("valid config");
        let netlist = crate::designs::counter_pipeline(&library, 12);
        (config, library, netlist)
    }

    #[test]
    fn codec_scalars_round_trip() {
        let mut e = Enc::new("t");
        e.u(0);
        e.u(u64::MAX);
        e.i(-42);
        e.i128v(i128::MIN);
        e.f(-0.0);
        e.f(f64::NAN);
        e.b(true);
        e.s("");
        e.s("hello world:with 3 tokens");
        let text = e.finish();
        let mut d = Dec::new(&text, "t").expect("tag");
        assert_eq!(d.u(), Some(0));
        assert_eq!(d.u(), Some(u64::MAX));
        assert_eq!(d.i(), Some(-42));
        assert_eq!(d.i128v(), Some(i128::MIN));
        assert_eq!(d.f().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(d.f().map(f64::to_bits), Some(f64::NAN.to_bits()));
        assert_eq!(d.b(), Some(true));
        assert_eq!(d.s(), Some(""));
        assert_eq!(d.s(), Some("hello world:with 3 tokens"));
        assert!(d.done());
        // Wrong stage tag rejects the whole payload.
        assert!(Dec::new(&text, "other").is_none());
    }

    #[test]
    fn netlist_payload_round_trips_byte_exactly() {
        let (_config, library, mut netlist) = small_flow_pieces();
        // Exercise synthesized structure (buffers, resized drives).
        crate::synth::synthesize(
            &mut netlist,
            &library,
            &crate::synth::SynthConfig::default(),
        )
        .expect("synth");
        let payload = encode_synth(&netlist, &PointData::default());
        let (decoded, _) = decode_synth(&payload).expect("decode");
        assert_eq!(decoded.name(), netlist.name());
        assert_eq!(decoded.instances().len(), netlist.instances().len());
        decoded.check_consistency(&library).expect("consistent");
        // Canonical: re-encoding the decoded netlist reproduces the bytes.
        assert_eq!(encode_synth(&decoded, &PointData::default()), payload);
    }

    #[test]
    fn full_stage_payloads_round_trip_through_a_real_flow() {
        let (config, library, netlist) = small_flow_pieces();
        let outcome = crate::run_flow(&netlist, &library, &config).expect("flow");

        let pnr_payload = encode_pnr(
            &(netlist.clone(), outcome.pnr.clone()),
            &PointData::default(),
        );
        let ((_, pnr), _) = decode_pnr(&pnr_payload).expect("pnr decode");
        assert_eq!(pnr.routing.wirelength_nm, outcome.pnr.routing.wirelength_nm);
        assert_eq!(pnr.front_def, outcome.pnr.front_def);
        assert_eq!(pnr.placement.origins, outcome.pnr.placement.origins);
        assert_eq!(
            encode_pnr(&(netlist.clone(), pnr), &PointData::default()),
            pnr_payload
        );

        let merge_payload = encode_merge(&outcome.merged_def, &PointData::default());
        let (merged, _) = decode_merge(&merge_payload).expect("merge decode");
        assert_eq!(merged, outcome.merged_def);

        let signoff_payload = encode_signoff_payload(&outcome.signoff, &PointData::default());
        let (signoff, _) = decode_signoff_payload(&signoff_payload).expect("signoff decode");
        assert_eq!(signoff, outcome.signoff);

        let rcx_payload = encode_rcx(&outcome.parasitics, &PointData::default());
        let (parasitics, _) = decode_rcx(&rcx_payload).expect("rcx decode");
        assert_eq!(parasitics, outcome.parasitics);

        let power = PowerReport {
            switching_mw: 1.25,
            internal_mw: 0.5,
            leakage_mw: 0.0625,
            clock_mw: 0.75,
        };
        let sta_payload = encode_sta(&(outcome.timing.clone(), power), &PointData::default());
        let ((timing, power2), _) = decode_sta(&sta_payload).expect("sta decode");
        assert_eq!(timing, outcome.timing);
        assert_eq!(power2.clock_mw, 0.75);
        assert_eq!(
            encode_sta(&(timing, power2), &PointData::default()),
            sta_payload
        );
    }

    #[test]
    fn point_data_round_trips() {
        let (_, data) = ffet_obs::capture(|| {
            let root = ffet_obs::span("flow.synth").attr("k", "v");
            ffet_obs::counter_add("c", 3);
            ffet_obs::gauge_set("g", 1.5);
            ffet_obs::observe("h", 0.25);
            let inner = ffet_obs::span("rcx.batch").attr("batch", 0_i64);
            inner.close();
            root.close();
        });
        let mut stripped = data.clone();
        ffet_obs::strip_point_timing(&mut stripped);
        let mut e = Enc::new("t");
        enc_point_data(&mut e, &stripped);
        let text = e.finish();
        let mut d = Dec::new(&text, "t").expect("tag");
        let decoded = dec_point_data(&mut d).expect("decode");
        assert!(d.done());
        assert_eq!(decoded, stripped);
    }

    #[test]
    fn store_lookup_and_poisoned_blob_semantics() {
        let dir = scratch("store");
        let cache = StageCache::new(&dir);
        let key = "sc1|test|abc";
        assert!(cache.lookup(key).is_none(), "cold cache misses");
        let addr = cache.store(key, "synth", "payload body").expect("store");
        let (addr2, body) = cache.lookup(key).expect("hit");
        assert_eq!(addr, addr2);
        assert_eq!(body, "payload body");
        // Poison the blob: lookup must become a deterministic miss.
        fs::write(dir.join(format!("{addr}.blob")), b"tampered").expect("tamper");
        assert!(cache.lookup(key).is_none(), "poisoned blob is a miss");
        // verify reports it; gc removes it together with the dangling link.
        let v = verify(&dir).expect("verify");
        assert_eq!(v.corrupt, vec![addr.clone()]);
        assert_eq!(v.dangling, 1);
        let g = gc(&dir).expect("gc");
        assert_eq!(g.removed_blobs, 1);
        assert_eq!(g.removed_links, 1);
        assert!(!dir.join(format!("{addr}.blob")).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_and_gc_account_sizes() {
        let dir = scratch("stats");
        let cache = StageCache::new(&dir);
        let a = cache.store("k1", "synth", "aaaa").expect("store");
        let _b = cache.store("k2", "pnr", "bbbbbbbb").expect("store");
        // Same payload under another key: deduplicated blob, second link.
        let a2 = cache.store("k3", "synth", "aaaa").expect("store");
        assert_eq!(a, a2);
        let s = stats(&dir).expect("stats");
        assert_eq!(s.blobs, 2);
        assert_eq!(s.links, 3);
        assert_eq!(s.blob_bytes, 12);
        assert_eq!(s.per_stage["synth"], (1, 4));
        assert_eq!(s.per_stage["pnr"], (1, 8));
        assert_eq!(s.unattributed, 0);
        // Remove the links to k2: its blob becomes garbage.
        fs::remove_file(dir.join(format!("{}.key", hash_hex(fnv1a64(b"k2"))))).expect("rm");
        let g = gc(&dir).expect("gc");
        assert_eq!(g.removed_blobs, 1);
        assert_eq!(g.freed_bytes, 8);
        assert_eq!(g.kept_blobs, 1);
        let s = stats(&dir).expect("stats");
        assert_eq!(s.blobs, 1);
        assert!(!s.per_stage.contains_key("pnr"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_stage_inline_without_cache() {
        let out = run_stage::<i32, ()>(
            None,
            None,
            "synth",
            |_, _| String::new(),
            |_| None,
            || Ok((7, 1.0)),
        );
        assert_eq!(out, Ok((7, 1.0, None)));
    }

    #[test]
    fn keys_separate_stages_and_configs() {
        let (config, _library, netlist) = small_flow_pieces();
        let k1 = synth_key(&config, &netlist);
        let mut faster = config.clone();
        faster.target_freq_ghz = 3.0;
        assert_ne!(k1, synth_key(&faster, &netlist));
        // Synth shares across the back-pin-ratio and seed axes…
        let mut bp = config.clone();
        bp.back_pin_ratio = 0.3;
        bp.seed = 7;
        assert_eq!(k1, synth_key(&bp, &netlist));
        // …but pnr does not.
        assert_ne!(pnr_key(&config, "aa"), pnr_key(&bp, "aa"));
        // Wall-clock knobs never reach a key.
        let mut wide = config.clone();
        wide.route_jobs = 16;
        wide.deadline_ms = Some(5);
        wide.max_attempts = 9;
        assert_eq!(pnr_key(&config, "aa"), pnr_key(&wide, "aa"));
        // Upstream address changes cascade.
        assert_ne!(merge_key("aa"), merge_key("bb"));
        assert_ne!(sta_key(&config, "aa", "cc"), sta_key(&config, "aa", "dd"));
    }
}
