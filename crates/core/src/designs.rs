//! Benchmark designs used by the evaluation.

use ffet_cells::Library;
use ffet_netlist::{Netlist, NetlistBuilder};
use ffet_rv32::build_core;

/// The paper's benchmark: the 32-bit RISC-V core, generated over `library`.
#[must_use]
pub fn rv32_core(library: &Library) -> Netlist {
    build_core(library, "rv32_core").netlist
}

/// A small synchronous design (counter + comparator pipeline) for fast
/// tests and examples: a few hundred cells with a real clock, registers
/// and combinational depth.
#[must_use]
pub fn counter_pipeline(library: &Library, bits: usize) -> Netlist {
    let mut b = NetlistBuilder::new(library, "counter_pipeline");
    let clk = b.input("clk");
    b.netlist_mut().mark_clock(clk);
    let en = b.input("en");

    // `bits`-bit counter: count <= count + en.
    let count: Vec<_> = (0..bits)
        .map(|i| b.netlist_mut().add_net(format!("count[{i}]")))
        .collect();
    let zero = b.zero();
    let mut addend = vec![zero; bits];
    addend[0] = en;
    let (next, _) = b.adder(&count, &addend, zero);
    for i in 0..bits {
        use ffet_cells::{CellFunction, CellKind, DriveStrength};
        let dff = library
            .id(CellKind::new(CellFunction::Dff, DriveStrength::D1))
            .expect("DFFD1");
        let lib = b.library();
        b.netlist_mut().add_instance(
            lib,
            format!("cnt_dff_{i}"),
            dff,
            &[Some(next[i]), Some(clk), Some(count[i])],
        );
    }

    // Comparator pipeline: detect a magic value, register the result.
    let pattern = 0b1010_1100_0101u64;
    let matches: Vec<_> = count
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            if pattern >> (i % 12) & 1 == 1 {
                c
            } else {
                b.not(c)
            }
        })
        .collect();
    let hit = b.and_tree(&matches);
    let hit_q = b.dff(hit, clk);
    b.output("hit", hit_q);
    b.output_bus("count", &count);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_netlist::{stats, Simulator};
    use ffet_tech::Technology;

    #[test]
    fn counter_counts() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = counter_pipeline(&lib, 8);
        nl.check_consistency(&lib).unwrap();
        let en = nl.net_by_name("en").unwrap();
        let count: Vec<_> = (0..8)
            .map(|i| nl.net_by_name(&format!("count[{i}]")).unwrap())
            .collect();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.reset_state(false);
        sim.set(en, true);
        sim.settle();
        for expect in 1..=10u64 {
            sim.clock_edge();
            assert_eq!(sim.get_bus(&count), expect);
        }
    }

    #[test]
    fn rv32_core_is_dff_heavy() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = rv32_core(&lib);
        let s = stats(&nl, &lib);
        assert!(s.instances > 5_000);
        // The register file + PC make the design sequential-heavy — the
        // profile that amplifies the FFET Split Gate area advantage.
        assert!(s.sequential >= 1_000);
    }
}
