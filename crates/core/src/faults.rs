//! Deterministic fault injection at flow stage boundaries.
//!
//! A [`FaultPlan`] (default: empty, so normal runs are untouched) rides in
//! [`crate::FlowConfig`] and corrupts the flow's intermediate artifacts at
//! well-defined points of [`crate::run_flow`]: the netlist and P&R result
//! right after physical implementation, and the merged DEF right after the
//! merge. Every corruption is *seeded* — victim selection draws from a
//! [`Rng64`] keyed on the flow seed and the plan seed — so the same config
//! plus the same plan reproduces the same fault, bit for bit, at any pool
//! width.
//!
//! The taxonomy is the coverage contract of the signoff gate: each
//! error-severity rule in [`ffet_verify::ERROR_RULES`] is triggerable by at
//! least one [`FaultKind`] (proved by the `fault_matrix` test), and
//! [`FaultKind::StagePanic`] exercises the DoE pool's panic containment
//! ([`FaultKind::RoutePanic`] the routing pool's, through the batched
//! parallel path inside P&R).
//! Faults can be windowed with [`Fault::until_attempt`] so the recovery
//! ladder in [`crate::recover`] has transient failures to recover from.

use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_geom::{FxHashMap, FxHashSet};
use ffet_geom::{Orientation, Point, Rng64};
use ffet_lefdef::{Def, DefComponent, DefConnection, DefNet, DefVia, DefWire};
use ffet_netlist::{InstId, NetId, Netlist, PinRef, PortDirection};
use ffet_pnr::{PnrResult, RoutedNet};
use ffet_tech::{LayerId, Side};

/// The stage boundaries of [`crate::run_flow`] where faults are injected
/// (and where [`FaultKind::StagePanic`] panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// After synthesis-lite.
    Synth,
    /// After physical implementation.
    Pnr,
    /// After the dual-sided DEF merge.
    Merge,
    /// After static signoff ran (before its verdict gates the flow).
    Signoff,
}

impl std::fmt::Display for FlowStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FlowStage::Synth => "synth",
            FlowStage::Pnr => "pnr",
            FlowStage::Merge => "merge",
            FlowStage::Signoff => "signoff",
        })
    }
}

/// DRV increment applied by [`FaultKind::DrvInflate`].
pub const DRV_INFLATE: u32 = 50;

/// How many copies of the longest routed wire [`FaultKind::DemandInflate`]
/// adds (enough to push any GCell it crosses far past Table II capacity).
const DEMAND_INFLATE_COPIES: usize = 2_500;

/// One injectable corruption, named after the artifact it breaks and the
/// signoff rule (or runner behavior) it provably triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    // --- netlist corruptions (post-P&R) ---
    /// Detach a net's driver → `lint.undriven`.
    NetUndriven,
    /// Add a second driver (an input port) to a driven net →
    /// `lint.multi-driven`.
    NetMultiDriven,
    /// Disconnect one instance input pin → `lint.floating-input`.
    PinFloat,
    /// Rewire a combinational input to the cell's own output →
    /// `lint.comb-loop`.
    CombLoop,
    /// Add an instance the DEF has never heard of →
    /// `lvs.missing-component`.
    GhostInstance,
    /// Add a bridging-cell sink (backside-only input pin) under a
    /// front-only pattern → `drc.decompose`. No-op when the library has no
    /// bridge cell (CFET).
    BridgeOrphan,
    // --- P&R-result corruptions ---
    /// Nudge a placed cell off its site grid → `place.off-site` (warning;
    /// the stranded pin stubs usually open the net too).
    CellDisplace,
    /// Placement bookkeeping loses sync with the netlist → `place.count`.
    PlacementCountMismatch,
    /// Drop all routed geometry of a multi-pin side-net → `drc.open`.
    RouteOpen,
    /// Routed entry for a (net, side) the decomposition never produced →
    /// `drc.extra-routing`.
    RoutePhantom,
    /// A diagonal wire segment → `drc.non-manhattan`.
    WireNonManhattan,
    /// A wire far outside the die → `drc.off-die`.
    WireOffDie,
    /// A wire on the unroutable M0 → `drc.layer-range`.
    WireIllegalLayer,
    /// A wire perpendicular to its layer's preferred direction →
    /// `drc.wrong-direction`.
    WireWrongDirection,
    /// Displace (or conjure) a via far outside the die → `drc.off-die`.
    ViaDisplace,
    /// Duplicate the longest routed wire until its GCells overflow →
    /// `drc.gcell-capacity` warnings (the flow completes; DRV-proxy path).
    DemandInflate,
    /// Add [`DRV_INFLATE`] to the router's DRV count → an *invalid* (but
    /// structurally clean) point, exercising the recovery ladder's
    /// invalid-retry path.
    DrvInflate,
    // --- merged-DEF corruptions ---
    /// Remove a component → `lvs.missing-component`.
    DefDropComponent,
    /// Duplicate a component row → `lvs.duplicate-component`.
    DefDupComponent,
    /// Swap a component's macro → `lvs.macro-mismatch`.
    DefMacroSwap,
    /// Add a component the netlist has never heard of →
    /// `lvs.extra-component`.
    DefGhostComponent,
    /// Remove a routed net → `lvs.missing-net`.
    DefDropNet,
    /// Duplicate a net row → `lvs.duplicate-net`.
    DefDupNet,
    /// Add a net the netlist has never heard of → `lvs.extra-net`.
    DefGhostNet,
    /// Remove one pin connection from a net → `lvs.missing-connection`.
    DefDropConnection,
    /// Add a bogus pin connection to a net → `lvs.extra-connection`.
    DefAddConnection,
    // --- runner corruption ---
    /// Panic at the named stage boundary → the pool's `panicked:` /
    /// the recovery ladder's per-attempt containment.
    StagePanic(FlowStage),
    /// Panic *inside* a router batch worker (not at a stage boundary):
    /// exercises the routing pool's panic containment through the batched
    /// parallel path. The payload is re-raised on the flow thread, so the
    /// ladder sees the same disposition as [`FaultKind::StagePanic`] at
    /// any `route_jobs`.
    RoutePanic,
    // --- checkpoint/watchdog corruptions ---
    /// Force the deadline watchdog to expire at the named stage: the run
    /// sees an already-cancelled token and lands a deterministic
    /// `timeout(stage)` disposition (`FlowError::Timeout`), which the
    /// recovery ladder retries like any other recoverable failure. Unlike
    /// a real `FFET_DEADLINE` expiry this is bit-reproducible at any
    /// `FFET_JOBS` × `FFET_ROUTE_JOBS`.
    StageTimeout(FlowStage),
    /// Tear every journal append in the `repro` driver (truncated record,
    /// no trailing newline) — the on-disk shape of a kill mid-append.
    /// `Journal::recover` must discard the torn tail and `--resume` must
    /// recompute the affected experiments.
    CkptTornWrite,
    /// Corrupt the checksum of every journal append — silent corruption
    /// that `Journal::recover` must detect and discard.
    CkptStale,
}

/// One fault plus its activity window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to corrupt.
    pub kind: FaultKind,
    /// Active while `FaultPlan::attempt < until_attempt` (`None` = every
    /// attempt). A window of `Some(1)` makes a *transient* fault the
    /// recovery ladder's first retry no longer sees.
    pub until_attempt: Option<u32>,
}

impl Fault {
    /// A fault active on every attempt.
    #[must_use]
    pub fn always(kind: FaultKind) -> Fault {
        Fault {
            kind,
            until_attempt: None,
        }
    }

    /// A fault active only on attempts `< until`.
    #[must_use]
    pub fn until(kind: FaultKind, until: u32) -> Fault {
        Fault {
            kind,
            until_attempt: Some(until),
        }
    }
}

/// The seeded fault schedule of one flow run. `Default` is empty — the
/// golden path never sees this module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Faults to inject, applied in order.
    pub faults: Vec<Fault>,
    /// Extra seed mixed into victim selection (on top of the flow seed).
    pub seed: u64,
    /// Current recovery attempt (set by `run_flow_resilient` before each
    /// attempt; gates windowed faults).
    pub attempt: u32,
}

/// Environment variable carrying a fault spec for the `repro` driver.
pub const FAULTS_ENV: &str = "FFET_FAULTS";

impl FaultPlan {
    /// Whether the plan injects nothing (the golden path).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses a comma-separated fault spec: `name[@until]` per entry, e.g.
    /// `route-open,panic-pnr@1`. `@until` bounds the activity window (the
    /// fault disappears from recovery attempt `until` onward).
    ///
    /// # Errors
    ///
    /// A message naming the unparsable entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (name, window) = match entry.split_once('@') {
                Some((n, w)) => {
                    let until: u32 = w
                        .parse()
                        .map_err(|_| format!("bad fault window in {entry:?}"))?;
                    (n, Some(until))
                }
                None => (entry, None),
            };
            let kind = kind_from_name(name).ok_or_else(|| format!("unknown fault {name:?}"))?;
            faults.push(Fault {
                kind,
                until_attempt: window,
            });
        }
        Ok(FaultPlan {
            faults,
            seed: 0,
            attempt: 0,
        })
    }

    /// The plan from `FFET_FAULTS`, or empty when unset.
    ///
    /// # Panics
    ///
    /// On an unparsable spec — the variable is programmer-set, so a typo
    /// should fail loudly rather than silently run faultless.
    #[must_use]
    pub fn from_env() -> FaultPlan {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) => FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("{FAULTS_ENV}: {e}")),
            Err(_) => FaultPlan::default(),
        }
    }

    /// Faults active on the current attempt.
    fn active(&self) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(|f| f.until_attempt.is_none_or(|u| self.attempt < u))
    }

    /// Whether an active [`FaultKind::RoutePanic`] should arm the router's
    /// batch-worker panic (plumbed into `PnrConfig::route_panic`).
    #[must_use]
    pub fn has_route_panic(&self) -> bool {
        self.active().any(|f| f.kind == FaultKind::RoutePanic)
    }

    /// The stage an active [`FaultKind::StageTimeout`] forces to expire,
    /// if any (plumbed into the flow's cancellation token).
    #[must_use]
    pub fn timeout_stage(&self) -> Option<FlowStage> {
        self.active().find_map(|f| match f.kind {
            FaultKind::StageTimeout(stage) => Some(stage),
            _ => None,
        })
    }

    /// Whether an active fault tears journal appends (consumed by the
    /// `repro` driver's checkpoint journal).
    #[must_use]
    pub fn has_ckpt_torn(&self) -> bool {
        self.active().any(|f| f.kind == FaultKind::CkptTornWrite)
    }

    /// Whether an active fault corrupts journal checksums (consumed by the
    /// `repro` driver's checkpoint journal).
    #[must_use]
    pub fn has_ckpt_stale(&self) -> bool {
        self.active().any(|f| f.kind == FaultKind::CkptStale)
    }

    /// Panics when an active [`FaultKind::StagePanic`] names `stage`.
    pub fn maybe_panic(&self, stage: FlowStage) {
        if self
            .active()
            .any(|f| f.kind == FaultKind::StagePanic(stage))
        {
            panic!("fault: injected panic at {stage} stage boundary");
        }
    }

    /// Applies the active netlist and P&R-result corruptions (between the
    /// P&R and merge stages of `run_flow`).
    pub fn apply_post_pnr(
        &self,
        netlist: &mut Netlist,
        pnr: &mut PnrResult,
        library: &Library,
        flow_seed: u64,
    ) {
        for (i, fault) in self.active().enumerate() {
            let mut rng = self.victim_rng(flow_seed, i);
            apply_pnr_fault(fault.kind, netlist, pnr, library, &mut rng);
        }
    }

    /// Applies the active merged-DEF corruptions (between the merge and
    /// signoff stages of `run_flow`).
    pub fn apply_post_merge(
        &self,
        merged: &mut Def,
        netlist: &Netlist,
        library: &Library,
        flow_seed: u64,
    ) {
        for (i, fault) in self.active().enumerate() {
            let mut rng = self.victim_rng(flow_seed, i);
            apply_def_fault(fault.kind, merged, netlist, library, &mut rng);
        }
    }

    /// Victim-selection stream for the `i`-th active fault: keyed on the
    /// flow seed, the plan seed, and the fault's position, so co-injected
    /// faults pick victims independently yet reproducibly.
    fn victim_rng(&self, flow_seed: u64, i: usize) -> Rng64 {
        Rng64::new(flow_seed ^ self.seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

fn kind_from_name(name: &str) -> Option<FaultKind> {
    Some(match name {
        "net-undriven" => FaultKind::NetUndriven,
        "net-multi-driven" => FaultKind::NetMultiDriven,
        "pin-float" => FaultKind::PinFloat,
        "comb-loop" => FaultKind::CombLoop,
        "ghost-instance" => FaultKind::GhostInstance,
        "bridge-orphan" => FaultKind::BridgeOrphan,
        "cell-displace" => FaultKind::CellDisplace,
        "placement-count" => FaultKind::PlacementCountMismatch,
        "route-open" => FaultKind::RouteOpen,
        "route-phantom" => FaultKind::RoutePhantom,
        "wire-non-manhattan" => FaultKind::WireNonManhattan,
        "wire-off-die" => FaultKind::WireOffDie,
        "wire-illegal-layer" => FaultKind::WireIllegalLayer,
        "wire-wrong-direction" => FaultKind::WireWrongDirection,
        "via-displace" => FaultKind::ViaDisplace,
        "demand-inflate" => FaultKind::DemandInflate,
        "drv-inflate" => FaultKind::DrvInflate,
        "def-drop-component" => FaultKind::DefDropComponent,
        "def-dup-component" => FaultKind::DefDupComponent,
        "def-macro-swap" => FaultKind::DefMacroSwap,
        "def-ghost-component" => FaultKind::DefGhostComponent,
        "def-drop-net" => FaultKind::DefDropNet,
        "def-dup-net" => FaultKind::DefDupNet,
        "def-ghost-net" => FaultKind::DefGhostNet,
        "def-drop-connection" => FaultKind::DefDropConnection,
        "def-add-connection" => FaultKind::DefAddConnection,
        "panic-synth" => FaultKind::StagePanic(FlowStage::Synth),
        "panic-pnr" => FaultKind::StagePanic(FlowStage::Pnr),
        "panic-merge" => FaultKind::StagePanic(FlowStage::Merge),
        "panic-signoff" => FaultKind::StagePanic(FlowStage::Signoff),
        "panic-route" => FaultKind::RoutePanic,
        "stage-timeout" => FaultKind::StageTimeout(FlowStage::Pnr),
        "timeout-synth" => FaultKind::StageTimeout(FlowStage::Synth),
        "timeout-merge" => FaultKind::StageTimeout(FlowStage::Merge),
        "timeout-signoff" => FaultKind::StageTimeout(FlowStage::Signoff),
        "ckpt-torn-write" => FaultKind::CkptTornWrite,
        "ckpt-stale" => FaultKind::CkptStale,
        _ => return None,
    })
}

/// Picks a deterministic victim index in `0..n` (`n > 0`).
fn pick(rng: &mut Rng64, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// A point far outside any die (all dies here are well under 10 mm).
fn far_outside(die: ffet_geom::Rect) -> Point {
    Point::new(die.hi.x + 10_000_000, die.hi.y + 10_000_000)
}

fn apply_pnr_fault(
    kind: FaultKind,
    netlist: &mut Netlist,
    pnr: &mut PnrResult,
    library: &Library,
    rng: &mut Rng64,
) {
    match kind {
        FaultKind::NetUndriven => {
            let victims: Vec<usize> = netlist
                .nets()
                .iter()
                .enumerate()
                .filter(|(_, n)| n.driver.is_some() && !n.sinks.is_empty() && !n.is_clock)
                .map(|(i, _)| i)
                .collect();
            if victims.is_empty() {
                return;
            }
            let ni = victims[pick(rng, victims.len())];
            // Victims were filtered on `driver.is_some()` above.
            let Some(driver) = netlist.net_mut(NetId(ni as u32)).driver.take() else {
                return;
            };
            netlist.instance_mut(driver.inst).conns[driver.pin] = None;
        }
        FaultKind::NetMultiDriven => {
            let victims: Vec<usize> = netlist
                .nets()
                .iter()
                .enumerate()
                .filter(|(_, n)| n.driver.is_some() && !n.is_clock)
                .map(|(i, _)| i)
                .collect();
            if victims.is_empty() {
                return;
            }
            let ni = victims[pick(rng, victims.len())];
            netlist.add_port("fault_driver", PortDirection::Input, NetId(ni as u32));
            // Keep placement bookkeeping consistent: decomposition indexes
            // port positions by port index.
            let pos = pnr
                .placement
                .port_positions
                .first()
                .copied()
                .unwrap_or(pnr.floorplan.die.lo);
            pnr.placement.port_positions.push(pos);
        }
        FaultKind::PinFloat => {
            let victims: Vec<PinRef> = connected_input_pins(netlist, library);
            if victims.is_empty() {
                return;
            }
            let pin = victims[pick(rng, victims.len())];
            // Victims came from `connected_input_pins`, so the slot is
            // occupied.
            let Some(net) = netlist.instance_mut(pin.inst).conns[pin.pin].take() else {
                return;
            };
            netlist.net_mut(net).sinks.retain(|&s| s != pin);
        }
        FaultKind::CombLoop => {
            let victims: Vec<(InstId, usize, NetId, NetId)> = comb_loop_victims(netlist, library);
            if victims.is_empty() {
                return;
            }
            let (inst, in_pin, old_net, out_net) = victims[pick(rng, victims.len())];
            let pin = PinRef::new(inst, in_pin);
            netlist.net_mut(old_net).sinks.retain(|&s| s != pin);
            netlist.instance_mut(inst).conns[in_pin] = Some(out_net);
            netlist.net_mut(out_net).sinks.push(pin);
        }
        FaultKind::GhostInstance => {
            let inv = CellKind::new(CellFunction::Inv, DriveStrength::D1);
            add_ghost_sink(netlist, pnr, library, rng, inv, "fault_ghost");
        }
        FaultKind::BridgeOrphan => {
            let bridge = CellKind::new(CellFunction::Bridge, DriveStrength::D2);
            add_ghost_sink(netlist, pnr, library, rng, bridge, "fault_bridge");
        }
        FaultKind::CellDisplace => {
            let n = pnr.placement.origins.len();
            if n == 0 {
                return;
            }
            // One site off the row grid: small enough to stay on-die,
            // large enough that legality flags the origin.
            pnr.placement.origins[pick(rng, n)].y += 7;
        }
        FaultKind::PlacementCountMismatch => {
            let die = pnr.floorplan.die;
            pnr.placement.origins.push(die.lo);
            pnr.placement.orients.push(Orientation::default());
        }
        FaultKind::RouteOpen => {
            let victims: Vec<usize> = pnr
                .routing
                .nets
                .iter()
                .enumerate()
                .filter(|(_, rn)| rn.wires.iter().any(|w| w.from != w.to))
                .map(|(i, _)| i)
                .collect();
            if victims.is_empty() {
                return;
            }
            let rn = &mut pnr.routing.nets[victims[pick(rng, victims.len())]];
            rn.wires.clear();
            rn.vias.clear();
        }
        FaultKind::RoutePhantom => {
            let routed: FxHashSet<(u32, Side)> = pnr
                .routing
                .nets
                .iter()
                .map(|rn| (rn.net.0, rn.side))
                .collect();
            let victims: Vec<(u32, Side)> = (0..netlist.nets().len() as u32)
                .flat_map(|ni| Side::BOTH.map(|s| (ni, s)))
                .filter(|key| !routed.contains(key))
                .collect();
            if victims.is_empty() {
                return;
            }
            let (ni, side) = victims[pick(rng, victims.len())];
            pnr.routing.nets.push(RoutedNet {
                net: NetId(ni),
                side,
                wires: Vec::new(),
                vias: Vec::new(),
            });
        }
        FaultKind::WireNonManhattan => {
            if let Some((ri, layer, at)) = wire_anchor(pnr) {
                pnr.routing.nets[ri].wires.push(DefWire {
                    layer,
                    from: at,
                    to: Point::new(at.x + 31, at.y + 17),
                });
            }
        }
        FaultKind::WireOffDie => {
            if let Some((ri, layer, _)) = wire_anchor(pnr) {
                let far = far_outside(pnr.floorplan.die);
                // Axis-aligned along the layer's preferred direction so
                // only the die check can fire.
                let to = match layer.axis() {
                    ffet_geom::Axis::Horizontal => Point::new(far.x + 100, far.y),
                    ffet_geom::Axis::Vertical => Point::new(far.x, far.y + 100),
                };
                pnr.routing.nets[ri].wires.push(DefWire {
                    layer,
                    from: far,
                    to,
                });
            }
        }
        FaultKind::WireIllegalLayer => {
            if let Some((ri, layer, at)) = wire_anchor(pnr) {
                pnr.routing.nets[ri].wires.push(DefWire {
                    layer: LayerId::new(layer.side, 0),
                    from: at,
                    to: Point::new(at.x + 60, at.y),
                });
            }
        }
        FaultKind::WireWrongDirection => {
            if let Some((ri, layer, at)) = wire_anchor(pnr) {
                // Perpendicular to the layer's preferred direction.
                let to = match layer.axis() {
                    ffet_geom::Axis::Horizontal => Point::new(at.x, at.y + 64),
                    ffet_geom::Axis::Vertical => Point::new(at.x + 64, at.y),
                };
                pnr.routing.nets[ri].wires.push(DefWire {
                    layer,
                    from: at,
                    to,
                });
            }
        }
        FaultKind::ViaDisplace => {
            let far = far_outside(pnr.floorplan.die);
            if let Some(rn) = pnr.routing.nets.iter_mut().find(|rn| !rn.vias.is_empty()) {
                rn.vias[0].at = far;
            } else if let Some((ri, layer, _)) = wire_anchor(pnr) {
                pnr.routing.nets[ri].vias.push(DefVia {
                    at: far,
                    from_layer: layer,
                    to_layer: layer,
                });
            }
        }
        FaultKind::DemandInflate => {
            let longest = pnr
                .routing
                .nets
                .iter()
                .enumerate()
                .flat_map(|(ri, rn)| rn.wires.iter().map(move |w| (ri, *w)))
                .max_by_key(|(_, w)| w.length());
            if let Some((ri, wire)) = longest {
                pnr.routing.nets[ri]
                    .wires
                    .extend(std::iter::repeat_n(wire, DEMAND_INFLATE_COPIES));
            }
        }
        FaultKind::DrvInflate => {
            pnr.routing.drv_count += DRV_INFLATE;
        }
        FaultKind::StagePanic(_) => {}   // handled at stage boundaries
        FaultKind::RoutePanic => {}      // armed via PnrConfig::route_panic before P&R runs
        FaultKind::StageTimeout(_) => {} // armed as a forced cancel token before the flow runs
        FaultKind::CkptTornWrite | FaultKind::CkptStale => {} // consumed by the repro journal
        _ => {}                          // merged-DEF faults are applied in apply_def_fault
    }
}

/// Connected input pins of every instance (victim pool for `PinFloat`).
fn connected_input_pins(netlist: &Netlist, library: &Library) -> Vec<PinRef> {
    let mut out = Vec::new();
    for (i, inst) in netlist.instances().iter().enumerate() {
        let output = library.cell(inst.cell).output_pin();
        for (pi, conn) in inst.conns.iter().enumerate() {
            if conn.is_some() && Some(pi) != output {
                out.push(PinRef::new(InstId(i as u32), pi));
            }
        }
    }
    out
}

/// Combinational instances whose first connected input can be rewired to
/// their own output net: `(inst, input_pin, current_net, output_net)`.
fn comb_loop_victims(netlist: &Netlist, library: &Library) -> Vec<(InstId, usize, NetId, NetId)> {
    let mut out = Vec::new();
    for (i, inst) in netlist.instances().iter().enumerate() {
        let cell = library.cell(inst.cell);
        if cell.kind.function.is_sequential() {
            continue;
        }
        let Some(out_pin) = cell.output_pin() else {
            continue;
        };
        let Some(out_net) = inst.conns[out_pin] else {
            continue;
        };
        if netlist.net(out_net).is_clock {
            continue;
        }
        let input = inst
            .conns
            .iter()
            .enumerate()
            .find(|&(pi, c)| pi != out_pin && c.is_some() && *c != Some(out_net));
        if let Some((pi, &Some(old_net))) = input {
            out.push((InstId(i as u32), pi, old_net, out_net));
        }
    }
    out
}

/// Adds a post-P&R instance of `kind` (sinking an existing net, driving a
/// fresh one) plus a placement origin so downstream analysis stays
/// index-consistent. No-op when the library lacks the cell (e.g. bridge
/// cells on CFET).
fn add_ghost_sink(
    netlist: &mut Netlist,
    pnr: &mut PnrResult,
    library: &Library,
    rng: &mut Rng64,
    kind: CellKind,
    name: &str,
) {
    let Some(cell) = library.id(kind) else {
        return;
    };
    let victims: Vec<usize> = netlist
        .nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.driver.is_some() && !n.is_clock)
        .map(|(i, _)| i)
        .collect();
    if victims.is_empty() || pnr.placement.origins.is_empty() {
        return;
    }
    let in_net = NetId(victims[pick(rng, victims.len())] as u32);
    let out_net = netlist.add_net(format!("{name}_out"));
    netlist.add_instance(library, name, cell, &[Some(in_net), Some(out_net)]);
    pnr.placement.origins.push(pnr.placement.origins[0]);
    pnr.placement.orients.push(Orientation::default());
}

/// First routed net carrying real geometry: `(index, layer, endpoint)` —
/// the anchor injected wires attach near so they stay on legal, on-die
/// coordinates except for the one property each fault violates.
fn wire_anchor(pnr: &PnrResult) -> Option<(usize, LayerId, Point)> {
    pnr.routing.nets.iter().enumerate().find_map(|(ri, rn)| {
        rn.wires
            .iter()
            .find(|w| w.from != w.to)
            .map(|w| (ri, w.layer, w.from))
    })
}

fn apply_def_fault(
    kind: FaultKind,
    merged: &mut Def,
    netlist: &Netlist,
    library: &Library,
    rng: &mut Rng64,
) {
    // Only netlist-backed components are corrupted: tap/filler rows have
    // their own LVS exemptions and would not map to a unique rule.
    let macro_of: FxHashMap<&str, &str> = netlist
        .instances()
        .iter()
        .map(|inst| (inst.name.as_str(), library.cell(inst.cell).name.as_str()))
        .collect();
    let component_victims = |merged: &Def| -> Vec<usize> {
        merged
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| macro_of.contains_key(c.name.as_str()))
            .map(|(i, _)| i)
            .collect()
    };
    match kind {
        FaultKind::DefDropComponent => {
            let victims = component_victims(merged);
            if victims.is_empty() {
                return;
            }
            merged.components.remove(victims[pick(rng, victims.len())]);
        }
        FaultKind::DefDupComponent => {
            let victims = component_victims(merged);
            if victims.is_empty() {
                return;
            }
            let dup = merged.components[victims[pick(rng, victims.len())]].clone();
            merged.components.push(dup);
        }
        FaultKind::DefMacroSwap => {
            let victims = component_victims(merged);
            if victims.is_empty() {
                return;
            }
            let c = &mut merged.components[victims[pick(rng, victims.len())]];
            c.macro_name = if c.macro_name == "INVD1" {
                "BUFD1"
            } else {
                "INVD1"
            }
            .to_owned();
        }
        FaultKind::DefGhostComponent => {
            merged.components.push(DefComponent {
                name: "fault_ghost_component".to_owned(),
                macro_name: "INVD1".to_owned(),
                origin: merged.die.lo,
                orient: Orientation::default(),
                fixed: false,
            });
        }
        FaultKind::DefDropNet => {
            let required: FxHashSet<&str> = netlist
                .nets()
                .iter()
                .filter(|n| n.driver.is_some() && !n.sinks.is_empty())
                .map(|n| n.name.as_str())
                .collect();
            let victims: Vec<usize> = merged
                .nets
                .iter()
                .enumerate()
                .filter(|(_, n)| required.contains(n.name.as_str()))
                .map(|(i, _)| i)
                .collect();
            if victims.is_empty() {
                return;
            }
            merged.nets.remove(victims[pick(rng, victims.len())]);
        }
        FaultKind::DefDupNet => {
            if merged.nets.is_empty() {
                return;
            }
            let dup = merged.nets[pick(rng, merged.nets.len())].clone();
            merged.nets.push(dup);
        }
        FaultKind::DefGhostNet => {
            merged.nets.push(DefNet {
                name: "fault_ghost_net".to_owned(),
                ..DefNet::default()
            });
        }
        FaultKind::DefDropConnection => {
            let victims: Vec<(usize, usize)> = merged
                .nets
                .iter()
                .enumerate()
                .flat_map(|(ni, n)| {
                    n.connections
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.instance != "PIN")
                        .map(move |(ci, _)| (ni, ci))
                })
                .collect();
            if victims.is_empty() {
                return;
            }
            let (ni, ci) = victims[pick(rng, victims.len())];
            merged.nets[ni].connections.remove(ci);
        }
        FaultKind::DefAddConnection => {
            if merged.nets.is_empty() {
                return;
            }
            let ni = pick(rng, merged.nets.len());
            merged.nets[ni].connections.push(DefConnection {
                instance: "fault_ghost_component".to_owned(),
                pin: "A".to_owned(),
            });
        }
        _ => {} // netlist/P&R faults were applied in apply_pnr_fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.active().count(), 0);
    }

    #[test]
    fn parse_round_trips_names_and_windows() {
        let plan = FaultPlan::parse("route-open, panic-pnr@1 ,drv-inflate").expect("parses");
        assert_eq!(
            plan.faults,
            vec![
                Fault::always(FaultKind::RouteOpen),
                Fault::until(FaultKind::StagePanic(FlowStage::Pnr), 1),
                Fault::always(FaultKind::DrvInflate),
            ]
        );
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
        assert!(FaultPlan::parse("no-such-fault").is_err());
        assert!(FaultPlan::parse("route-open@x").is_err());
    }

    #[test]
    fn windowed_fault_deactivates_at_attempt() {
        let mut plan = FaultPlan {
            faults: vec![Fault::until(FaultKind::RouteOpen, 1)],
            seed: 0,
            attempt: 0,
        };
        assert_eq!(plan.active().count(), 1);
        plan.attempt = 1;
        assert_eq!(plan.active().count(), 0);
    }

    #[test]
    fn ckpt_and_timeout_faults_parse_and_gate_on_attempt() {
        let mut plan =
            FaultPlan::parse("stage-timeout@1,ckpt-torn-write,ckpt-stale").expect("parses");
        assert_eq!(plan.timeout_stage(), Some(FlowStage::Pnr));
        assert!(plan.has_ckpt_torn());
        assert!(plan.has_ckpt_stale());
        // The window gates the timeout off from attempt 1 on — the ladder's
        // first retry no longer expires.
        plan.attempt = 1;
        assert_eq!(plan.timeout_stage(), None);
        assert_eq!(
            FaultPlan::parse("timeout-synth")
                .expect("parses")
                .timeout_stage(),
            Some(FlowStage::Synth)
        );
        assert!(!FaultPlan::default().has_ckpt_torn());
        assert!(!FaultPlan::default().has_ckpt_stale());
    }

    #[test]
    #[should_panic(expected = "injected panic at merge stage")]
    fn stage_panic_fires_at_its_boundary() {
        let plan = FaultPlan {
            faults: vec![Fault::always(FaultKind::StagePanic(FlowStage::Merge))],
            seed: 0,
            attempt: 0,
        };
        plan.maybe_panic(FlowStage::Pnr); // different stage: no panic
        plan.maybe_panic(FlowStage::Merge);
    }
}
