//! `ffet-core` — the FFET evaluation framework of the paper: physical
//! implementation plus block-level PPA assessment with dual-sided signals.
//!
//! This crate ties the substrates together into the paper's Fig. 7 flow:
//!
//! 1. **Synthesis-lite** ([`synthesize`]): fanout buffering + drive sizing
//!    toward a synthesis target frequency.
//! 2. **Physical implementation** ([`ffet_pnr`]): floorplan, BSPDN
//!    powerplan with Power Tap Cells, placement, CTS, and the dual-sided
//!    signal routing of Algorithm 1.
//! 3. **Power-performance** ([`run_flow`]): DEF merging, dual-sided RC
//!    extraction, STA and power analysis.
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation on the [`designs::rv32_core`] benchmark.
//!
//! # Example
//!
//! ```no_run
//! use ffet_core::{designs, run_flow, FlowConfig};
//! use ffet_tech::TechKind;
//!
//! let config = FlowConfig::baseline(TechKind::Ffet3p5t);
//! let library = config.build_library()?;
//! let netlist = designs::rv32_core(&library);
//! let outcome = run_flow(&netlist, &library, &config)?;
//! println!("{}", outcome.report.summary());
//! # Ok::<(), ffet_core::FlowError>(())
//! ```

pub mod ckpt;
pub mod designs;
pub mod experiments;
pub mod faults;
mod flow;
pub mod recover;
mod report;
pub mod runner;
pub mod stagecache;
mod synth;

pub use faults::{Fault, FaultKind, FaultPlan, FlowStage, FAULTS_ENV};
pub use flow::{
    deadline_ms_from_env, route_jobs_from_env, run_flow, FlowConfig, FlowError, FlowOutcome,
    StageTimes, DEADLINE_ENV, ROUTE_JOBS_ENV,
};
pub use recover::{
    run_flow_resilient, AttemptLog, AttemptRecord, PointDisposition, PointFailure, PointRecovery,
    RecoveryRung, ResilientOutcome, MAX_ATTEMPTS_ENV,
};
pub use report::{pct_diff, PpaReport};
pub use runner::{JobError, JobOutcome, JobStats, Pool, RunLog, RunLogRow};
pub use stagecache::{
    CacheStatsReport, GcReport, Stage, StageCache, VerifyReport, STAGE_CACHE_ENV,
};
pub use synth::{synthesize, SynthConfig, SynthStats};

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::{RoutingPattern, TechKind};

    #[test]
    fn flow_runs_end_to_end_on_small_design() {
        let mut config = FlowConfig::baseline(TechKind::Ffet3p5t);
        config.pattern = RoutingPattern::new(6, 6).unwrap();
        config.back_pin_ratio = 0.5;
        config.utilization = 0.6;
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 16);
        let outcome = run_flow(&netlist, &library, &config).expect("flow completes");
        let r = &outcome.report;
        assert!(r.achieved_freq_ghz > 0.2, "freq {}", r.achieved_freq_ghz);
        assert!(r.power_mw > 0.0);
        assert!(r.core_area_um2 > 0.0);
        assert!(r.wirelength_mm > 0.0);
        assert!(r.back_wirelength_mm > 0.0, "dual-sided routing used");
        assert!(!outcome.merged_def.nets.is_empty());
    }

    #[test]
    fn cfet_flow_runs_end_to_end() {
        let mut config = FlowConfig::baseline(TechKind::Cfet4t);
        config.utilization = 0.6;
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 16);
        let outcome = run_flow(&netlist, &library, &config).expect("flow completes");
        assert_eq!(outcome.report.back_wirelength_mm, 0.0);
        assert!(outcome.report.valid, "drv {}", outcome.report.drv);
    }

    #[test]
    fn flow_is_deterministic() {
        let mut config = FlowConfig::baseline(TechKind::Ffet3p5t);
        config.utilization = 0.55;
        let library = config.build_library().expect("valid config");
        let netlist = designs::counter_pipeline(&library, 12);
        let a = run_flow(&netlist, &library, &config).unwrap();
        let b = run_flow(&netlist, &library, &config).unwrap();
        assert_eq!(a.report, b.report);
    }
}
