//! Parallel deterministic DoE execution plus its telemetry artifact.
//!
//! The paper's evaluation (§IV) is a grid of *independent* flow runs — every
//! figure and table sweeps utilization/frequency/pin-density/layer-count DoE
//! points through the full Fig. 7 flow. The execution engine itself lives in
//! [`ffet_pool`] (one deterministic work-stealing pool shared by this DoE
//! level and the batched intra-point router in `ffet-pnr`); this module
//! re-exports it under its historical paths and keeps the DoE-specific
//! [`RunLog`] artifact.
//!
//! **Determinism contract.** Results are reassembled in *submission order*
//! (slot `i` of the output always holds job `i`), every job carries its own
//! seed inside its [`crate::FlowConfig`], and jobs never communicate — so
//! every experiment table and CSV is byte-identical regardless of worker
//! count. Only the [`JobStats`] telemetry (wall time, worker id) varies
//! between runs; it is surfaced separately through [`RunLog`] and must never
//! feed back into experiment tables.
//!
//! A job that panics is caught and reported as a failed point
//! ([`JobError::Panicked`]); it does not poison the pool or abort sibling
//! jobs. Pool width comes from `FFET_JOBS` (or `--jobs` in the `repro`
//! driver), defaulting to the machine's available parallelism.

use std::time::Duration;

pub use crate::flow::StageTimes;
pub use ffet_pool::{
    panic_message, width_from, CancelToken, Disposition, JobError, JobOutcome, JobStats, Pool,
    JOBS_ENV,
};

// ---------------------------------------------------------------------
// Run log — the machine-checkable telemetry artifact
// ---------------------------------------------------------------------

/// One row of `results/runlog.csv`: a single executed (or skipped) DoE
/// point, or a per-experiment `(total)` summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLogRow {
    /// Experiment the job belongs to (`fig8`, `table3`, …).
    pub experiment: String,
    /// Point label (config / utilization / seed).
    pub label: String,
    /// Submission index within the experiment.
    pub index: usize,
    /// Worker thread that ran the job.
    pub worker: usize,
    /// Wall-clock time, ms.
    pub wall_ms: f64,
    /// Per-stage breakdown of the flow, when the job ran the flow.
    pub stages: Option<StageTimes>,
    /// Flow attempts executed for this point (1 = no recovery; 0 for
    /// synthetic rows that ran nothing).
    pub attempts: u32,
    /// Final disposition (`ok` / `clean` / `recovered(n)` / `failed(n)` /
    /// `failed: …` / `panicked: …` / `skipped: …`).
    pub disposition: String,
}

impl RunLogRow {
    /// Builds a row from pool telemetry plus experiment-level context.
    #[must_use]
    pub fn from_stats(
        experiment: &str,
        label: String,
        stats: &JobStats,
        stages: Option<StageTimes>,
    ) -> RunLogRow {
        RunLogRow {
            experiment: experiment.to_owned(),
            label,
            index: stats.index,
            worker: stats.worker,
            wall_ms: stats.wall.as_secs_f64() * 1e3,
            stages,
            attempts: 1,
            disposition: stats.disposition.to_cell(),
        }
    }

    /// A synthetic row for a point dropped at assembly time.
    #[must_use]
    pub fn skipped(experiment: &str, label: String, index: usize, reason: &str) -> RunLogRow {
        RunLogRow {
            experiment: experiment.to_owned(),
            label,
            index,
            worker: 0,
            wall_ms: 0.0,
            stages: None,
            attempts: 0,
            disposition: Disposition::Skipped(reason.to_owned()).to_cell(),
        }
    }
}

/// The telemetry record of one `repro` invocation: every job of every
/// experiment plus per-experiment totals, serializable as
/// `results/runlog.csv`.
///
/// The run log is deliberately *outside* the determinism contract: wall
/// times and worker ids vary run to run; only the experiment tables are
/// byte-stable.
#[derive(Debug, Clone, Default)]
pub struct RunLog {
    /// Pool width the run used.
    pub jobs: usize,
    /// All rows, in experiment submission order.
    pub rows: Vec<RunLogRow>,
}

impl RunLog {
    /// An empty log for a pool of the given width.
    #[must_use]
    pub fn new(jobs: usize) -> RunLog {
        RunLog {
            jobs,
            rows: Vec::new(),
        }
    }

    /// Appends an experiment's rows plus its `(total)` summary row.
    pub fn record_experiment(&mut self, experiment: &str, rows: Vec<RunLogRow>, wall: Duration) {
        let index = rows.len();
        self.rows.extend(rows);
        self.rows.push(RunLogRow {
            experiment: experiment.to_owned(),
            label: "(total)".to_owned(),
            index,
            worker: 0,
            wall_ms: wall.as_secs_f64() * 1e3,
            stages: None,
            attempts: 0,
            disposition: Disposition::Completed.to_cell(),
        });
    }

    /// One-line summary of an experiment's jobs for the driver's stderr.
    #[must_use]
    pub fn summary(&self, experiment: &str) -> String {
        let rows: Vec<&RunLogRow> = self
            .rows
            .iter()
            .filter(|r| r.experiment == experiment && r.label != "(total)")
            .collect();
        let ok = rows
            .iter()
            .filter(|r| {
                r.disposition == "ok"
                    || r.disposition == "clean"
                    || r.disposition.starts_with("recovered(")
            })
            .count();
        // An empty f64 sum is -0.0; normalize so zero-job summaries print 0.0.
        let busy_ms: f64 = rows.iter().map(|r| r.wall_ms).sum::<f64>().max(0.0);
        format!(
            "{} jobs ({ok} ok, {} failed/skipped), {} workers, {:.1}s busy",
            rows.len(),
            rows.len() - ok,
            self.jobs,
            busy_ms / 1e3,
        )
    }

    /// Serializes the log as CSV (`#`-prefixed trailer notes carry the pool
    /// width and the non-determinism caveat).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::from(
            "experiment,label,index,worker,wall_ms,synth_ms,pnr_ms,merge_ms,signoff_ms,rcx_ms,sta_ms,attempts,disposition\n",
        );
        for r in &self.rows {
            let stage = |pick: fn(&StageTimes) -> f64| -> String {
                r.stages
                    .map_or_else(String::new, |s| format!("{:.3}", pick(&s)))
            };
            out.push_str(&format!(
                "{},{},{},{},{:.3},{},{},{},{},{},{},{},{}\n",
                quote(&r.experiment),
                quote(&r.label),
                r.index,
                r.worker,
                r.wall_ms,
                stage(|s| s.synth_ms),
                stage(|s| s.pnr_ms),
                stage(|s| s.merge_ms),
                stage(|s| s.signoff_ms),
                stage(|s| s.rcx_ms),
                stage(|s| s.sta_ms),
                r.attempts,
                quote(&r.disposition),
            ));
        }
        out.push_str(&format!("# jobs={}\n", self.jobs));
        out.push_str("# telemetry only: wall times and worker ids vary run to run; experiment tables are byte-stable\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runlog_csv_has_totals_and_notes() {
        let mut log = RunLog::new(4);
        let stats = JobStats {
            index: 0,
            worker: 1,
            wall: Duration::from_millis(12),
            disposition: Disposition::Completed,
        };
        log.record_experiment(
            "figX",
            vec![RunLogRow::from_stats("figX", "p0".into(), &stats, None)],
            Duration::from_millis(20),
        );
        let csv = log.to_csv();
        assert!(csv.starts_with("experiment,label,index,worker,wall_ms,"));
        assert!(csv.contains("figX,p0,0,1,"));
        assert!(csv.contains("figX,(total),1,0,"));
        assert!(csv.contains("# jobs=4"));
        assert!(log
            .summary("figX")
            .contains("1 jobs (1 ok, 0 failed/skipped)"));
    }
}
