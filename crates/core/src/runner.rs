//! Parallel deterministic DoE execution engine.
//!
//! The paper's evaluation (§IV) is a grid of *independent* flow runs — every
//! figure and table sweeps utilization/frequency/pin-density/layer-count DoE
//! points through the full Fig. 7 flow. This module executes such grids on a
//! dependency-free work-stealing pool built on [`std::thread::scope`]:
//!
//! * all job indices start in a shared **injector** queue;
//! * each worker pulls batches from the injector into a local deque and
//!   executes from its front;
//! * a worker whose local deque and the injector are both empty **steals**
//!   from the back of a sibling's deque, so stragglers never idle the pool.
//!
//! **Determinism contract.** Results are reassembled in *submission order*
//! (slot `i` of the output always holds job `i`), every job carries its own
//! seed inside its [`crate::FlowConfig`], and jobs never communicate — so
//! every experiment table and CSV is byte-identical regardless of worker
//! count. Only the [`JobStats`] telemetry (wall time, worker id) varies
//! between runs; it is surfaced separately through [`RunLog`] and must never
//! feed back into experiment tables.
//!
//! A job that panics is caught and reported as a failed point
//! ([`JobError::Panicked`]); it does not poison the pool or abort sibling
//! jobs. Pool width comes from `FFET_JOBS` (or `--jobs` in the `repro`
//! driver), defaulting to the machine's available parallelism.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use crate::flow::StageTimes;

/// Environment variable controlling the default pool width.
pub const JOBS_ENV: &str = "FFET_JOBS";

/// How a job ended, as recorded in the run log.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// The job ran to completion and produced a result.
    Completed,
    /// The job returned an error (carried verbatim).
    Failed(String),
    /// The job panicked; the pool caught it and kept running.
    Panicked(String),
    /// The point was dropped at assembly time (e.g. no placement seed of a
    /// sweep point produced a routable run); no flow was executed for it.
    Skipped(String),
}

impl Disposition {
    /// Whether the job completed successfully.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Disposition::Completed)
    }

    /// Single-cell rendering for the run-log CSV.
    #[must_use]
    pub fn to_cell(&self) -> String {
        match self {
            Disposition::Completed => "ok".to_owned(),
            Disposition::Failed(m) => format!("failed: {m}"),
            Disposition::Panicked(m) => format!("panicked: {m}"),
            Disposition::Skipped(m) => format!("skipped: {m}"),
        }
    }
}

/// Per-job telemetry: where and how long a job ran, and how it ended.
///
/// Stats are *observational* — two runs of the same experiment produce
/// identical results but different stats. Nothing in the experiment tables
/// may depend on them.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStats {
    /// Submission index (also the output slot).
    pub index: usize,
    /// Worker thread that executed the job.
    pub worker: usize,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// How the job ended.
    pub disposition: Disposition,
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError<E> {
    /// The job's own error, passed through.
    Failed(E),
    /// The job panicked with this message.
    Panicked(String),
}

impl<E: std::fmt::Display> std::fmt::Display for JobError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Failed(e) => write!(f, "{e}"),
            JobError::Panicked(m) => write!(f, "panic: {m}"),
        }
    }
}

/// One finished job: its result (or error) plus telemetry.
#[derive(Debug, Clone)]
pub struct JobOutcome<R, E> {
    /// What the job returned, or why it did not.
    pub result: Result<R, JobError<E>>,
    /// Telemetry record.
    pub stats: JobStats,
    /// Everything the job's ambient [`ffet_obs::Collector`] recorded: span
    /// events and the metrics snapshot. Metric values are deterministic
    /// (each job runs single-threaded in its own collector); span timings
    /// are wall-clock telemetry like [`JobStats`].
    pub trace: ffet_obs::PointData,
}

/// The work-stealing pool. Cheap to construct; owns no threads between
/// [`Pool::run`] calls (workers are scoped to each batch).
#[derive(Debug, Clone)]
pub struct Pool {
    width: usize,
}

impl Pool {
    /// A pool with exactly `width` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(width: usize) -> Pool {
        Pool {
            width: width.max(1),
        }
    }

    /// A pool sized from the `FFET_JOBS` environment variable, falling back
    /// to the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Pool {
        Pool::new(width_from(std::env::var(JOBS_ENV).ok().as_deref()))
    }

    /// Worker count.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Executes every job, returning outcomes in **submission order**.
    ///
    /// Jobs run concurrently on up to `width` scoped worker threads and must
    /// be independent: `f` only gets a shared reference to its job. A
    /// panicking job is caught and reported as [`JobError::Panicked`] in its
    /// own slot; all other jobs still run exactly once.
    pub fn run<J, R, E, F>(&self, jobs: Vec<J>, f: F) -> Vec<JobOutcome<R, E>>
    where
        J: Sync,
        R: Send,
        E: Send + std::fmt::Display,
        F: Fn(&J) -> Result<R, E> + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let width = self.width.min(n);
        let injector: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
        let locals: Vec<Mutex<VecDeque<usize>>> =
            (0..width).map(|_| Mutex::new(VecDeque::new())).collect();
        let slots: Vec<Mutex<Option<JobOutcome<R, E>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        // Batched injector pulls amortize the shared lock; small enough that
        // the tail of a grid still spreads across workers.
        let batch = (n / (width * 4)).max(1);
        let (jobs, f, injector, locals, slots) = (&jobs, &f, &injector, &locals, &slots);
        std::thread::scope(|scope| {
            for w in 0..width {
                scope.spawn(move || {
                    while let Some(i) = next_job(w, injector, locals, batch) {
                        let t0 = Instant::now();
                        // Per-job collector: the job's instrumentation all
                        // lands in a private buffer, merged later in
                        // submission order — metric values stay identical
                        // at any pool width.
                        let collector = ffet_obs::Collector::new();
                        let caught = {
                            let _guard = collector.install();
                            catch_unwind(AssertUnwindSafe(|| f(&jobs[i])))
                        };
                        let trace = collector.finish();
                        let wall = t0.elapsed();
                        let (result, disposition) = match caught {
                            Ok(Ok(r)) => (Ok(r), Disposition::Completed),
                            Ok(Err(e)) => {
                                let msg = e.to_string();
                                (Err(JobError::Failed(e)), Disposition::Failed(msg))
                            }
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                (
                                    Err(JobError::Panicked(msg.clone())),
                                    Disposition::Panicked(msg),
                                )
                            }
                        };
                        *slots[i].lock().expect("slot lock") = Some(JobOutcome {
                            result,
                            stats: JobStats {
                                index: i,
                                worker: w,
                                wall,
                                disposition,
                            },
                            trace,
                        });
                    }
                });
            }
        });
        slots
            .iter()
            .map(|s| {
                s.lock()
                    .expect("slot lock")
                    .take()
                    .expect("every job is claimed exactly once")
            })
            .collect()
    }
}

/// Claims the next job for worker `w`: local deque front, else a batch from
/// the injector, else steal from the back of a sibling's deque.
fn next_job(
    w: usize,
    injector: &Mutex<VecDeque<usize>>,
    locals: &[Mutex<VecDeque<usize>>],
    batch: usize,
) -> Option<usize> {
    if let Some(i) = locals[w].lock().expect("local lock").pop_front() {
        return Some(i);
    }
    {
        let mut inj = injector.lock().expect("injector lock");
        if !inj.is_empty() {
            let mut local = locals[w].lock().expect("local lock");
            for _ in 0..batch {
                match inj.pop_front() {
                    Some(i) => local.push_back(i),
                    None => break,
                }
            }
            return local.pop_front();
        }
    }
    for offset in 1..locals.len() {
        let victim = (w + offset) % locals.len();
        if let Some(i) = locals[victim].lock().expect("victim lock").pop_back() {
            return Some(i);
        }
    }
    // Injector drained and nothing to steal: remaining jobs are owned by
    // live workers (a worker never exits with a non-empty local deque), so
    // this worker is done.
    None
}

/// Renders a caught panic payload (`&str` and `String` payloads verbatim).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Pool width from an optional `FFET_JOBS`-style value: a positive integer
/// wins; anything else falls back to available parallelism.
fn width_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

// ---------------------------------------------------------------------
// Run log — the machine-checkable telemetry artifact
// ---------------------------------------------------------------------

/// One row of `results/runlog.csv`: a single executed (or skipped) DoE
/// point, or a per-experiment `(total)` summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLogRow {
    /// Experiment the job belongs to (`fig8`, `table3`, …).
    pub experiment: String,
    /// Point label (config / utilization / seed).
    pub label: String,
    /// Submission index within the experiment.
    pub index: usize,
    /// Worker thread that ran the job.
    pub worker: usize,
    /// Wall-clock time, ms.
    pub wall_ms: f64,
    /// Per-stage breakdown of the flow, when the job ran the flow.
    pub stages: Option<StageTimes>,
    /// Flow attempts executed for this point (1 = no recovery; 0 for
    /// synthetic rows that ran nothing).
    pub attempts: u32,
    /// Final disposition (`ok` / `clean` / `recovered(n)` / `failed(n)` /
    /// `failed: …` / `panicked: …` / `skipped: …`).
    pub disposition: String,
}

impl RunLogRow {
    /// Builds a row from pool telemetry plus experiment-level context.
    #[must_use]
    pub fn from_stats(
        experiment: &str,
        label: String,
        stats: &JobStats,
        stages: Option<StageTimes>,
    ) -> RunLogRow {
        RunLogRow {
            experiment: experiment.to_owned(),
            label,
            index: stats.index,
            worker: stats.worker,
            wall_ms: stats.wall.as_secs_f64() * 1e3,
            stages,
            attempts: 1,
            disposition: stats.disposition.to_cell(),
        }
    }

    /// A synthetic row for a point dropped at assembly time.
    #[must_use]
    pub fn skipped(experiment: &str, label: String, index: usize, reason: &str) -> RunLogRow {
        RunLogRow {
            experiment: experiment.to_owned(),
            label,
            index,
            worker: 0,
            wall_ms: 0.0,
            stages: None,
            attempts: 0,
            disposition: Disposition::Skipped(reason.to_owned()).to_cell(),
        }
    }
}

/// The telemetry record of one `repro` invocation: every job of every
/// experiment plus per-experiment totals, serializable as
/// `results/runlog.csv`.
///
/// The run log is deliberately *outside* the determinism contract: wall
/// times and worker ids vary run to run; only the experiment tables are
/// byte-stable.
#[derive(Debug, Clone, Default)]
pub struct RunLog {
    /// Pool width the run used.
    pub jobs: usize,
    /// All rows, in experiment submission order.
    pub rows: Vec<RunLogRow>,
}

impl RunLog {
    /// An empty log for a pool of the given width.
    #[must_use]
    pub fn new(jobs: usize) -> RunLog {
        RunLog {
            jobs,
            rows: Vec::new(),
        }
    }

    /// Appends an experiment's rows plus its `(total)` summary row.
    pub fn record_experiment(&mut self, experiment: &str, rows: Vec<RunLogRow>, wall: Duration) {
        let index = rows.len();
        self.rows.extend(rows);
        self.rows.push(RunLogRow {
            experiment: experiment.to_owned(),
            label: "(total)".to_owned(),
            index,
            worker: 0,
            wall_ms: wall.as_secs_f64() * 1e3,
            stages: None,
            attempts: 0,
            disposition: Disposition::Completed.to_cell(),
        });
    }

    /// One-line summary of an experiment's jobs for the driver's stderr.
    #[must_use]
    pub fn summary(&self, experiment: &str) -> String {
        let rows: Vec<&RunLogRow> = self
            .rows
            .iter()
            .filter(|r| r.experiment == experiment && r.label != "(total)")
            .collect();
        let ok = rows
            .iter()
            .filter(|r| {
                r.disposition == "ok"
                    || r.disposition == "clean"
                    || r.disposition.starts_with("recovered(")
            })
            .count();
        // An empty f64 sum is -0.0; normalize so zero-job summaries print 0.0.
        let busy_ms: f64 = rows.iter().map(|r| r.wall_ms).sum::<f64>().max(0.0);
        format!(
            "{} jobs ({ok} ok, {} failed/skipped), {} workers, {:.1}s busy",
            rows.len(),
            rows.len() - ok,
            self.jobs,
            busy_ms / 1e3,
        )
    }

    /// Serializes the log as CSV (`#`-prefixed trailer notes carry the pool
    /// width and the non-determinism caveat).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::from(
            "experiment,label,index,worker,wall_ms,synth_ms,pnr_ms,merge_ms,signoff_ms,rcx_ms,sta_ms,attempts,disposition\n",
        );
        for r in &self.rows {
            let stage = |pick: fn(&StageTimes) -> f64| -> String {
                r.stages
                    .map_or_else(String::new, |s| format!("{:.3}", pick(&s)))
            };
            out.push_str(&format!(
                "{},{},{},{},{:.3},{},{},{},{},{},{},{},{}\n",
                quote(&r.experiment),
                quote(&r.label),
                r.index,
                r.worker,
                r.wall_ms,
                stage(|s| s.synth_ms),
                stage(|s| s.pnr_ms),
                stage(|s| s.merge_ms),
                stage(|s| s.signoff_ms),
                stage(|s| s.rcx_ms),
                stage(|s| s.sta_ms),
                r.attempts,
                quote(&r.disposition),
            ));
        }
        out.push_str(&format!("# jobs={}\n", self.jobs));
        out.push_str("# telemetry only: wall times and worker ids vary run to run; experiment tables are byte-stable\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_list_returns_empty() {
        let pool = Pool::new(4);
        let out = pool.run(Vec::<u32>::new(), |_| Ok::<u32, String>(0));
        assert!(out.is_empty());
    }

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(Pool::new(0).width(), 1);
        assert_eq!(Pool::new(7).width(), 7);
    }

    #[test]
    fn width_from_env_values() {
        assert_eq!(width_from(Some("3")), 3);
        assert_eq!(width_from(Some(" 2 ")), 2);
        // Invalid / zero fall back to available parallelism (≥ 1).
        assert!(width_from(Some("0")) >= 1);
        assert!(width_from(Some("lots")) >= 1);
        assert!(width_from(None) >= 1);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = Pool::new(4);
        let jobs: Vec<u64> = (0..97).collect();
        let out = pool.run(jobs, |&j| Ok::<u64, String>(j * j));
        assert_eq!(out.len(), 97);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.stats.index, i);
            assert_eq!(*o.result.as_ref().expect("ok"), (i * i) as u64);
        }
    }

    #[test]
    fn errors_are_carried_per_slot() {
        let pool = Pool::new(2);
        let out = pool.run(vec![1u32, 2, 3], |&j| {
            if j == 2 {
                Err(format!("job {j} refused"))
            } else {
                Ok(j)
            }
        });
        assert!(out[0].result.is_ok() && out[2].result.is_ok());
        match &out[1].result {
            Err(JobError::Failed(m)) => assert_eq!(m, "job 2 refused"),
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(out[1].stats.disposition.to_cell(), "failed: job 2 refused");
    }

    #[test]
    fn runlog_csv_has_totals_and_notes() {
        let mut log = RunLog::new(4);
        let stats = JobStats {
            index: 0,
            worker: 1,
            wall: Duration::from_millis(12),
            disposition: Disposition::Completed,
        };
        log.record_experiment(
            "figX",
            vec![RunLogRow::from_stats("figX", "p0".into(), &stats, None)],
            Duration::from_millis(20),
        );
        let csv = log.to_csv();
        assert!(csv.starts_with("experiment,label,index,worker,wall_ms,"));
        assert!(csv.contains("figX,p0,0,1,"));
        assert!(csv.contains("figX,(total),1,0,"));
        assert!(csv.contains("# jobs=4"));
        assert!(log
            .summary("figX")
            .contains("1 jobs (1 ok, 0 failed/skipped)"));
    }
}
