//! Bounded deterministic flow recovery: retry failed or invalid DoE points
//! through a fixed escalation ladder instead of losing sweep coverage.
//!
//! The paper's evaluation treats congested or broken P&R points as invalid
//! *data points*, not flow aborts. [`run_flow_resilient`] implements that
//! posture: a point that errors (signoff violation, infeasible floorplan,
//! even a panic) or comes back invalid (DRV ≥ 10) is retried up to
//! `FlowConfig::max_attempts` times, each retry escalating one rung:
//!
//! 1. **Baseline** — the configured point, untouched.
//! 2. **Extra reroute** — [`EXTRA_REROUTE_ROUNDS`] additional
//!    rip-up-and-reroute rounds.
//! 3. **Relax utilization** — one [`UTIL_RELAX_STEP`] down (clamped at
//!    [`UTIL_RELAX_FLOOR`]), keeping the extra rounds.
//! 4. **Perturb seed** — a SplitMix64 perturbation of the base seed,
//!    keeping the relaxation and extra rounds.
//!
//! Every rung is a pure function of the base config and the attempt index
//! — no wall-clock, no randomness outside the derived seed — so the same
//! `FlowConfig` (fault plan included) yields the same [`AttemptLog`] and
//! the same final outcome at any pool width. Relaxed-utilization successes
//! are flagged so sweep aggregation can keep them out of max-utilization
//! claims.

use crate::flow::{run_flow, FlowConfig, FlowError, FlowOutcome};
use ffet_cells::Library;
use ffet_netlist::Netlist;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Extra rip-up-and-reroute rounds added from the second attempt on.
pub const EXTRA_REROUTE_ROUNDS: u32 = 8;

/// Utilization decrement applied from the third attempt on.
pub const UTIL_RELAX_STEP: f64 = 0.04;

/// Utilization is never relaxed below this.
pub const UTIL_RELAX_FLOOR: f64 = 0.30;

/// Default `FlowConfig::max_attempts` (overridable via `FFET_MAX_ATTEMPTS`
/// / `--max-attempts`).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Environment variable overriding the attempt budget for the `repro`
/// driver.
pub const MAX_ATTEMPTS_ENV: &str = "FFET_MAX_ATTEMPTS";

/// The escalation rung an attempt ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryRung {
    /// Attempt 0: the configured point as-is.
    Baseline,
    /// Attempt 1: extra rip-up-and-reroute rounds.
    ExtraReroute,
    /// Attempt 2: utilization relaxed one fixed step.
    RelaxUtilization,
    /// Attempts ≥ 3: seed perturbed (relaxation and extra rounds kept).
    PerturbSeed,
}

impl std::fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryRung::Baseline => "baseline",
            RecoveryRung::ExtraReroute => "extra-reroute",
            RecoveryRung::RelaxUtilization => "relax-utilization",
            RecoveryRung::PerturbSeed => "perturb-seed",
        })
    }
}

/// What one attempt ran with and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Attempt index (0 = baseline).
    pub attempt: u32,
    /// Escalation rung.
    pub rung: RecoveryRung,
    /// Seed the attempt ran with.
    pub seed: u64,
    /// Utilization the attempt ran with.
    pub utilization: f64,
    /// Extra reroute rounds the attempt ran with.
    pub extra_reroute_rounds: u32,
    /// `valid`, `invalid (drv N)`, `error: …`, `panicked: …`, or
    /// `timeout(stage)`.
    pub outcome: String,
}

/// The attempt-by-attempt history of one resilient point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttemptLog {
    /// One record per executed attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Final disposition of a resilient point, as reported in `runlog.csv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointDisposition {
    /// Valid on the first attempt.
    Clean,
    /// Valid after `n` extra attempts.
    Recovered(u32),
    /// Still failed or invalid after `n` extra attempts.
    Failed(u32),
}

impl PointDisposition {
    /// Single-cell rendering for the run-log CSV.
    #[must_use]
    pub fn to_cell(&self) -> String {
        match self {
            PointDisposition::Clean => "clean".to_owned(),
            PointDisposition::Recovered(n) => format!("recovered({n})"),
            PointDisposition::Failed(n) => format!("failed({n})"),
        }
    }

    /// Extra attempts beyond the baseline run.
    #[must_use]
    pub fn extra_attempts(&self) -> u32 {
        match self {
            PointDisposition::Clean => 0,
            PointDisposition::Recovered(n) | PointDisposition::Failed(n) => *n,
        }
    }
}

/// Compact recovery summary of one point (rides next to the report).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointRecovery {
    /// Final disposition.
    pub disposition: PointDisposition,
    /// Attempts executed (≥ 1).
    pub attempts: u32,
    /// Whether the returned outcome ran at a relaxed utilization — such
    /// points must not count toward max-utilization claims.
    pub relaxed: bool,
}

/// Everything [`run_flow_resilient`] produced.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The final outcome: the first valid attempt, else the best invalid
    /// attempt (fewest DRVs), else the last error.
    pub outcome: Result<FlowOutcome, FlowError>,
    /// Per-attempt history.
    pub log: AttemptLog,
    /// Final disposition + attempt count.
    pub recovery: PointRecovery,
}

/// Why a resilient point produced no flow outcome at all (every attempt
/// errored); carried through the DoE pool as the job error.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// The last attempt's error.
    pub error: FlowError,
    /// Attempts executed.
    pub attempts: u32,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "after {} attempt(s): {}", self.attempts, self.error)
    }
}

impl std::error::Error for PointFailure {}

/// The exact config attempt `attempt` runs with, and its rung. Pure in
/// `(base, attempt)` — the determinism anchor of the ladder.
#[must_use]
pub fn config_for_attempt(base: &FlowConfig, attempt: u32) -> (FlowConfig, RecoveryRung) {
    let mut cfg = base.clone();
    cfg.fault_plan.attempt = attempt;
    if attempt >= 1 {
        cfg.extra_reroute_rounds = base.extra_reroute_rounds + EXTRA_REROUTE_ROUNDS;
    }
    if attempt >= 2 {
        cfg.utilization = (base.utilization - UTIL_RELAX_STEP).max(UTIL_RELAX_FLOOR);
    }
    if attempt >= 3 {
        cfg.seed = perturb_seed(base.seed, attempt);
    }
    let rung = match attempt {
        0 => RecoveryRung::Baseline,
        1 => RecoveryRung::ExtraReroute,
        2 => RecoveryRung::RelaxUtilization,
        _ => RecoveryRung::PerturbSeed,
    };
    (cfg, rung)
}

/// SplitMix64 finalizer over `base ^ attempt` — a full-avalanche, seed-
/// derived perturbation (never 0-mapped back to `base` in practice).
fn perturb_seed(base: u64, attempt: u32) -> u64 {
    let mut z = base ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `run_flow` with up to `base.max_attempts` attempts through the
/// escalation ladder, catching per-attempt panics. Returns the first valid
/// outcome (`Clean`/`Recovered`); on exhaustion, the best invalid outcome
/// (fewest DRVs, earliest attempt) or the last error, marked `Failed`.
/// Sweep tables keep their rows either way.
pub fn run_flow_resilient(
    netlist: &Netlist,
    library: &Library,
    base: &FlowConfig,
) -> ResilientOutcome {
    let max_attempts = base.max_attempts.max(1);
    let mut log = AttemptLog::default();
    let mut best_invalid: Option<(FlowOutcome, bool)> = None;
    let mut last_error: Option<FlowError> = None;

    for attempt in 0..max_attempts {
        let (cfg, rung) = config_for_attempt(base, attempt);
        let relaxed = cfg.utilization < base.utilization;
        let mut attempt_span = ffet_obs::span("flow.attempt")
            .attr("attempt", attempt)
            .attr("rung", rung.to_string())
            .attr("seed", cfg.seed.to_string())
            .attr("utilization", cfg.utilization);
        ffet_obs::counter_add("recover.attempts", 1);
        let result = match catch_unwind(AssertUnwindSafe(|| run_flow(netlist, library, &cfg))) {
            Ok(r) => r,
            Err(payload) => Err(FlowError::Panicked(crate::runner::panic_message(
                payload.as_ref(),
            ))),
        };
        let outcome_cell = match &result {
            Ok(o) if o.report.valid => "valid".to_owned(),
            Ok(o) => format!("invalid (drv {})", o.report.drv),
            Err(FlowError::Panicked(m)) => format!("panicked: {m}"),
            Err(FlowError::Timeout(stage)) => {
                ffet_obs::counter_add("recover.timeout", 1);
                format!("timeout({stage})")
            }
            Err(e) => format!("error: {e}"),
        };
        attempt_span.set_attr("outcome", outcome_cell.as_str());
        attempt_span.close();
        log.attempts.push(AttemptRecord {
            attempt,
            rung,
            seed: cfg.seed,
            utilization: cfg.utilization,
            extra_reroute_rounds: cfg.extra_reroute_rounds,
            outcome: outcome_cell,
        });
        match result {
            Ok(outcome) if outcome.report.valid => {
                let disposition = if attempt == 0 {
                    ffet_obs::counter_add("recover.clean", 1);
                    PointDisposition::Clean
                } else {
                    ffet_obs::counter_add("recover.recovered", 1);
                    PointDisposition::Recovered(attempt)
                };
                return ResilientOutcome {
                    outcome: Ok(outcome),
                    log,
                    recovery: PointRecovery {
                        disposition,
                        attempts: attempt + 1,
                        relaxed,
                    },
                };
            }
            Ok(outcome) => {
                let better = best_invalid
                    .as_ref()
                    .is_none_or(|(b, _)| outcome.report.drv < b.report.drv);
                if better {
                    best_invalid = Some((outcome, relaxed));
                }
            }
            Err(e) => last_error = Some(e),
        }
    }

    ffet_obs::counter_add("recover.failed", 1);
    let recovery = |relaxed| PointRecovery {
        disposition: PointDisposition::Failed(max_attempts - 1),
        attempts: max_attempts,
        relaxed,
    };
    match best_invalid {
        Some((outcome, relaxed)) => ResilientOutcome {
            outcome: Ok(outcome),
            log,
            recovery: recovery(relaxed),
        },
        None => ResilientOutcome {
            // `max_attempts >= 1`, so the loop ran and either banked a
            // best-invalid outcome (handled above) or recorded an error;
            // an absent error here can only be a ladder bug — surface it
            // as a config-class failure instead of panicking.
            outcome: Err(last_error.unwrap_or_else(|| {
                FlowError::Config("recovery ladder finished without an outcome".to_owned())
            })),
            log,
            recovery: recovery(false),
        },
    }
}

/// `max_attempts` from `FFET_MAX_ATTEMPTS`, defaulting (and clamping bad
/// values) to [`DEFAULT_MAX_ATTEMPTS`].
#[must_use]
pub fn max_attempts_from_env() -> u32 {
    std::env::var(MAX_ATTEMPTS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_MAX_ATTEMPTS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::TechKind;

    #[test]
    fn ladder_is_monotone_and_bounded() {
        let base = FlowConfig::baseline(TechKind::Ffet3p5t);
        let (a0, r0) = config_for_attempt(&base, 0);
        assert_eq!(r0, RecoveryRung::Baseline);
        assert_eq!(a0, {
            let mut b = base.clone();
            b.fault_plan.attempt = 0;
            b
        });

        let (a1, r1) = config_for_attempt(&base, 1);
        assert_eq!(r1, RecoveryRung::ExtraReroute);
        assert_eq!(a1.extra_reroute_rounds, EXTRA_REROUTE_ROUNDS);
        assert_eq!(a1.utilization, base.utilization);
        assert_eq!(a1.seed, base.seed);

        let (a2, r2) = config_for_attempt(&base, 2);
        assert_eq!(r2, RecoveryRung::RelaxUtilization);
        assert!(a2.utilization < base.utilization);
        assert_eq!(a2.seed, base.seed);

        let (a3, r3) = config_for_attempt(&base, 3);
        assert_eq!(r3, RecoveryRung::PerturbSeed);
        assert_ne!(a3.seed, base.seed);
        // The relaxation is a single fixed step, not cumulative.
        assert_eq!(a3.utilization, a2.utilization);
    }

    #[test]
    fn relaxation_clamps_at_floor() {
        let mut base = FlowConfig::baseline(TechKind::Ffet3p5t);
        base.utilization = UTIL_RELAX_FLOOR + 0.01;
        let (cfg, _) = config_for_attempt(&base, 2);
        assert_eq!(cfg.utilization, UTIL_RELAX_FLOOR);
    }

    #[test]
    fn perturbed_seeds_are_distinct_per_attempt() {
        let s3 = perturb_seed(42, 3);
        let s4 = perturb_seed(42, 4);
        assert_ne!(s3, 42);
        assert_ne!(s4, 42);
        assert_ne!(s3, s4);
        // And deterministic.
        assert_eq!(s3, perturb_seed(42, 3));
    }

    #[test]
    fn disposition_cells_render() {
        assert_eq!(PointDisposition::Clean.to_cell(), "clean");
        assert_eq!(PointDisposition::Recovered(2).to_cell(), "recovered(2)");
        assert_eq!(PointDisposition::Failed(2).to_cell(), "failed(2)");
        assert_eq!(PointDisposition::Clean.extra_attempts(), 0);
        assert_eq!(PointDisposition::Failed(2).extra_attempts(), 2);
    }
}
