//! Crash-safe checkpointing: atomic artifact writes, a content-addressed
//! checkpoint store, and a checksummed write-ahead journal with torn-write
//! recovery.
//!
//! The sweep driver (`repro`) journals one record per completed experiment.
//! A record points at a content-addressed blob in the store holding
//! everything needed to replay the experiment's artifacts byte-for-byte
//! (table CSV, runlog rows, trace fragment). `repro --resume` consults the
//! journal and skips experiments whose records validate, so a run killed at
//! an arbitrary point resumes to artifacts byte-identical to an
//! uninterrupted run (DESIGN §12 extends the §7 determinism contract to
//! interrupted runs).
//!
//! Durability posture:
//!
//! - **Every tracked artifact is written atomically** ([`atomic_write`]:
//!   sibling tmp file + `rename`), so a mid-write kill can never leave a
//!   half-written tracked file — at worst an orphan `*.tmp`.
//! - **The journal is append-only** with one checksummed single-line record
//!   per entry. [`Journal::recover`] validates every line and discards the
//!   corrupt trailing region (a torn append) while keeping the valid
//!   prefix; discarding rewrites the journal atomically.
//! - **Store blobs are self-verifying**: the address *is* the FNV-1a hash
//!   of the body, so [`Store::get`] re-hashes on read and treats a mismatch
//!   as absent (a stale or corrupt blob forces recompute, never replay of
//!   bad data).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Journal schema version; bumped on any incompatible record change.
pub const JOURNAL_VERSION: &str = "v1";

/// Default checkpoint directory, relative to the run's working directory.
pub const CKPT_DIR: &str = "results/ckpt";

/// Journal file name inside [`CKPT_DIR`].
pub const JOURNAL_FILE: &str = "journal.jsonl";

// The FNV-1a content-addressing/checksum primitive is shared with the
// cross-run ledger and lives in `ffet-obs` (the dependency arrow points
// core -> obs); re-exported here so every historical `ckpt::fnv1a64`
// call site keeps compiling.
pub use ffet_obs::{fnv1a64, hash_hex};

/// Hash of everything that changes experiment *outputs*: design, recovery
/// budget, fault plan, deadline, and the payload schema version. Worker
/// counts (`FFET_JOBS`/`FFET_ROUTE_JOBS`) are deliberately excluded — the
/// §7 determinism contract makes outputs identical across widths, so a
/// sweep may be resumed (and its ledger entries compared) under a
/// different parallelism. Shared by the journal's replay matching and the
/// performance ledger's baseline matching (DESIGN §12.3, §13).
#[must_use]
pub fn config_signature(design: crate::experiments::DesignKind) -> String {
    let sig = format!(
        "ckpt-{JOURNAL_VERSION}|design={design:?}|max_attempts={}|faults={}|deadline={}",
        std::env::var(crate::MAX_ATTEMPTS_ENV).unwrap_or_default(),
        std::env::var(crate::FAULTS_ENV).unwrap_or_default(),
        std::env::var(crate::DEADLINE_ENV).unwrap_or_default(),
    );
    hash_hex(fnv1a64(sig.as_bytes()))
}

/// Writes `bytes` to `path` atomically: the parent directory is created,
/// the body lands in a sibling `<name>.tmp`, and a `rename` publishes it.
/// Readers never observe a partially written file at `path`.
///
/// The tmp name is deterministic per target, so a crashed writer's orphan
/// is overwritten by the next attempt rather than accumulating.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write_via(path, bytes, ".tmp")
}

/// [`atomic_write`] with a writer-unique tmp name. Use when *concurrent
/// processes or threads* may publish the same target path: the shared
/// deterministic `.tmp` of [`atomic_write`] lets one writer rename another
/// writer's half-written sibling into place, whereas a pid+sequence-unique
/// sibling makes the final `rename` the only shared step — last writer wins
/// with a complete body. The stage cache publishes content-addressed blobs
/// this way (same address ⇒ same bytes, so any winner is correct).
pub fn atomic_write_unique(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    atomic_write_via(path, bytes, &format!(".{}-{seq}.tmp", std::process::id()))
}

fn atomic_write_via(path: &Path, bytes: &[u8], suffix: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(suffix);
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?; // ffet-analyze: allow(R002) -- the atomic-write primitive itself; the tmp file is renamed over the target below
    fs::rename(&tmp, path)
}

/// Content-addressed blob store under a checkpoint directory. The address
/// of a blob is the FNV-1a hash of its body, so `get` can verify integrity
/// without any side metadata.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// A store rooted at `root` (usually [`CKPT_DIR`]). Nothing is created
    /// until the first `put`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Store { root: root.into() }
    }

    fn blob_path(&self, addr: &str) -> PathBuf {
        self.root.join(format!("{addr}.blob"))
    }

    /// Stores `body` and returns its address. Idempotent: an existing blob
    /// with the same address is left untouched (content-addressing makes
    /// the write a no-op re-publish of identical bytes anyway).
    pub fn put(&self, body: &str) -> std::io::Result<String> {
        let addr = hash_hex(fnv1a64(body.as_bytes()));
        let path = self.blob_path(&addr);
        if !path.exists() {
            atomic_write(&path, body.as_bytes())?;
        }
        Ok(addr)
    }

    /// Fetches the blob at `addr`, verifying its content hash. Returns
    /// `None` if the blob is absent *or* fails verification — a corrupt
    /// blob is indistinguishable from a cache miss, forcing recompute.
    #[must_use]
    pub fn get(&self, addr: &str) -> Option<String> {
        let body = fs::read_to_string(self.blob_path(addr)).ok()?;
        if hash_hex(fnv1a64(body.as_bytes())) == addr {
            Some(body)
        } else {
            ffet_obs::counter_add("ckpt.store.corrupt", 1);
            None
        }
    }
}

/// Fault injected into [`Journal::append`] — the hook the `ckpt-torn-write`
/// and `ckpt-stale` fault kinds use to exercise recovery deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JournalFault {
    /// Append normally.
    #[default]
    None,
    /// Write a truncated record with no trailing newline — the on-disk
    /// shape of a process killed mid-append.
    TornWrite,
    /// Write a record whose checksum does not match its body — the shape
    /// of silent corruption or a schema drift.
    StaleHash,
}

/// One validated journal record: experiment `key`, config-hash `cfg`, and
/// the store address `blob` of its replay payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Experiment name (e.g. `fig8`).
    pub key: String,
    /// Deterministic hash of everything that shapes the experiment's
    /// output (design, fault plan, attempt budget, schema version…).
    pub cfg: String,
    /// Store address of the replay payload.
    pub blob: String,
}

/// Write-ahead journal: `v1 <crc16hex> <single-line-json>` per record.
/// The checksum covers the JSON body exactly.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Valid records, in append order.
    pub records: Vec<JournalRecord>,
    /// Lines discarded on recovery because the record was torn (no
    /// trailing newline on the final chunk).
    pub torn: usize,
    /// Lines discarded on recovery because the checksum or schema did not
    /// validate.
    pub corrupt: usize,
}

impl Journal {
    /// Renders one record line (including the trailing newline).
    fn render_line(key: &str, cfg: &str, blob: &str) -> String {
        let body = format!(
            "{{\"key\":{},\"cfg\":{},\"blob\":{}}}",
            json_str(key),
            json_str(cfg),
            json_str(blob)
        );
        let crc = hash_hex(fnv1a64(body.as_bytes()));
        format!("{JOURNAL_VERSION} {crc} {body}\n")
    }

    /// Parses one newline-stripped line into a record, validating version
    /// and checksum.
    fn parse_line(line: &str) -> Option<JournalRecord> {
        let rest = line.strip_prefix(JOURNAL_VERSION)?.strip_prefix(' ')?;
        let (crc, body) = rest.split_once(' ')?;
        if hash_hex(fnv1a64(body.as_bytes())) != crc {
            return None;
        }
        let json = ffet_obs::parse_json(body).ok()?;
        let obj = match &json {
            ffet_obs::Json::Obj(pairs) => pairs,
            _ => return None,
        };
        let field = |name: &str| -> Option<String> {
            obj.iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| match v {
                    ffet_obs::Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
        };
        Some(JournalRecord {
            key: field("key")?,
            cfg: field("cfg")?,
            blob: field("blob")?,
        })
    }

    /// Loads and validates the journal at `path`, discarding the corrupt
    /// or torn trailing region. If anything was discarded, the valid
    /// prefix is rewritten atomically so a later append starts from a
    /// clean file. A missing journal recovers to empty.
    pub fn recover(path: &Path) -> std::io::Result<Journal> {
        let mut span = ffet_obs::span("ckpt.recover");
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                span.close();
                return Err(e);
            }
        };
        let mut journal = Journal::default();
        let mut valid_len = 0usize;
        let mut rest = text.as_str();
        let mut offset = 0usize;
        while !rest.is_empty() {
            let Some(nl) = rest.find('\n') else {
                // Trailing chunk without a newline: a torn append.
                journal.torn += 1;
                break;
            };
            let line = &rest[..nl];
            match Journal::parse_line(line) {
                Some(rec) => {
                    journal.records.push(rec);
                    valid_len = offset + nl + 1;
                }
                None => {
                    // A corrupt record invalidates everything after it —
                    // append order is the replay order, so a hole cannot
                    // be skipped over.
                    journal.corrupt += 1;
                    break;
                }
            }
            offset += nl + 1;
            rest = &rest[nl + 1..];
        }
        let discarded_tail = text.len() > valid_len;
        if journal.torn == 0 && journal.corrupt == 0 && !discarded_tail {
            ffet_obs::counter_add("ckpt.journal.replays", journal.records.len() as i64);
        } else {
            ffet_obs::counter_add("ckpt.journal.torn", journal.torn as i64);
            ffet_obs::counter_add("ckpt.journal.stale", journal.corrupt as i64);
            ffet_obs::counter_add("ckpt.journal.replays", journal.records.len() as i64);
            if path.exists() {
                atomic_write(path, &text.as_bytes()[..valid_len])?;
            }
        }
        span.set_attr("records", journal.records.len() as i64);
        span.set_attr("torn", journal.torn as i64);
        span.set_attr("corrupt", journal.corrupt as i64);
        span.close();
        Ok(journal)
    }

    /// Appends one record to the journal at `path` (creating parents as
    /// needed), honoring an injected [`JournalFault`]. The append is a
    /// single `write_all` of one line; `TornWrite` truncates the line and
    /// drops the newline, `StaleHash` corrupts the checksum.
    pub fn append(
        &mut self,
        path: &Path,
        key: &str,
        cfg: &str,
        blob: &str,
        fault: JournalFault,
    ) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let line = Journal::render_line(key, cfg, blob);
        let payload = match fault {
            JournalFault::None => line.clone(),
            JournalFault::TornWrite => {
                // Half the record, no newline: the on-disk shape of a kill
                // mid-append.
                line[..line.len() / 2].to_owned()
            }
            JournalFault::StaleHash => line.replacen(' ', " 0000000000000000 ", 1),
        };
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(payload.as_bytes())?;
        ffet_obs::counter_add("ckpt.journal.appends", 1);
        if fault == JournalFault::None {
            self.records.push(JournalRecord {
                key: key.to_owned(),
                cfg: cfg.to_owned(),
                blob: blob.to_owned(),
            });
        }
        Ok(())
    }

    /// The last record matching `key` + `cfg`, if any. Last-wins so a
    /// re-run after a config change (different `cfg`) never replays stale
    /// data, and a re-journaled experiment supersedes its earlier record.
    #[must_use]
    pub fn lookup(&self, key: &str, cfg: &str) -> Option<&JournalRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.key == key && r.cfg == cfg)
    }

    /// Removes the journal at `path` (fresh, non-resume runs start clean
    /// so `--resume` semantics stay unambiguous). Missing file is fine.
    pub fn reset(path: &Path) -> std::io::Result<()> {
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

// --- experiment payload blobs (schema v1, DESIGN §12) ---

/// Serializes one completed experiment's outputs as the checkpoint payload
/// blob: `{"v":1,"experiment":…,"csv":…,"runlog":[…],"trace":…}`. The blob
/// is everything `--resume` needs to replay the experiment's artifacts
/// byte-for-byte without recomputing it.
#[must_use]
pub fn payload_json(
    name: &str,
    csv: &str,
    rows: &[crate::runner::RunLogRow],
    trace: &str,
) -> String {
    ffet_obs::Json::Obj(vec![
        ("v".to_owned(), ffet_obs::Json::Int(1)),
        (
            "experiment".to_owned(),
            ffet_obs::Json::Str(name.to_owned()),
        ),
        ("csv".to_owned(), ffet_obs::Json::Str(csv.to_owned())),
        (
            "runlog".to_owned(),
            ffet_obs::Json::Arr(rows.iter().map(row_json).collect()),
        ),
        ("trace".to_owned(), ffet_obs::Json::Str(trace.to_owned())),
    ])
    .render()
}

fn stages_json(s: &crate::flow::StageTimes) -> ffet_obs::Json {
    ffet_obs::Json::Obj(vec![
        ("synth_ms".to_owned(), ffet_obs::Json::Num(s.synth_ms)),
        ("pnr_ms".to_owned(), ffet_obs::Json::Num(s.pnr_ms)),
        ("merge_ms".to_owned(), ffet_obs::Json::Num(s.merge_ms)),
        ("signoff_ms".to_owned(), ffet_obs::Json::Num(s.signoff_ms)),
        ("rcx_ms".to_owned(), ffet_obs::Json::Num(s.rcx_ms)),
        ("sta_ms".to_owned(), ffet_obs::Json::Num(s.sta_ms)),
    ])
}

fn row_json(r: &crate::runner::RunLogRow) -> ffet_obs::Json {
    ffet_obs::Json::Obj(vec![
        (
            "experiment".to_owned(),
            ffet_obs::Json::Str(r.experiment.clone()),
        ),
        ("label".to_owned(), ffet_obs::Json::Str(r.label.clone())),
        ("index".to_owned(), ffet_obs::Json::Int(r.index as i64)),
        ("worker".to_owned(), ffet_obs::Json::Int(r.worker as i64)),
        ("wall_ms".to_owned(), ffet_obs::Json::Num(r.wall_ms)),
        (
            "stages".to_owned(),
            r.stages.as_ref().map_or(ffet_obs::Json::Null, stages_json),
        ),
        (
            "attempts".to_owned(),
            ffet_obs::Json::Int(i64::from(r.attempts)),
        ),
        (
            "disposition".to_owned(),
            ffet_obs::Json::Str(r.disposition.clone()),
        ),
    ])
}

fn stages_from_json(j: &ffet_obs::Json) -> Option<crate::flow::StageTimes> {
    Some(crate::flow::StageTimes {
        synth_ms: j.get("synth_ms")?.as_f64()?,
        pnr_ms: j.get("pnr_ms")?.as_f64()?,
        merge_ms: j.get("merge_ms")?.as_f64()?,
        signoff_ms: j.get("signoff_ms")?.as_f64()?,
        rcx_ms: j.get("rcx_ms")?.as_f64()?,
        sta_ms: j.get("sta_ms")?.as_f64()?,
    })
}

fn row_from_json(j: &ffet_obs::Json) -> Option<crate::runner::RunLogRow> {
    let stages = match j.get("stages")? {
        ffet_obs::Json::Null => None,
        s => Some(stages_from_json(s)?),
    };
    Some(crate::runner::RunLogRow {
        experiment: j.get("experiment")?.as_str()?.to_owned(),
        label: j.get("label")?.as_str()?.to_owned(),
        index: usize::try_from(j.get("index")?.as_i64()?).ok()?,
        worker: usize::try_from(j.get("worker")?.as_i64()?).ok()?,
        wall_ms: j.get("wall_ms")?.as_f64()?,
        stages,
        attempts: u32::try_from(j.get("attempts")?.as_i64()?).ok()?,
        disposition: j.get("disposition")?.as_str()?.to_owned(),
    })
}

/// Renders the per-point trace fragment for one experiment. Fragments carry
/// no global header, so concatenating per-experiment fragments in sweep
/// order reproduces `trace.jsonl` byte-identically.
#[must_use]
pub fn trace_fragment(traces: &[ffet_obs::LabeledPoint]) -> String {
    let mut frag = ffet_obs::RunArtifacts::new(0);
    frag.extend(traces.iter().cloned());
    frag.trace_jsonl()
}

/// A checkpoint payload decoded back into the exact outputs the original
/// run produced. Any schema mismatch returns `None` and the caller
/// recomputes from scratch.
pub struct ReplayedExperiment {
    pub csv: String,
    pub rows: Vec<crate::runner::RunLogRow>,
    pub traces: Vec<ffet_obs::LabeledPoint>,
}

/// Validates and decodes a payload blob for experiment `name`.
#[must_use]
pub fn parse_payload(name: &str, body: &str) -> Option<ReplayedExperiment> {
    let json = ffet_obs::parse_json(body).ok()?;
    if json.get("v")?.as_i64()? != 1 || json.get("experiment")?.as_str()? != name {
        return None;
    }
    let csv = json.get("csv")?.as_str()?.to_owned();
    let rows = match json.get("runlog")? {
        ffet_obs::Json::Arr(items) => items
            .iter()
            .map(row_from_json)
            .collect::<Option<Vec<crate::runner::RunLogRow>>>()?,
        _ => return None,
    };
    let trace = json.get("trace")?.as_str()?;
    // Group the fragment's lines by their (contiguous) point label first so
    // each point is parsed from only its own lines — `parse_point` against
    // the full fragment per label would be quadratic in sweep size.
    let mut groups: Vec<(String, String)> = Vec::new();
    for line in trace.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let label = ffet_obs::parse_json(line)
            .ok()?
            .get("point")?
            .as_str()?
            .to_owned();
        match groups.last_mut() {
            Some((last, buf)) if *last == label => {
                buf.push_str(line);
                buf.push('\n');
            }
            _ => groups.push((label, format!("{line}\n"))),
        }
    }
    let mut traces = Vec::new();
    for (label, body) in groups {
        let data = ffet_obs::parse_point(&body, &label).ok()?;
        traces.push(ffet_obs::LabeledPoint { label, data });
    }
    Some(ReplayedExperiment { csv, rows, traces })
}

/// Minimal JSON string escaping (mirrors ffet-obs's renderer so journal
/// bodies round-trip through [`ffet_obs::parse_json`]).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffet-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_hex(fnv1a64(b"a")), "af63dc4c8601ec8c");
    }

    #[test]
    fn atomic_write_publishes_and_overwrites() {
        let dir = scratch_dir("atomic");
        let path = dir.join("nested/out.csv");
        atomic_write(&path, b"one").expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "one");
        atomic_write(&path, b"two").expect("rewrite");
        assert_eq!(fs::read_to_string(&path).expect("read"), "two");
        // No orphan tmp after a clean write.
        assert!(!dir.join("nested/out.csv.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_roundtrips_and_rejects_corrupt_blobs() {
        let dir = scratch_dir("store");
        let store = Store::new(&dir);
        let addr = store.put("hello ckpt").expect("put");
        assert_eq!(store.get(&addr).as_deref(), Some("hello ckpt"));
        // Idempotent put.
        assert_eq!(store.put("hello ckpt").expect("put"), addr);
        // Corrupt the blob in place: get must miss, not return bad data.
        fs::write(dir.join(format!("{addr}.blob")), "tampered").expect("tamper");
        assert_eq!(store.get(&addr), None);
        assert_eq!(store.get("doesnotexist"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_append_recover_roundtrip() {
        let dir = scratch_dir("journal");
        let path = dir.join(JOURNAL_FILE);
        let mut j = Journal::default();
        j.append(&path, "fig8", "cfgA", "blob1", JournalFault::None)
            .expect("append");
        j.append(&path, "fig9", "cfgA", "blob2", JournalFault::None)
            .expect("append");
        let r = Journal::recover(&path).expect("recover");
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.torn, 0);
        assert_eq!(r.corrupt, 0);
        assert_eq!(
            r.lookup("fig9", "cfgA"),
            Some(&JournalRecord {
                key: "fig9".into(),
                cfg: "cfgA".into(),
                blob: "blob2".into(),
            })
        );
        assert_eq!(r.lookup("fig9", "cfgB"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_is_last_wins() {
        let dir = scratch_dir("lastwins");
        let path = dir.join(JOURNAL_FILE);
        let mut j = Journal::default();
        j.append(&path, "fig8", "cfgA", "old", JournalFault::None)
            .expect("append");
        j.append(&path, "fig8", "cfgA", "new", JournalFault::None)
            .expect("append");
        assert_eq!(
            j.lookup("fig8", "cfgA").map(|r| r.blob.as_str()),
            Some("new")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_and_file_repaired() {
        let dir = scratch_dir("torn");
        let path = dir.join(JOURNAL_FILE);
        let mut j = Journal::default();
        j.append(&path, "fig8", "cfgA", "blob1", JournalFault::None)
            .expect("append");
        j.append(&path, "fig9", "cfgA", "blob2", JournalFault::TornWrite)
            .expect("append torn");
        let r = Journal::recover(&path).expect("recover");
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.torn, 1);
        assert_eq!(r.records[0].key, "fig8");
        // The file was repaired: a second recovery is clean.
        let r2 = Journal::recover(&path).expect("recover again");
        assert_eq!(r2.records.len(), 1);
        assert_eq!(r2.torn, 0);
        assert_eq!(r2.corrupt, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_hash_invalidates_suffix() {
        let dir = scratch_dir("stale");
        let path = dir.join(JOURNAL_FILE);
        let mut j = Journal::default();
        j.append(&path, "fig8", "cfgA", "blob1", JournalFault::None)
            .expect("append");
        j.append(&path, "fig9", "cfgA", "blob2", JournalFault::StaleHash)
            .expect("append stale");
        j.append(&path, "fig10", "cfgA", "blob3", JournalFault::None)
            .expect("append");
        let r = Journal::recover(&path).expect("recover");
        // The corrupt record AND everything after it are discarded:
        // replay order must have no holes.
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.corrupt, 1);
        assert_eq!(r.records[0].key, "fig8");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_missing_is_empty_and_reset_is_idempotent() {
        let dir = scratch_dir("missing");
        let path = dir.join(JOURNAL_FILE);
        let r = Journal::recover(&path).expect("recover missing");
        assert!(r.records.is_empty());
        Journal::reset(&path).expect("reset missing");
        let mut j = Journal::default();
        j.append(&path, "k", "c", "b", JournalFault::None)
            .expect("append");
        Journal::reset(&path).expect("reset");
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_keys_escape_cleanly() {
        let dir = scratch_dir("escape");
        let path = dir.join(JOURNAL_FILE);
        let mut j = Journal::default();
        j.append(&path, "k\"ey\n", "c\\fg", "blob", JournalFault::None)
            .expect("append");
        let r = Journal::recover(&path).expect("recover");
        assert_eq!(r.records[0].key, "k\"ey\n");
        assert_eq!(r.records[0].cfg, "c\\fg");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_round_trips_rows_and_csv_exactly() {
        use crate::flow::StageTimes;
        use crate::runner::RunLogRow;
        let rows = vec![
            RunLogRow {
                experiment: "fig11".into(),
                label: "FM12BM12, BP 0.50".into(),
                index: 0,
                worker: 3,
                wall_ms: 12.625,
                stages: Some(StageTimes {
                    synth_ms: 1.5,
                    pnr_ms: 8.0,
                    merge_ms: 0.25,
                    signoff_ms: 1.125,
                    rcx_ms: 0.75,
                    sta_ms: 1.0,
                }),
                attempts: 2,
                disposition: "timeout(pnr)".into(),
            },
            RunLogRow {
                experiment: "fig11".into(),
                label: "(total)".into(),
                index: 1,
                worker: 0,
                wall_ms: 13.0,
                stages: None,
                attempts: 0,
                disposition: "ok".into(),
            },
        ];
        let csv = "a,b\n1,2\n";
        let body = payload_json("fig11", csv, &rows, "");
        let replayed = parse_payload("fig11", &body).expect("payload parses");
        assert_eq!(replayed.csv, csv);
        assert_eq!(replayed.rows.len(), 2);
        assert_eq!(replayed.rows[0].label, rows[0].label);
        assert_eq!(replayed.rows[0].wall_ms, rows[0].wall_ms);
        assert_eq!(
            replayed.rows[0].stages.map(|s| s.pnr_ms),
            rows[0].stages.map(|s| s.pnr_ms)
        );
        assert_eq!(replayed.rows[0].disposition, "timeout(pnr)");
        assert_eq!(replayed.rows[1].stages, None);
        assert!(replayed.traces.is_empty());
        // A payload for a different experiment or schema must be rejected.
        assert!(parse_payload("fig12", &body).is_none());
        assert!(parse_payload("fig11", &body.replacen("\"v\":1", "\"v\":2", 1)).is_none());
    }
}
