//! PPA report types shared by all experiments.

use ffet_tech::RoutingPattern;

/// The post-P&R, post-extraction PPA of one flow run — one data point of
/// the paper's evaluation plots.
#[derive(Debug, Clone, PartialEq)]
pub struct PpaReport {
    /// Technology name (`3.5T FFET` / `4T CFET`).
    pub tech: String,
    /// Routing pattern used.
    pub pattern: RoutingPattern,
    /// Backside input-pin density (`BPy`).
    pub back_pin_ratio: f64,
    /// Synthesis target frequency, GHz.
    pub target_freq_ghz: f64,
    /// Requested placement utilization.
    pub utilization: f64,
    /// Core area, µm².
    pub core_area_um2: f64,
    /// Achieved (post-extraction) maximum frequency, GHz.
    pub achieved_freq_ghz: f64,
    /// Total power at the achieved frequency, mW.
    pub power_mw: f64,
    /// Leakage component, mW.
    pub leakage_mw: f64,
    /// Clock-network component, mW.
    pub clock_mw: f64,
    /// Total DRV count (routing overflow + placement violations).
    pub drv: u32,
    /// Whether the run passes the `<10 DRVs` validity rule.
    pub valid: bool,
    /// Warning-severity signoff violations (the static-verification view
    /// of the DRV proxy; error-severity findings abort the flow instead).
    pub signoff_warnings: u32,
    /// Signoff verdict for this run (`PASS`/`FAIL`). Always `PASS` on a
    /// report produced by `run_flow`, which errors out on `FAIL`.
    pub signoff: String,
    /// Total signal wirelength, mm.
    pub wirelength_mm: f64,
    /// Backside share of the wirelength, mm.
    pub back_wirelength_mm: f64,
    /// Total via count.
    pub vias: usize,
    /// Instance count after synthesis + CTS.
    pub cells: usize,
}

impl PpaReport {
    /// Power efficiency, GHz/mW (paper Fig. 13 metric).
    #[must_use]
    pub fn efficiency_ghz_per_mw(&self) -> f64 {
        self.achieved_freq_ghz / self.power_mw
    }

    /// One-line summary for experiment logs.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} {} BP{:.2} util {:.0}% target {:.2}GHz → {:.3}GHz, {:.3}mW, {:.1}µm², drv {}{}, signoff {} ({} warnings)",
            self.tech,
            self.pattern,
            self.back_pin_ratio,
            self.utilization * 100.0,
            self.target_freq_ghz,
            self.achieved_freq_ghz,
            self.power_mw,
            self.core_area_um2,
            self.drv,
            if self.valid { "" } else { " (INVALID)" },
            self.signoff,
            self.signoff_warnings,
        )
    }
}

/// Percentage difference helper used throughout the experiment tables:
/// `(new - base) / base` in percent.
#[must_use]
pub fn pct_diff(new: f64, base: f64) -> f64 {
    (new - base) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_signs() {
        assert!((pct_diff(1.25, 1.0) - 25.0).abs() < 1e-12);
        assert!((pct_diff(0.9, 1.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_validity() {
        let r = PpaReport {
            tech: "3.5T FFET".into(),
            pattern: RoutingPattern::new(6, 6).unwrap(),
            back_pin_ratio: 0.5,
            target_freq_ghz: 1.5,
            utilization: 0.76,
            core_area_um2: 100.0,
            achieved_freq_ghz: 2.0,
            power_mw: 4.0,
            leakage_mw: 0.1,
            clock_mw: 0.5,
            drv: 12,
            valid: false,
            signoff_warnings: 12,
            signoff: "PASS".into(),
            wirelength_mm: 1.0,
            back_wirelength_mm: 0.4,
            vias: 1000,
            cells: 5000,
        };
        assert!(r.summary().contains("INVALID"));
        assert!(r.summary().contains("signoff PASS"));
        assert!((r.efficiency_ghz_per_mw() - 0.5).abs() < 1e-12);
    }
}
