//! The end-to-end evaluation flow of the paper's Fig. 7: synthesis-lite →
//! floorplan → powerplan → placement → CTS → dual-sided routing → DEF merge
//! → dual-sided RC extraction → STA + power.

use crate::faults::{FaultPlan, FlowStage};
use crate::recover::max_attempts_from_env;
use crate::report::PpaReport;
use crate::runner::CancelToken;
use crate::synth::{synthesize, SynthConfig};
use ffet_cells::Library;
use ffet_geom::FxHashMap;
use ffet_lefdef::{merge_defs, Def};
use ffet_netlist::Netlist;
use ffet_pnr::{pin_position, run_pnr, PnrConfig, PnrError, PnrResult};
use ffet_rcx::{extract_net_with, NetParasitics};
use ffet_sta::{analyze_power, analyze_timing, StaConfig};
use ffet_tech::{RoutingPattern, TechKind, Technology};
use ffet_verify::{run_signoff, SignoffReport};

/// Full flow configuration — one DoE point.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Technology to implement in.
    pub tech: TechKind,
    /// Routing-layer pattern (`FMnBMm`).
    pub pattern: RoutingPattern,
    /// Backside input-pin density (`BPy` of the DoEs); 0.0 for CFET and
    /// for single-sided FFET runs.
    pub back_pin_ratio: f64,
    /// Placement utilization target.
    pub utilization: f64,
    /// Die aspect ratio.
    pub aspect_ratio: f64,
    /// Synthesis target frequency, GHz.
    pub target_freq_ghz: f64,
    /// Switching activity for power analysis.
    pub activity: f64,
    /// Seed for every stochastic stage.
    pub seed: u64,
    /// Enable conventional bridging cells for nets longer than this placed
    /// HPWL (nm) — the ablation against Algorithm 1's redistributed pins.
    pub bridging_min_nm: Option<i64>,
    /// Additional rip-up-and-reroute rounds beyond the calibrated budget
    /// (0 in normal runs; raised by the recovery ladder).
    pub extra_reroute_rounds: u32,
    /// Attempt budget for [`crate::run_flow_resilient`] (≥ 1; plain
    /// [`run_flow`] ignores it).
    pub max_attempts: u32,
    /// Worker count for the router's batched rip-up rounds
    /// (`--route-jobs` / `FFET_ROUTE_JOBS`; 1 = fully inline). Intra-point
    /// parallelism, orthogonal to the DoE pool's `--jobs`: it changes
    /// wall-clock only, never an artifact byte.
    pub route_jobs: usize,
    /// Per-attempt wall-clock budget in milliseconds (`--deadline` /
    /// `FFET_DEADLINE`, in seconds). `None` (the default) never expires.
    /// Expiry is cooperative — checked at stage boundaries and inside the
    /// router's rip-up/batch loops — and surfaces as
    /// [`FlowError::Timeout`], which the recovery ladder retries with a
    /// fresh budget. Real expiry depends on the host's wall clock and is
    /// therefore outside the DESIGN §7 byte-identity contract; the
    /// `stage-timeout` fault forces the same paths deterministically.
    pub deadline_ms: Option<u64>,
    /// Seeded fault schedule (empty by default — the golden path).
    pub fault_plan: FaultPlan,
    /// Root directory of the content-addressed stage cache
    /// (`FFET_STAGE_CACHE` for drivers; DESIGN §14). `None` (the default
    /// outside the `repro` driver) runs every stage inline, byte-identical
    /// to the pre-cache flow. Like `route_jobs`/`deadline_ms` this knob
    /// never changes an artifact byte — a warm run rehydrates exactly what
    /// a cold run computes — so it is excluded from cache keys and
    /// checkpoint signatures. Ignored (forced off) when `fault_plan` is
    /// non-empty: faulted artifacts must never enter or leave the cache.
    pub stage_cache: Option<std::path::PathBuf>,
}

/// Environment variable carrying the router worker count for the `repro`
/// driver (`--route-jobs`). Unset or invalid → the DoE pool width
/// ([`crate::runner::JOBS_ENV`] / available parallelism).
pub const ROUTE_JOBS_ENV: &str = "FFET_ROUTE_JOBS";

/// The router worker count from `FFET_ROUTE_JOBS`, defaulting to the DoE
/// pool width (so a machine-wide `FFET_JOBS=1` also serializes the
/// router).
#[must_use]
pub fn route_jobs_from_env() -> usize {
    std::env::var(ROUTE_JOBS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            crate::runner::width_from(std::env::var(crate::runner::JOBS_ENV).ok().as_deref())
        })
}

/// Environment variable carrying the per-attempt deadline (in seconds,
/// fractional allowed) for the `repro` driver (`--deadline`).
pub const DEADLINE_ENV: &str = "FFET_DEADLINE";

/// The per-attempt deadline from `FFET_DEADLINE` (seconds → milliseconds),
/// or `None` when unset, unparsable, or non-positive.
#[must_use]
pub fn deadline_ms_from_env() -> Option<u64> {
    std::env::var(DEADLINE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .map(|s| (s * 1000.0).ceil() as u64)
}

impl FlowConfig {
    /// The paper's baseline configuration for a technology: 1.5 GHz
    /// target, 70% utilization, square die, maximal single-sided routing.
    #[must_use]
    pub fn baseline(tech: TechKind) -> FlowConfig {
        FlowConfig {
            tech,
            pattern: RoutingPattern::max_single_sided(),
            back_pin_ratio: 0.0,
            utilization: 0.7,
            // Narrower-than-square: the row-based placement makes block
            // wiring H-heavy while the alternating stack gives H only
            // ⌈n/2⌉ layers; the floorplan aspect balances the two (the
            // paper's floorplan stage sets utilization *and* aspect).
            aspect_ratio: 1.0,
            target_freq_ghz: 1.5,
            activity: 0.15,
            seed: 42,
            bridging_min_nm: None,
            extra_reroute_rounds: 0,
            // The driver-facing knobs (`--max-attempts` / `--route-jobs` /
            // `FFET_FAULTS`) enter here; experiment code sets the fields
            // directly.
            max_attempts: max_attempts_from_env(),
            route_jobs: route_jobs_from_env(),
            deadline_ms: deadline_ms_from_env(),
            fault_plan: FaultPlan::from_env(),
            stage_cache: crate::stagecache::root_from_env(),
        }
    }

    /// Builds the (possibly pin-redistributed) library for this config.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Config`] if `back_pin_ratio` is invalid for the
    /// technology (outside 0..=1, or nonzero on a stack without backside
    /// pins).
    pub fn build_library(&self) -> Result<Library, FlowError> {
        let tech = match self.tech {
            TechKind::Ffet3p5t => Technology::ffet_3p5t(),
            TechKind::Cfet4t => Technology::cfet_4t(),
        };
        let mut lib = Library::new(tech);
        if self.back_pin_ratio > 0.0 {
            lib.redistribute_input_pins(self.back_pin_ratio, self.seed)
                .map_err(|e| FlowError::Config(e.to_string()))?;
        }
        Ok(lib)
    }
}

/// Wall-clock breakdown of one flow run by Fig. 7 stage, in milliseconds.
///
/// Telemetry only: timings feed the DoE runner's `runlog.csv`, never the
/// experiment tables (which must stay byte-identical run to run).
///
/// This is the compatibility view of the flow's stage spans: since the
/// observability refactor the authoritative record is the `flow.*` span
/// tree in `results/trace.jsonl`; each field here is the `close_ms()` of
/// the corresponding span, so `runlog.csv` keeps its schema.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    /// Synthesis-lite (fanout buffering + drive sizing).
    pub synth_ms: f64,
    /// Physical implementation (floorplan → powerplan → place → CTS →
    /// dual-sided route).
    pub pnr_ms: f64,
    /// Dual-sided DEF merge.
    pub merge_ms: f64,
    /// Static signoff (lint + DRC + LVS-lite).
    pub signoff_ms: f64,
    /// RC extraction from the merged DEF.
    pub rcx_ms: f64,
    /// STA + power analysis.
    pub sta_ms: f64,
}

impl StageTimes {
    /// Sum of all stage timings, ms.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.synth_ms + self.pnr_ms + self.merge_ms + self.signoff_ms + self.rcx_ms + self.sta_ms
    }
}

/// Everything one flow run produced (report + artifacts for inspection).
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The PPA data point.
    pub report: PpaReport,
    /// The merged dual-sided DEF (paper §III.C).
    pub merged_def: Def,
    /// The raw P&R result.
    pub pnr: PnrResult,
    /// The full timing report (critical path and slack detail).
    pub timing: ffet_sta::TimingReport,
    /// Extracted parasitics, aligned to the (post-synthesis, post-CTS)
    /// netlist's nets.
    pub parasitics: Vec<Option<NetParasitics>>,
    /// Static signoff over the finished implementation (lint + DRC +
    /// LVS-lite). Always clean of errors when this outcome is returned;
    /// its warnings are the signoff view of the DRV proxy.
    pub signoff: SignoffReport,
    /// Wall-clock breakdown by stage (telemetry; varies run to run).
    pub stages: StageTimes,
}

impl FlowOutcome {
    /// Serializes the extracted parasitics as SPEF text (the artifact the
    /// paper's StarRC stage hands to STA).
    #[must_use]
    pub fn write_spef(&self) -> String {
        let nets: Vec<NetParasitics> = self.parasitics.iter().flatten().cloned().collect();
        ffet_rcx::write_spef(&self.report.tech, &nets)
    }
}

/// Error from [`run_flow`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The configuration itself is invalid for the technology (bad DoE
    /// pin ratio, backside pins on a stack without them).
    Config(String),
    /// Synthesis-lite failed structurally (the library lacks a cell the
    /// transform relies on — a malformed library, not a design property).
    Synth(String),
    /// Physical implementation failed structurally.
    Pnr(PnrError),
    /// The netlist has a combinational loop.
    CombLoop(String),
    /// The two side DEFs did not merge (internal invariant).
    Merge(String),
    /// Static signoff found error-severity violations (opens, LVS
    /// mismatches, illegal layers…). Carries the full structured report so
    /// recovery logic and tests can match on rule ids.
    Signoff(SignoffReport),
    /// The flow panicked; caught and carried by
    /// [`crate::run_flow_resilient`] (plain [`run_flow`] propagates).
    Panicked(String),
    /// The per-attempt deadline expired (or a `stage-timeout` fault forced
    /// expiry) at the named stage. Recoverable: the ladder retries with a
    /// fresh budget, and `runlog.csv` renders it as `timeout(stage)`.
    Timeout(String),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Config(e) => write!(f, "invalid flow config: {e}"),
            FlowError::Synth(e) => write!(f, "synthesis: {e}"),
            FlowError::Pnr(e) => write!(f, "physical implementation: {e}"),
            FlowError::CombLoop(i) => write!(f, "combinational loop through {i}"),
            FlowError::Merge(e) => write!(f, "DEF merge: {e}"),
            FlowError::Signoff(report) => {
                let rules: Vec<String> = report
                    .rule_counts()
                    .into_iter()
                    .filter(|(_, sev, _)| *sev == ffet_verify::Severity::Error)
                    .map(|(rule, _, n)| format!("{rule}×{n}"))
                    .collect();
                write!(
                    f,
                    "signoff failed: {} error(s) [{}]",
                    report.error_count(),
                    rules.join(", ")
                )
            }
            FlowError::Panicked(m) => write!(f, "flow panicked: {m}"),
            FlowError::Timeout(stage) => write!(f, "deadline exceeded at {stage} stage"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<PnrError> for FlowError {
    fn from(e: PnrError) -> FlowError {
        FlowError::Pnr(e)
    }
}

/// Runs the complete flow on (a clone of) `netlist` under `library`.
///
/// The library must come from [`FlowConfig::build_library`] (or otherwise
/// match `config.tech` and `config.back_pin_ratio`).
///
/// The body is an explicit stage DAG ([`crate::stagecache::Stage`]): each
/// stage runs through [`crate::stagecache::run_stage`], which either
/// replays a memoized artifact (when `config.stage_cache` is set and the
/// stage's input key hits) or computes it inline. With the cache off the
/// event stream and artifacts are byte-identical to the pre-cache flow;
/// with it on, only wall clock and the `cached` span attribute change.
///
/// # Errors
///
/// [`FlowError`] on structural failures. Congestion/placement violations
/// are *not* errors: they surface as `report.drv` / `report.valid`,
/// matching the paper's treatment of invalid P&R results.
pub fn run_flow(
    netlist: &Netlist,
    library: &Library,
    config: &FlowConfig,
) -> Result<FlowOutcome, FlowError> {
    use crate::stagecache::{self, run_stage, StageCache};

    let mut stages = StageTimes::default();
    let faults = &config.fault_plan;

    // The stage cache is forcibly off under any fault plan: faulted or
    // recovery-perturbed artifacts must never enter it, and fault-injected
    // panics must unwind the plain inline path.
    let cache: Option<StageCache> = if faults.is_empty() {
        config.stage_cache.as_deref().map(StageCache::new)
    } else {
        None
    };
    let cache = cache.as_ref();

    // Deadline watchdog: one cooperative token per attempt (the ladder
    // retries a timed-out point with a fresh budget). A `stage-timeout`
    // fault expires *at its named stage*, deterministically at any pool
    // width; a real `FFET_DEADLINE` budget expires wherever the wall
    // clock says it does.
    let timeout_fault = faults.timeout_stage();
    let deadline = CancelToken::with_deadline_ms(config.deadline_ms);
    let check_deadline = |stage: FlowStage| -> Result<(), FlowError> {
        if timeout_fault == Some(stage) || deadline.cancelled() {
            ffet_obs::counter_add("flow.timeout", 1);
            return Err(FlowError::Timeout(stage.to_string()));
        }
        Ok(())
    };

    // Root span for the whole point. Declared first so that on an early
    // return it drops (and records) after every stage span. Seeds are
    // stringified: perturbed recovery seeds can exceed `i64`.
    let root = ffet_obs::span("flow")
        .attr("tech", format!("{:?}", config.tech))
        .attr("pattern", config.pattern.to_string())
        .attr("back_pin_ratio", config.back_pin_ratio)
        .attr("utilization", config.utilization)
        .attr("target_freq_ghz", config.target_freq_ghz)
        .attr("seed", config.seed.to_string());
    ffet_obs::counter_add("flow.runs", 1);

    // Synthesis-lite toward the target frequency. The key omits
    // `back_pin_ratio` and `seed` (synthesis never sees pin geometry), so
    // every point of a BP/seed axis shares one entry.
    let synth_cache_key = cache.map(|_| stagecache::synth_key(config, netlist));
    let (netlist, synth_ms, synth_addr) = run_stage::<_, FlowError>(
        cache,
        synth_cache_key,
        stagecache::Stage::Synth.name(),
        stagecache::encode_synth,
        stagecache::decode_synth,
        || {
            let mut netlist = netlist.clone();
            let sp = ffet_obs::span("flow.synth");
            synthesize(
                &mut netlist,
                library,
                &SynthConfig::for_target(config.target_freq_ghz),
            )
            .map_err(FlowError::Synth)?;
            let ms = sp.close_ms();
            ffet_obs::gauge_set("flow.cells", netlist.instances().len() as f64);
            Ok((netlist, ms))
        },
    )?;
    stages.synth_ms = synth_ms;
    faults.maybe_panic(FlowStage::Synth);
    check_deadline(FlowStage::Synth)?;

    // Physical implementation (floorplan → powerplan → place → CTS →
    // dual-sided route). CTS mutates the netlist (clock buffers), so the
    // payload carries the post-CTS netlist alongside the P&R result.
    let pnr_config = PnrConfig {
        utilization: config.utilization,
        aspect_ratio: config.aspect_ratio,
        pattern: config.pattern,
        seed: config.seed,
        bridging_min_nm: config.bridging_min_nm,
        extra_reroute_rounds: config.extra_reroute_rounds,
        route_jobs: config.route_jobs,
        route_panic: faults.has_route_panic(),
        // The router polls this token at rip-up-round and batch
        // boundaries; a forced P&R timeout rides the same plumbing so the
        // deterministic fault exercises the real cancellation path.
        cancel: if timeout_fault == Some(FlowStage::Pnr) {
            CancelToken::forced()
        } else {
            deadline
        },
    };
    let pnr_cache_key = synth_addr
        .as_deref()
        .map(|a| stagecache::pnr_key(config, a));
    let ((mut netlist, mut pnr), pnr_ms, pnr_addr) = run_stage::<_, FlowError>(
        cache,
        pnr_cache_key,
        stagecache::Stage::Pnr.name(),
        stagecache::encode_pnr,
        stagecache::decode_pnr,
        || {
            let mut netlist = netlist;
            let sp = ffet_obs::span("flow.pnr");
            let pnr = match run_pnr(&mut netlist, library, &pnr_config) {
                Err(PnrError::Cancelled) => {
                    ffet_obs::counter_add("flow.timeout", 1);
                    return Err(FlowError::Timeout(FlowStage::Pnr.to_string()));
                }
                r => r?,
            };
            Ok(((netlist, pnr), sp.close_ms()))
        },
    )?;
    stages.pnr_ms = pnr_ms;
    faults.maybe_panic(FlowStage::Pnr);
    check_deadline(FlowStage::Pnr)?;
    if !faults.is_empty() {
        faults.apply_post_pnr(&mut netlist, &mut pnr, library, config.seed);
    }

    // DEF merge (paper: "we first merged the two DEFs into one DEF"). A
    // pure function of the two side DEFs, so the key is the pnr address
    // alone.
    let (mut merged_def, merge_ms, merge_addr) = run_stage::<_, FlowError>(
        cache,
        pnr_addr.as_deref().map(stagecache::merge_key),
        stagecache::Stage::Merge.name(),
        stagecache::encode_merge,
        stagecache::decode_merge,
        || {
            let sp = ffet_obs::span("flow.merge");
            let merged = merge_defs(&pnr.front_def, &pnr.back_def)
                .map_err(|e| FlowError::Merge(e.to_string()))?;
            Ok((merged, sp.close_ms()))
        },
    )?;
    stages.merge_ms = merge_ms;
    faults.maybe_panic(FlowStage::Merge);
    check_deadline(FlowStage::Merge)?;
    if !faults.is_empty() {
        faults.apply_post_merge(&mut merged_def, &netlist, library, config.seed);
    }

    // Static signoff over the finished artifacts: netlist lint, route and
    // placement DRC, LVS-lite of the merged DEF. Error severity means the
    // implementation is structurally broken — congestion and legality
    // overflow stay warnings and feed the DRV validity proxy instead.
    // Failed signoff returns an error, which `run_stage` never stores, so
    // only clean reports populate the cache.
    let signoff_cache_key = match (pnr_addr.as_deref(), merge_addr.as_deref()) {
        (Some(p), Some(m)) => Some(stagecache::signoff_key(config, p, m)),
        _ => None,
    };
    let (signoff, signoff_ms, _signoff_addr) = run_stage::<_, FlowError>(
        cache,
        signoff_cache_key,
        stagecache::Stage::Signoff.name(),
        stagecache::encode_signoff_payload,
        stagecache::decode_signoff_payload,
        || {
            let mut sp = ffet_obs::span("flow.signoff");
            let signoff = run_signoff(&netlist, library, config.pattern, &pnr, &merged_def);
            sp.set_attr("errors", signoff.error_count());
            sp.set_attr("warnings", signoff.warning_count());
            faults.maybe_panic(FlowStage::Signoff);
            check_deadline(FlowStage::Signoff)?;
            if !signoff.is_clean() {
                // `sp` drops here, recording the span.
                return Err(FlowError::Signoff(signoff));
            }
            let ms = sp.close_ms();
            Ok((signoff, ms))
        },
    )?;
    stages.signoff_ms = signoff_ms;

    // Dual-sided RC extraction from the merged DEF.
    let rcx_cache_key = match (pnr_addr.as_deref(), merge_addr.as_deref()) {
        (Some(p), Some(m)) => Some(stagecache::rcx_key(config, p, m)),
        _ => None,
    };
    let (parasitics, rcx_ms, rcx_addr) = run_stage::<_, FlowError>(
        cache,
        rcx_cache_key,
        stagecache::Stage::Rcx.name(),
        |parasitics, data| stagecache::encode_rcx(parasitics, data),
        stagecache::decode_rcx,
        || {
            let sp = ffet_obs::span("flow.rcx");
            let parasitics = extract_all(&netlist, library, &pnr, &merged_def);
            Ok((parasitics, sp.close_ms()))
        },
    )?;
    stages.rcx_ms = rcx_ms;

    // STA + power at the achieved frequency.
    let sta_config = StaConfig {
        clock_period_ps: 1000.0 / config.target_freq_ghz,
        activity: config.activity,
        input_slew_ps: 10.0,
    };
    let sta_cache_key = match (pnr_addr.as_deref(), rcx_addr.as_deref()) {
        (Some(p), Some(r)) => Some(stagecache::sta_key(config, p, r)),
        _ => None,
    };
    let ((timing, power), sta_ms, _sta_addr) = run_stage::<_, FlowError>(
        cache,
        sta_cache_key,
        stagecache::Stage::Sta.name(),
        stagecache::encode_sta,
        stagecache::decode_sta,
        || {
            let sp = ffet_obs::span("flow.sta");
            let timing = analyze_timing(&netlist, library, &parasitics, &sta_config)
                .map_err(|e| FlowError::CombLoop(e.instance))?;
            // Power is evaluated at the synthesis target clock (the
            // block's operating point); the achieved frequency is the
            // timing margin. This matches the paper's Table III, where
            // dual-sided DoEs gain >10% frequency with ~±1% power: power
            // reflects capacitance and cell composition, not the maximum
            // speed.
            let power = analyze_power(
                &netlist,
                library,
                &parasitics,
                &sta_config,
                config.target_freq_ghz,
            );
            Ok(((timing, power), sp.close_ms()))
        },
    )?;
    stages.sta_ms = sta_ms;

    let report = PpaReport {
        tech: library.tech().to_string(),
        pattern: config.pattern,
        back_pin_ratio: config.back_pin_ratio,
        target_freq_ghz: config.target_freq_ghz,
        utilization: config.utilization,
        core_area_um2: pnr.floorplan.core_area_nm2() as f64 / 1e6,
        achieved_freq_ghz: timing.max_frequency_ghz,
        power_mw: power.total_mw(),
        leakage_mw: power.leakage_mw,
        clock_mw: power.clock_mw,
        drv: pnr.drv_count(),
        valid: pnr.is_valid(library),
        signoff_warnings: signoff.drv_warnings(),
        signoff: signoff.verdict().to_owned(),
        wirelength_mm: pnr.routing.wirelength_nm as f64 / 1e6,
        back_wirelength_mm: pnr.routing.back_wirelength_nm as f64 / 1e6,
        vias: pnr.routing.via_count,
        cells: netlist.instances().len(),
    };
    root.attr("drv", i64::from(report.drv))
        .attr("valid", report.valid)
        .close();
    Ok(FlowOutcome {
        report,
        merged_def,
        pnr,
        timing,
        parasitics,
        signoff,
        stages,
    })
}

/// Nets per `rcx.batch` span: coarse enough that span overhead is noise,
/// fine enough that a hot extraction region shows up in the trace.
const RCX_BATCH: usize = 256;

/// Extracts parasitics for every net from the merged DEF, with sink order
/// matching `net.sinks` (the STA contract). Runs in [`RCX_BATCH`]-sized
/// batches, each under an `rcx.batch` child span.
fn extract_all(
    netlist: &Netlist,
    library: &Library,
    pnr: &PnrResult,
    merged: &Def,
) -> Vec<Option<NetParasitics>> {
    let tech = library.tech();
    let by_name: FxHashMap<&str, &ffet_lefdef::DefNet> =
        merged.nets.iter().map(|n| (n.name.as_str(), n)).collect();
    let extract_one = |net: &ffet_netlist::Net, scratch: &mut ffet_rcx::ExtractScratch| {
        let def_net = by_name.get(net.name.as_str())?;
        let source = net
            .driver
            .map(|d| pin_position(netlist, library, &pnr.placement, d))
            .or_else(|| {
                netlist
                    .ports()
                    .iter()
                    .enumerate()
                    .find(|(_, p)| {
                        netlist.nets()[p.net.0 as usize].name == net.name
                            && p.direction == ffet_netlist::PortDirection::Input
                    })
                    .map(|(pi, _)| pnr.placement.port_positions[pi])
            })?;
        let sinks: Vec<_> = net
            .sinks
            .iter()
            .map(|&s| pin_position(netlist, library, &pnr.placement, s))
            .collect();
        Some(extract_net_with(def_net, tech, source, &sinks, scratch))
    };
    let mut out = Vec::with_capacity(netlist.nets().len());
    // One scratch for the whole extraction: every net after the first
    // reuses the hash tables grown by its predecessors.
    let mut scratch = ffet_rcx::ExtractScratch::new();
    for (bi, batch) in netlist.nets().chunks(RCX_BATCH).enumerate() {
        let sp = ffet_obs::span("rcx.batch")
            .attr("batch", bi)
            .attr("nets", batch.len());
        for net in batch {
            out.push(extract_one(net, &mut scratch));
        }
        sp.close();
    }
    out
}
