//! Synthesis-lite: high-fanout buffering and target-frequency-driven gate
//! sizing.
//!
//! The paper sweeps a *synthesis target frequency* (500 MHz–3 GHz) in its
//! commercial flow; this module reproduces the mechanism that sweep relies
//! on — tighter targets produce larger drives and buffer trees, costing
//! area and power while improving achieved frequency.

use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_netlist::{NetId, Netlist};

/// Synthesis-lite configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Target clock frequency, GHz.
    pub target_freq_ghz: f64,
    /// Maximum signal-net fanout before a buffer tree is inserted.
    pub max_fanout: usize,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig::for_target(1.5)
    }
}

impl SynthConfig {
    /// Synthesis settings for a target frequency: tighter targets buffer
    /// more aggressively (lower fanout bound), trading area/power for
    /// speed — the mechanism behind the paper's target-frequency sweeps.
    #[must_use]
    pub fn for_target(target_freq_ghz: f64) -> SynthConfig {
        SynthConfig {
            target_freq_ghz,
            max_fanout: (24.0 / target_freq_ghz.max(0.25)).clamp(5.0, 40.0) as usize,
        }
    }
}

/// What synthesis-lite did to the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthStats {
    /// Buffers inserted for fanout control.
    pub buffers_inserted: usize,
    /// Instances upsized above D1.
    pub cells_upsized: usize,
}

/// Allowable output load per unit drive at the reference 1.5 GHz target, fF.
const LOAD_PER_DRIVE_FF: f64 = 2.4;
/// Estimated wire capacitance contributed per fanout pin before placement,
/// fF (used only for sizing decisions).
const WIRE_CAP_PER_FANOUT_FF: f64 = 0.28;

/// Runs fanout buffering then load-based sizing, mutating `netlist`.
///
/// # Errors
///
/// Returns a message if the library lacks the cells synthesis relies on
/// (e.g. no BUFD4 for fanout buffering) — a malformed library, not a
/// design property.
pub fn synthesize(
    netlist: &mut Netlist,
    library: &Library,
    config: &SynthConfig,
) -> Result<SynthStats, String> {
    Ok(SynthStats {
        buffers_inserted: buffer_high_fanout(netlist, library, config.max_fanout)?,
        cells_upsized: size_cells(netlist, library, config.target_freq_ghz),
    })
}

/// Splits nets with more than `max_fanout` sinks by inserting one BUFD4
/// per sink group. One level suffices for this design scale; pathological
/// fanouts would recurse via repeated calls.
fn buffer_high_fanout(
    netlist: &mut Netlist,
    library: &Library,
    max_fanout: usize,
) -> Result<usize, String> {
    let buf = library
        .id(CellKind::new(CellFunction::Buf, DriveStrength::D4))
        .ok_or_else(|| "library has no BUFD4 for fanout buffering".to_owned())?;
    let mut inserted = 0;
    let net_count = netlist.nets().len();
    for ni in 0..net_count {
        let net_id = NetId(ni as u32);
        {
            let net = netlist.net(net_id);
            if net.is_clock || net.sinks.len() <= max_fanout {
                continue;
            }
        }
        let sinks: Vec<_> = netlist.net(net_id).sinks.clone();
        for (gi, group) in sinks.chunks(max_fanout).enumerate().skip(1) {
            let out = netlist.add_net(format!("_fob{inserted}_{gi}_{ni}"));
            netlist.add_instance(
                library,
                format!("fobuf_{ni}_{gi}"),
                buf,
                &[Some(net_id), Some(out)],
            );
            for &pin in group {
                netlist.move_sink(net_id, pin, out);
            }
            inserted += 1;
        }
    }
    Ok(inserted)
}

/// Upsizes every cell whose estimated output load exceeds what its drive
/// can handle at the target frequency.
fn size_cells(netlist: &mut Netlist, library: &Library, target_ghz: f64) -> usize {
    let allowable_per_drive = LOAD_PER_DRIVE_FF * (1.5 / target_ghz.max(0.1));
    let mut upsized = 0;
    for ii in 0..netlist.instances().len() {
        let inst = &netlist.instances()[ii];
        let cell = library.cell(inst.cell);
        let function = cell.kind.function;
        if !function.has_output() || function.input_count() == 0 {
            continue;
        }
        let Some(out_pin) = cell.output_pin() else {
            continue;
        };
        let Some(out_net) = inst.conns[out_pin] else {
            continue;
        };
        // Estimated load: sink pin caps + pre-placement wire estimate.
        let net = netlist.net(out_net);
        let mut load = net.sinks.len() as f64 * WIRE_CAP_PER_FANOUT_FF;
        for s in &net.sinks {
            let scell = library.cell(netlist.instances()[s.inst.0 as usize].cell);
            load += scell.input_cap(s.pin.min(scell.timing.input_caps.len().saturating_sub(1)));
        }
        let mut drive = cell.kind.drive;
        let mut new_cell = None;
        while load > drive.multiple() * allowable_per_drive {
            let Some(next) = drive.upsized() else { break };
            let Some(id) = library.id(CellKind::new(function, next)) else {
                break;
            };
            drive = next;
            new_cell = Some(id);
        }
        if let Some(new_cell) = new_cell {
            swap_cell(netlist, library, ii, new_cell);
            upsized += 1;
        }
    }
    upsized
}

/// Replaces instance `ii`'s template with `new_cell` (same pin order by
/// library construction), keeping all connections.
fn swap_cell(netlist: &mut Netlist, library: &Library, ii: usize, new_cell: ffet_cells::CellId) {
    debug_assert_eq!(
        library.cell(netlist.instances()[ii].cell).pins.len(),
        library.cell(new_cell).pins.len(),
        "drive variants share the pin list"
    );
    netlist.instance_mut(ffet_netlist::InstId(ii as u32)).cell = new_cell;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    fn fanout_heavy(lib: &Library, fanout: usize) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "fan");
        let x = b.input("x");
        let src = b.not(x);
        let mut outs = Vec::new();
        for _ in 0..fanout {
            outs.push(b.not(src));
        }
        let last = b.and_tree(&outs);
        b.output("y", last);
        b.finish()
    }

    #[test]
    fn buffers_split_high_fanout_nets() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut nl = fanout_heavy(&lib, 50);
        let stats = synthesize(&mut nl, &lib, &SynthConfig::default()).unwrap();
        assert!(stats.buffers_inserted >= 2, "{stats:?}");
        nl.check_consistency(&lib).unwrap();
        for net in nl.nets() {
            assert!(
                net.sinks.len() <= 16 + 3, // groups + inserted buffer pins
                "net {} fanout {}",
                net.name,
                net.sinks.len()
            );
        }
    }

    #[test]
    fn tighter_target_means_bigger_cells() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut slow = fanout_heavy(&lib, 12);
        let mut fast = fanout_heavy(&lib, 12);
        let s1 = synthesize(
            &mut slow,
            &lib,
            &SynthConfig {
                target_freq_ghz: 0.5,
                max_fanout: 16,
            },
        )
        .unwrap();
        let s2 = synthesize(
            &mut fast,
            &lib,
            &SynthConfig {
                target_freq_ghz: 3.0,
                max_fanout: 16,
            },
        )
        .unwrap();
        assert!(s2.cells_upsized >= s1.cells_upsized, "{s1:?} vs {s2:?}");
        let area = |nl: &Netlist| -> i64 {
            nl.instances()
                .iter()
                .map(|i| lib.cell(i.cell).width_cpp)
                .sum()
        };
        assert!(area(&fast) > area(&slow));
    }

    #[test]
    fn functionality_preserved_after_synthesis() {
        use ffet_netlist::Simulator;
        let lib = Library::new(Technology::ffet_3p5t());
        let mut nl = fanout_heavy(&lib, 40);
        let x = nl.net_by_name("x").unwrap();
        let y = nl.ports().iter().find(|p| p.name == "y").unwrap().net;
        // Behaviour before.
        let mut before = Vec::new();
        {
            let mut sim = Simulator::new(&nl, &lib).unwrap();
            for v in [false, true] {
                sim.set(x, v);
                sim.settle();
                before.push(sim.get(y));
            }
        }
        let _ = synthesize(&mut nl, &lib, &SynthConfig::default());
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        for (i, v) in [false, true].into_iter().enumerate() {
            sim.set(x, v);
            sim.settle();
            assert_eq!(sim.get(y), before[i], "input {v}");
        }
    }

    #[test]
    fn clock_nets_never_buffered_by_synthesis() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "clk_fan");
        let clk = b.input("clk");
        b.netlist_mut().mark_clock(clk);
        let d = b.input("d");
        let mut q = d;
        for _ in 0..40 {
            q = b.dff(q, clk);
        }
        b.output("q", q);
        let mut nl = b.finish();
        let stats = synthesize(&mut nl, &lib, &SynthConfig::default()).unwrap();
        assert_eq!(stats.buffers_inserted, 0, "CTS owns the clock");
        let clk_net = nl.net_by_name("clk").unwrap();
        assert_eq!(nl.net(clk_net).sinks.len(), 40);
    }
}
