use crate::def::{Def, DefNet};
use ffet_geom::{FxHashMap, FxHashSet};

/// Error from [`merge_defs`]: the two sides disagree on something that must
/// be identical (they describe the same placed die).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Different design names.
    DesignMismatch(String, String),
    /// Different die areas.
    DieMismatch,
    /// A component exists on one side only or is placed differently.
    ComponentMismatch(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::DesignMismatch(a, b) => {
                write!(f, "cannot merge DEFs of different designs `{a}` and `{b}`")
            }
            MergeError::DieMismatch => f.write_str("cannot merge DEFs with different die areas"),
            MergeError::ComponentMismatch(name) => {
                write!(f, "component `{name}` differs between the two DEFs")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges the frontside and backside DEFs of a dual-sided P&R result into
/// one database — the paper's "DEF files merging" step that feeds the
/// dual-sided RC extraction.
///
/// Components (identical on both sides — the cells *are* dual-sided) are
/// taken once; per-net routing is concatenated so a net partitioned into
/// `n.front`/`n.back` ends up with its complete dual-sided RC geometry;
/// special nets (PDN) are concatenated.
///
/// # Errors
///
/// [`MergeError`] if the two DEFs do not describe the same placed design.
pub fn merge_defs(front: &Def, back: &Def) -> Result<Def, MergeError> {
    if front.design != back.design {
        return Err(MergeError::DesignMismatch(
            front.design.clone(),
            back.design.clone(),
        ));
    }
    if front.die != back.die || front.dbu_per_micron != back.dbu_per_micron {
        return Err(MergeError::DieMismatch);
    }
    if front.components.len() != back.components.len() {
        let front_names: FxHashSet<_> = front.components.iter().map(|c| &c.name).collect();
        let missing = back
            .components
            .iter()
            .find(|c| !front_names.contains(&c.name))
            .map_or_else(|| "<count mismatch>".to_owned(), |c| c.name.clone());
        return Err(MergeError::ComponentMismatch(missing));
    }
    let back_by_name: FxHashMap<&str, &crate::def::DefComponent> = back
        .components
        .iter()
        .map(|c| (c.name.as_str(), c))
        .collect();
    for c in &front.components {
        match back_by_name.get(c.name.as_str()) {
            Some(bc) if *bc == c => {}
            _ => return Err(MergeError::ComponentMismatch(c.name.clone())),
        }
    }

    let mut merged = Def::new(front.design.clone(), front.die);
    merged.dbu_per_micron = front.dbu_per_micron;
    merged.components = front.components.clone();
    merged.special_nets = front.special_nets.clone();
    merged
        .special_nets
        .extend(back.special_nets.iter().cloned());

    // Merge nets by name: connections deduplicated, routing concatenated.
    let mut by_name: FxHashMap<String, DefNet> = FxHashMap::default();
    let mut order: Vec<String> = Vec::new();
    for net in front.nets.iter().chain(&back.nets) {
        let entry = by_name.entry(net.name.clone()).or_insert_with(|| {
            order.push(net.name.clone());
            DefNet {
                name: net.name.clone(),
                ..DefNet::default()
            }
        });
        for conn in &net.connections {
            if !entry.connections.contains(conn) {
                entry.connections.push(conn.clone());
            }
        }
        entry.wires.extend(net.wires.iter().copied());
        entry.vias.extend(net.vias.iter().copied());
    }
    merged.nets = order
        .into_iter()
        .map(|name| by_name.remove(&name).expect("net recorded in order"))
        .collect();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{DefComponent, DefConnection, DefWire};
    use ffet_geom::{Orientation, Point, Rect};
    use ffet_tech::{LayerId, Side};

    fn base(design: &str) -> Def {
        let mut def = Def::new(design, Rect::new(0, 0, 1000, 1000));
        def.components.push(DefComponent {
            name: "u1".into(),
            macro_name: "ND2D1".into(),
            origin: Point::new(0, 0),
            orient: Orientation::North,
            fixed: false,
        });
        def
    }

    fn wire(side: Side) -> DefWire {
        DefWire {
            layer: LayerId::new(side, 2),
            from: Point::new(0, 0),
            to: Point::new(100, 0),
        }
    }

    #[test]
    fn merges_split_net_routing() {
        let mut front = base("core");
        let mut back = base("core");
        front.nets.push(DefNet {
            name: "n1".into(),
            connections: vec![DefConnection {
                instance: "u1".into(),
                pin: "Y".into(),
            }],
            wires: vec![wire(Side::Front)],
            vias: vec![],
        });
        back.nets.push(DefNet {
            name: "n1".into(),
            connections: vec![
                DefConnection {
                    instance: "u1".into(),
                    pin: "Y".into(),
                },
                DefConnection {
                    instance: "u1".into(),
                    pin: "A".into(),
                },
            ],
            wires: vec![wire(Side::Back)],
            vias: vec![],
        });
        let merged = merge_defs(&front, &back).expect("merge succeeds");
        assert_eq!(merged.nets.len(), 1);
        let n = &merged.nets[0];
        assert_eq!(n.wires.len(), 2);
        assert_eq!(n.connections.len(), 2, "connections deduplicated");
        assert_eq!(merged.total_wirelength(), 200);
    }

    #[test]
    fn rejects_mismatched_placement() {
        let front = base("core");
        let mut back = base("core");
        back.components[0].origin = Point::new(50, 0);
        assert_eq!(
            merge_defs(&front, &back),
            Err(MergeError::ComponentMismatch("u1".into()))
        );
    }

    #[test]
    fn rejects_different_designs() {
        let front = base("a");
        let back = base("b");
        assert!(matches!(
            merge_defs(&front, &back),
            Err(MergeError::DesignMismatch(..))
        ));
    }

    #[test]
    fn keeps_front_only_nets() {
        let mut front = base("core");
        front.nets.push(DefNet {
            name: "front_only".into(),
            connections: vec![],
            wires: vec![wire(Side::Front)],
            vias: vec![],
        });
        let back = base("core");
        let merged = merge_defs(&front, &back).unwrap();
        assert_eq!(merged.nets.len(), 1);
        assert_eq!(merged.nets[0].name, "front_only");
    }
}
