use ffet_geom::{Nm, Orientation, Point, Rect};
use ffet_tech::LayerId;

/// A placed component in a DEF: one standard-cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefComponent {
    /// Instance name.
    pub name: String,
    /// Library macro (cell) name.
    pub macro_name: String,
    /// Lower-left placement origin, nm.
    pub origin: Point,
    /// Placement orientation.
    pub orient: Orientation,
    /// `FIXED` (Power Tap Cells) vs `PLACED`.
    pub fixed: bool,
}

/// One axis-aligned routed wire segment on a metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefWire {
    /// Metal layer.
    pub layer: LayerId,
    /// Segment start, nm.
    pub from: Point,
    /// Segment end, nm (equal to `from` for via landing points).
    pub to: Point,
}

impl DefWire {
    /// Manhattan length of the segment.
    #[must_use]
    pub fn length(&self) -> Nm {
        self.from.manhattan(self.to)
    }
}

/// A via connecting two adjacent metal layers at a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefVia {
    /// Location, nm.
    pub at: Point,
    /// Lower layer.
    pub from_layer: LayerId,
    /// Upper layer.
    pub to_layer: LayerId,
}

/// Connection of a net to an instance pin (or, with instance `"PIN"`, to a
/// top-level port).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefConnection {
    /// Instance name, or `PIN` for a top-level port.
    pub instance: String,
    /// Pin name on the instance (port name for `PIN`).
    pub pin: String,
}

/// A routed signal net.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefNet {
    /// Net name.
    pub name: String,
    /// Connected pins.
    pub connections: Vec<DefConnection>,
    /// Routed segments.
    pub wires: Vec<DefWire>,
    /// Vias.
    pub vias: Vec<DefVia>,
}

impl DefNet {
    /// Total routed wirelength, nm.
    #[must_use]
    pub fn wirelength(&self) -> Nm {
        self.wires.iter().map(DefWire::length).sum()
    }
}

/// A power/ground special net (PDN stripes, rails).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefSpecialNet {
    /// `VDD` or `VSS`.
    pub name: String,
    /// Stripe/rail shapes per layer.
    pub shapes: Vec<(LayerId, Rect)>,
}

/// A simplified DEF database: die, placed components, routed nets, PDN.
///
/// One DEF describes one wafer side's routing (the dual-sided flow emits
/// two — see [`crate::merge_defs`]) or, after merging, both.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Def {
    /// Design name.
    pub design: String,
    /// Database units per micron (this framework always writes 1000 = 1 nm).
    pub dbu_per_micron: i64,
    /// Die area.
    pub die: Rect,
    /// Placed components.
    pub components: Vec<DefComponent>,
    /// Signal nets.
    pub nets: Vec<DefNet>,
    /// Power/ground nets.
    pub special_nets: Vec<DefSpecialNet>,
}

impl Def {
    /// Creates an empty DEF for `design` with a 1 nm database unit.
    #[must_use]
    pub fn new(design: impl Into<String>, die: Rect) -> Def {
        Def {
            design: design.into(),
            dbu_per_micron: 1000,
            die,
            components: Vec::new(),
            nets: Vec::new(),
            special_nets: Vec::new(),
        }
    }

    /// Total signal wirelength over all nets, nm.
    #[must_use]
    pub fn total_wirelength(&self) -> Nm {
        self.nets.iter().map(DefNet::wirelength).sum()
    }

    /// Total via count over all nets.
    #[must_use]
    pub fn total_vias(&self) -> usize {
        self.nets.iter().map(|n| n.vias.len()).sum()
    }

    /// Looks up a component by instance name.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&DefComponent> {
        self.components.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::Side;

    #[test]
    fn wirelength_accumulates() {
        let mut def = Def::new("t", Rect::new(0, 0, 1000, 1000));
        def.nets.push(DefNet {
            name: "n1".into(),
            connections: vec![],
            wires: vec![
                DefWire {
                    layer: LayerId::new(Side::Front, 2),
                    from: Point::new(0, 0),
                    to: Point::new(100, 0),
                },
                DefWire {
                    layer: LayerId::new(Side::Front, 3),
                    from: Point::new(100, 0),
                    to: Point::new(100, 50),
                },
            ],
            vias: vec![DefVia {
                at: Point::new(100, 0),
                from_layer: LayerId::new(Side::Front, 2),
                to_layer: LayerId::new(Side::Front, 3),
            }],
        });
        assert_eq!(def.total_wirelength(), 150);
        assert_eq!(def.total_vias(), 1);
    }
}
