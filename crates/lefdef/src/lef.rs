use ffet_cells::{Library, PinDirection, PinSides};
use ffet_tech::Side;
use std::fmt::Write as _;

/// Writes the library as LEF-style text — the "modified standard cell LEF"
/// of the paper, whose pin records carry the wafer side.
///
/// Pins are annotated with `LAYER FM0` / `LAYER BM0` according to their
/// (possibly redistributed) side; dual-sided output pins emit one PORT per
/// side. This is the artifact a dual-side-aware router consumes.
#[must_use]
pub fn write_lef(library: &Library) -> String {
    let tech = library.tech();
    let mut s = String::new();
    let _ = writeln!(s, "VERSION 5.8 ;");
    let _ = writeln!(s, "BUSBITCHARS \"[]\" ;");
    let _ = writeln!(
        s,
        "SITE coreSite SIZE {} BY {} ; END coreSite",
        nm_to_um(tech.cpp()),
        nm_to_um(tech.cell_height())
    );
    for cell in library.cells() {
        let width = cell.width_cpp * tech.cpp();
        let _ = writeln!(s, "MACRO {}", cell.name);
        let _ = writeln!(
            s,
            "  SIZE {} BY {} ;",
            nm_to_um(width),
            nm_to_um(tech.cell_height())
        );
        for pin in &cell.pins {
            let dir = match pin.direction {
                PinDirection::Input => "INPUT",
                PinDirection::Output => "OUTPUT",
            };
            let _ = writeln!(s, "  PIN {}", pin.name);
            let _ = writeln!(s, "    DIRECTION {dir} ;");
            let sides: Vec<Side> = match pin.sides {
                PinSides::One(side) => vec![side],
                PinSides::Both => vec![Side::Front, Side::Back],
            };
            for side in sides {
                let x = pin.offset_cpp * tech.cpp();
                let _ = writeln!(s, "    PORT");
                let _ = writeln!(
                    s,
                    "      LAYER {}M0 ; RECT {} {} {} {} ;",
                    side.prefix(),
                    nm_to_um(x),
                    nm_to_um(tech.cell_height() / 2 - 7),
                    nm_to_um(x + 14),
                    nm_to_um(tech.cell_height() / 2 + 7),
                );
                let _ = writeln!(s, "    END");
            }
            let _ = writeln!(s, "  END {}", pin.name);
        }
        let _ = writeln!(s, "END {}", cell.name);
    }
    let _ = writeln!(s, "END LIBRARY");
    s
}

/// Formats nanometres as LEF microns.
fn nm_to_um(nm: i64) -> String {
    format!("{:.3}", nm as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_tech::Technology;

    #[test]
    fn ffet_lef_has_dual_sided_outputs() {
        let lib = Library::new(Technology::ffet_3p5t());
        let lef = write_lef(&lib);
        assert!(lef.contains("MACRO INVD1"));
        // The INVD1 output pin Y has ports on both FM0 and BM0.
        let inv = lef.split("MACRO INVD1").nth(1).unwrap();
        let inv = inv.split("END INVD1").next().unwrap();
        assert!(inv.contains("LAYER FM0"));
        assert!(inv.contains("LAYER BM0"));
    }

    #[test]
    fn cfet_lef_is_frontside_only() {
        let lib = Library::new(Technology::cfet_4t());
        let lef = write_lef(&lib);
        assert!(!lef.contains("LAYER BM0"));
    }

    #[test]
    fn redistributed_pins_change_sides() {
        let mut lib = Library::new(Technology::ffet_3p5t());
        lib.redistribute_input_pins(1.0, 1).unwrap();
        let lef = write_lef(&lib);
        // With every input on the backside, ND2D1's A pin port is on BM0.
        let nd2 = lef.split("MACRO ND2D1").nth(1).unwrap();
        let pin_a = nd2
            .split("PIN A")
            .nth(1)
            .unwrap()
            .split("END A")
            .next()
            .unwrap();
        assert!(pin_a.contains("LAYER BM0"));
        assert!(!pin_a.contains("LAYER FM0"));
    }
}
