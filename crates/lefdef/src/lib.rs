//! Simplified LEF/DEF data model, writers/parsers and dual-sided DEF merge.
//!
//! The paper's flow communicates through industry formats: modified
//! standard-cell LEF (with pin wafer-sides), one DEF per wafer side from
//! the dual-sided router, and a merged DEF feeding RC extraction. This
//! crate provides that interchange layer:
//!
//! * [`Def`] — placed components, routed nets (wires + vias), PDN shapes,
//! * [`write_def`] / [`parse_def`] — exact-inverse text serialization,
//! * [`merge_defs`] — the dual-sided merge (paper §III.C),
//! * [`write_lef`] — library export with per-side pin ports.

mod def;
mod lef;
mod merge;
mod parser;
mod writer;

pub use def::{Def, DefComponent, DefConnection, DefNet, DefSpecialNet, DefVia, DefWire};
pub use lef::write_lef;
pub use merge::{merge_defs, MergeError};
pub use parser::{parse_def, ParseDefError};
pub use writer::write_def;
