use crate::def::{Def, DefNet};
use std::fmt::Write as _;

/// Serializes a [`Def`] to DEF-style text.
///
/// The emitted subset follows the DEF 5.8 look and feel (sections, `- name`
/// records, `;` terminators) closely enough to be familiar, while staying
/// exactly inverse to [`crate::parse_def`].
#[must_use]
pub fn write_def(def: &Def) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "VERSION 5.8 ;");
    let _ = writeln!(s, "DESIGN {} ;", def.design);
    let _ = writeln!(s, "UNITS DISTANCE MICRONS {} ;", def.dbu_per_micron);
    let _ = writeln!(
        s,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        def.die.lo.x, def.die.lo.y, def.die.hi.x, def.die.hi.y
    );

    let _ = writeln!(s, "COMPONENTS {} ;", def.components.len());
    for c in &def.components {
        let kind = if c.fixed { "FIXED" } else { "PLACED" };
        let _ = writeln!(
            s,
            "- {} {} + {} ( {} {} ) {} ;",
            c.name, c.macro_name, kind, c.origin.x, c.origin.y, c.orient
        );
    }
    let _ = writeln!(s, "END COMPONENTS");

    let _ = writeln!(s, "SPECIALNETS {} ;", def.special_nets.len());
    for sn in &def.special_nets {
        let _ = write!(s, "- {}", sn.name);
        for (layer, r) in &sn.shapes {
            let _ = write!(
                s,
                "\n  + RECT {} ( {} {} ) ( {} {} )",
                layer, r.lo.x, r.lo.y, r.hi.x, r.hi.y
            );
        }
        let _ = writeln!(s, " ;");
    }
    let _ = writeln!(s, "END SPECIALNETS");

    let _ = writeln!(s, "NETS {} ;", def.nets.len());
    for n in &def.nets {
        write_net(&mut s, n);
    }
    let _ = writeln!(s, "END NETS");
    let _ = writeln!(s, "END DESIGN");
    s
}

fn write_net(s: &mut String, n: &DefNet) {
    let _ = write!(s, "- {}", n.name);
    for c in &n.connections {
        let _ = write!(s, " ( {} {} )", c.instance, c.pin);
    }
    for w in &n.wires {
        let _ = write!(
            s,
            "\n  + ROUTED {} ( {} {} ) ( {} {} )",
            w.layer, w.from.x, w.from.y, w.to.x, w.to.y
        );
    }
    for v in &n.vias {
        let _ = write!(
            s,
            "\n  + VIA {} {} ( {} {} )",
            v.from_layer, v.to_layer, v.at.x, v.at.y
        );
    }
    let _ = writeln!(s, " ;");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{DefComponent, DefConnection, DefSpecialNet, DefVia, DefWire};
    use ffet_geom::{Orientation, Point, Rect};
    use ffet_tech::{LayerId, Side};

    #[test]
    fn writes_all_sections() {
        let mut def = Def::new("core", Rect::new(0, 0, 5000, 4000));
        def.components.push(DefComponent {
            name: "u1".into(),
            macro_name: "INVD1".into(),
            origin: Point::new(100, 210),
            orient: Orientation::North,
            fixed: false,
        });
        def.components.push(DefComponent {
            name: "tap0".into(),
            macro_name: "PWRTAP".into(),
            origin: Point::new(0, 0),
            orient: Orientation::FlippedSouth,
            fixed: true,
        });
        def.special_nets.push(DefSpecialNet {
            name: "VDD".into(),
            shapes: vec![(LayerId::new(Side::Back, 2), Rect::new(0, 0, 100, 4000))],
        });
        def.nets.push(DefNet {
            name: "n1".into(),
            connections: vec![
                DefConnection {
                    instance: "u1".into(),
                    pin: "Y".into(),
                },
                DefConnection {
                    instance: "PIN".into(),
                    pin: "out".into(),
                },
            ],
            wires: vec![DefWire {
                layer: LayerId::new(Side::Front, 2),
                from: Point::new(100, 200),
                to: Point::new(400, 200),
            }],
            vias: vec![DefVia {
                at: Point::new(400, 200),
                from_layer: LayerId::new(Side::Front, 2),
                to_layer: LayerId::new(Side::Front, 3),
            }],
        });
        let text = write_def(&def);
        assert!(text.contains("DESIGN core ;"));
        assert!(text.contains("COMPONENTS 2 ;"));
        assert!(text.contains("- u1 INVD1 + PLACED ( 100 210 ) N ;"));
        assert!(text.contains("- tap0 PWRTAP + FIXED ( 0 0 ) FS ;"));
        assert!(text.contains("+ RECT BM2"));
        assert!(text.contains("+ ROUTED FM2 ( 100 200 ) ( 400 200 )"));
        assert!(text.contains("+ VIA FM2 FM3 ( 400 200 )"));
        assert!(text.trim_end().ends_with("END DESIGN"));
    }
}
