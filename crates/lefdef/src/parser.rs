use crate::def::{Def, DefComponent, DefConnection, DefNet, DefSpecialNet, DefVia, DefWire};
use ffet_geom::{Point, Rect};
use ffet_tech::LayerId;

/// Error from [`parse_def`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDefError {}

struct Cursor<'a> {
    tokens: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        let tokens = text
            .lines()
            .enumerate()
            .flat_map(|(ln, line)| line.split_whitespace().map(move |t| (ln + 1, t)))
            .collect();
        Cursor { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).map(|&(_, t)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |&(l, _)| l)
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &str) -> Result<(), ParseDefError> {
        let line = self.line();
        match self.next() {
            Some(t) if t == want => Ok(()),
            got => Err(ParseDefError {
                line,
                message: format!("expected `{want}`, got {got:?}"),
            }),
        }
    }

    fn int(&mut self) -> Result<i64, ParseDefError> {
        let line = self.line();
        let t = self.next().ok_or(ParseDefError {
            line,
            message: "expected integer, got end of file".into(),
        })?;
        t.parse().map_err(|_| ParseDefError {
            line,
            message: format!("expected integer, got `{t}`"),
        })
    }

    fn point(&mut self) -> Result<Point, ParseDefError> {
        self.expect("(")?;
        let x = self.int()?;
        let y = self.int()?;
        self.expect(")")?;
        Ok(Point::new(x, y))
    }

    fn layer(&mut self) -> Result<LayerId, ParseDefError> {
        let line = self.line();
        let t = self.next().ok_or(ParseDefError {
            line,
            message: "expected layer name".into(),
        })?;
        LayerId::parse(t).ok_or(ParseDefError {
            line,
            message: format!("unknown layer `{t}`"),
        })
    }

    fn err(&self, message: impl Into<String>) -> ParseDefError {
        ParseDefError {
            line: self.line(),
            message: message.into(),
        }
    }
}

/// Parses the DEF subset produced by [`crate::write_def`].
///
/// # Errors
///
/// Returns [`ParseDefError`] with a line number on malformed input.
pub fn parse_def(text: &str) -> Result<Def, ParseDefError> {
    let mut c = Cursor::new(text);
    let mut def = Def {
        dbu_per_micron: 1000,
        ..Def::default()
    };

    loop {
        let tok_line = c.line();
        let Some(tok) = c.next() else { break };
        match tok {
            "VERSION" => {
                c.next();
                c.expect(";")?;
            }
            "DESIGN" => {
                def.design = c
                    .next()
                    .ok_or_else(|| c.err("missing design name"))?
                    .to_owned();
                c.expect(";")?;
            }
            "UNITS" => {
                c.expect("DISTANCE")?;
                c.expect("MICRONS")?;
                def.dbu_per_micron = c.int()?;
                c.expect(";")?;
            }
            "DIEAREA" => {
                let lo = c.point()?;
                let hi = c.point()?;
                c.expect(";")?;
                def.die = Rect::new(lo.x, lo.y, hi.x, hi.y);
            }
            "COMPONENTS" => {
                let _count = c.int()?;
                c.expect(";")?;
                loop {
                    match c.peek() {
                        Some("END") => {
                            c.next();
                            c.expect("COMPONENTS")?;
                            break;
                        }
                        Some("-") => {
                            c.next();
                            let name = c.next().ok_or_else(|| c.err("component name"))?.to_owned();
                            let macro_name =
                                c.next().ok_or_else(|| c.err("macro name"))?.to_owned();
                            c.expect("+")?;
                            let kind = c.next().ok_or_else(|| c.err("placement kind"))?;
                            let fixed = match kind {
                                "FIXED" => true,
                                "PLACED" => false,
                                other => return Err(c.err(format!("bad placement `{other}`"))),
                            };
                            let origin = c.point()?;
                            let orient = c
                                .next()
                                .ok_or_else(|| c.err("orientation"))?
                                .parse()
                                .map_err(|e| c.err(format!("{e}")))?;
                            c.expect(";")?;
                            def.components.push(DefComponent {
                                name,
                                macro_name,
                                origin,
                                orient,
                                fixed,
                            });
                        }
                        other => return Err(c.err(format!("unexpected token {other:?}"))),
                    }
                }
            }
            "SPECIALNETS" => {
                let _count = c.int()?;
                c.expect(";")?;
                loop {
                    match c.peek() {
                        Some("END") => {
                            c.next();
                            c.expect("SPECIALNETS")?;
                            break;
                        }
                        Some("-") => {
                            c.next();
                            let name = c.next().ok_or_else(|| c.err("net name"))?.to_owned();
                            let mut sn = DefSpecialNet {
                                name,
                                shapes: Vec::new(),
                            };
                            while c.peek() == Some("+") {
                                c.next();
                                c.expect("RECT")?;
                                let layer = c.layer()?;
                                let lo = c.point()?;
                                let hi = c.point()?;
                                sn.shapes.push((layer, Rect::new(lo.x, lo.y, hi.x, hi.y)));
                            }
                            c.expect(";")?;
                            def.special_nets.push(sn);
                        }
                        other => return Err(c.err(format!("unexpected token {other:?}"))),
                    }
                }
            }
            "NETS" => {
                let _count = c.int()?;
                c.expect(";")?;
                loop {
                    match c.peek() {
                        Some("END") => {
                            c.next();
                            c.expect("NETS")?;
                            break;
                        }
                        Some("-") => {
                            c.next();
                            let name = c.next().ok_or_else(|| c.err("net name"))?.to_owned();
                            let mut net = DefNet {
                                name,
                                ..DefNet::default()
                            };
                            while c.peek() == Some("(") {
                                c.next();
                                let instance =
                                    c.next().ok_or_else(|| c.err("instance"))?.to_owned();
                                let pin = c.next().ok_or_else(|| c.err("pin"))?.to_owned();
                                c.expect(")")?;
                                net.connections.push(DefConnection { instance, pin });
                            }
                            while c.peek() == Some("+") {
                                c.next();
                                match c.next() {
                                    Some("ROUTED") => {
                                        let layer = c.layer()?;
                                        let from = c.point()?;
                                        let to = c.point()?;
                                        net.wires.push(DefWire { layer, from, to });
                                    }
                                    Some("VIA") => {
                                        let from_layer = c.layer()?;
                                        let to_layer = c.layer()?;
                                        let at = c.point()?;
                                        net.vias.push(DefVia {
                                            at,
                                            from_layer,
                                            to_layer,
                                        });
                                    }
                                    other => return Err(c.err(format!("bad net clause {other:?}"))),
                                }
                            }
                            c.expect(";")?;
                            def.nets.push(net);
                        }
                        other => return Err(c.err(format!("unexpected token {other:?}"))),
                    }
                }
            }
            "END" => {
                c.expect("DESIGN")?;
                break;
            }
            other => {
                return Err(ParseDefError {
                    line: tok_line,
                    message: format!("unexpected section `{other}`"),
                })
            }
        }
    }
    Ok(def)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_def;
    use ffet_geom::{Orientation, Rng64};
    use ffet_tech::Side;

    #[test]
    fn roundtrip_small() {
        let mut def = Def::new("core", Rect::new(0, 0, 5000, 4000));
        def.components.push(DefComponent {
            name: "u1".into(),
            macro_name: "ND2D2".into(),
            origin: Point::new(150, 210),
            orient: Orientation::FlippedSouth,
            fixed: false,
        });
        def.nets.push(DefNet {
            name: "n1".into(),
            connections: vec![DefConnection {
                instance: "u1".into(),
                pin: "A".into(),
            }],
            wires: vec![DefWire {
                layer: LayerId::new(Side::Back, 4),
                from: Point::new(0, 0),
                to: Point::new(0, 300),
            }],
            vias: vec![],
        });
        let parsed = parse_def(&write_def(&def)).expect("roundtrip parses");
        assert_eq!(parsed, def);
    }

    #[test]
    fn error_carries_line_number() {
        let bad = "VERSION 5.8 ;\nGARBAGE\n";
        let err = parse_def(bad).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn roundtrip_random_defs() {
        let mut rng = Rng64::new(0xdef0);
        for _ in 0..32 {
            let n_comp = rng.range_usize(0, 8);
            let n_net = rng.range_usize(0, 8);
            let coords: Vec<(i64, i64)> = (0..32)
                .map(|_| (rng.range_i64(0, 100_000), rng.range_i64(0, 100_000)))
                .collect();
            let mut def = Def::new("rand", Rect::new(0, 0, 100_000, 100_000));
            for i in 0..n_comp {
                let (x, y) = coords[i % coords.len()];
                def.components.push(DefComponent {
                    name: format!("u{i}"),
                    macro_name: "INVD1".into(),
                    origin: Point::new(x, y),
                    orient: if i % 2 == 0 {
                        Orientation::North
                    } else {
                        Orientation::FlippedSouth
                    },
                    fixed: i % 3 == 0,
                });
            }
            for i in 0..n_net {
                let (x, y) = coords[(i + 7) % coords.len()];
                def.nets.push(DefNet {
                    name: format!("net{i}"),
                    connections: vec![DefConnection {
                        instance: format!("u{i}"),
                        pin: "A".into(),
                    }],
                    wires: vec![DefWire {
                        layer: LayerId::new(
                            if i % 2 == 0 { Side::Front } else { Side::Back },
                            (i % 12 + 1) as u8,
                        ),
                        from: Point::new(x, y),
                        to: Point::new(x + 100, y),
                    }],
                    vias: vec![],
                });
            }
            let parsed = parse_def(&write_def(&def)).expect("roundtrip");
            assert_eq!(parsed, def);
        }
    }
}
