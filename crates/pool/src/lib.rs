//! `ffet-pool`: the deterministic work-stealing job pool.
//!
//! One pool implementation serves both parallelism levels of the framework:
//! the DoE runner in `ffet-core` (one job per sweep point) and the batched
//! intra-point router in `ffet-pnr` (one job per 2-pin connection of a
//! rip-up batch). It is a dependency-free design built on
//! [`std::thread::scope`]:
//!
//! * all job indices start in a shared **injector** queue;
//! * each worker pulls batches from the injector into a local deque and
//!   executes from its front;
//! * a worker whose local deque and the injector are both empty **steals**
//!   from the back of a sibling's deque, so stragglers never idle the pool.
//!
//! **Determinism contract.** Results are reassembled in *submission order*
//! (slot `i` of the output always holds job `i`), jobs never communicate,
//! and per-worker scratch state handed to [`Pool::run_with`] must not
//! influence results (callers guarantee this; the router's epoch-stamped
//! `MazeScratch` is the canonical example). Consequently every output is
//! byte-identical regardless of worker count. Only the [`JobStats`]
//! telemetry (wall time, worker id) varies between runs and must never feed
//! back into experiment tables.
//!
//! A job that panics is caught and reported as a failed slot
//! ([`JobError::Panicked`]); it does not poison the pool or abort sibling
//! jobs. An effective width of 1 runs jobs inline on the caller's thread —
//! same per-job collectors, same panic containment, no thread spawn.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Environment variable controlling the default pool width.
pub const JOBS_ENV: &str = "FFET_JOBS";

/// How a job ended, as recorded in the run log.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// The job ran to completion and produced a result.
    Completed,
    /// The job returned an error (carried verbatim).
    Failed(String),
    /// The job panicked; the pool caught it and kept running.
    Panicked(String),
    /// The point was dropped at assembly time (e.g. no placement seed of a
    /// sweep point produced a routable run); no flow was executed for it.
    Skipped(String),
}

impl Disposition {
    /// Whether the job completed successfully.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Disposition::Completed)
    }

    /// Single-cell rendering for the run-log CSV.
    #[must_use]
    pub fn to_cell(&self) -> String {
        match self {
            Disposition::Completed => "ok".to_owned(),
            Disposition::Failed(m) => format!("failed: {m}"),
            Disposition::Panicked(m) => format!("panicked: {m}"),
            Disposition::Skipped(m) => format!("skipped: {m}"),
        }
    }
}

/// Per-job telemetry: where and how long a job ran, and how it ended.
///
/// Stats are *observational* — two runs of the same workload produce
/// identical results but different stats. Nothing in the experiment tables
/// may depend on them.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStats {
    /// Submission index (also the output slot).
    pub index: usize,
    /// Worker thread that executed the job.
    pub worker: usize,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// How the job ended.
    pub disposition: Disposition,
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError<E> {
    /// The job's own error, passed through.
    Failed(E),
    /// The job panicked with this message.
    Panicked(String),
}

impl<E: std::fmt::Display> std::fmt::Display for JobError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Failed(e) => write!(f, "{e}"),
            JobError::Panicked(m) => write!(f, "panic: {m}"),
        }
    }
}

/// One finished job: its result (or error) plus telemetry.
#[derive(Debug, Clone)]
pub struct JobOutcome<R, E> {
    /// What the job returned, or why it did not.
    pub result: Result<R, JobError<E>>,
    /// Telemetry record.
    pub stats: JobStats,
    /// Everything the job's ambient [`ffet_obs::Collector`] recorded: span
    /// events and the metrics snapshot. Metric values are deterministic
    /// (each job runs single-threaded in its own collector); span timings
    /// are wall-clock telemetry like [`JobStats`].
    pub trace: ffet_obs::PointData,
}

/// The work-stealing pool. Cheap to construct; owns no threads between
/// runs (workers are scoped to each [`Pool::run`]/[`Pool::run_with`] call).
#[derive(Debug, Clone)]
pub struct Pool {
    width: usize,
}

impl Pool {
    /// A pool with exactly `width` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(width: usize) -> Pool {
        Pool {
            width: width.max(1),
        }
    }

    /// A pool sized from the `FFET_JOBS` environment variable, falling back
    /// to the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Pool {
        Pool::new(width_from(std::env::var(JOBS_ENV).ok().as_deref()))
    }

    /// Worker count.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Executes every job, returning outcomes in **submission order**.
    ///
    /// Jobs run concurrently on up to `width` scoped worker threads and must
    /// be independent: `f` only gets a shared reference to its job. A
    /// panicking job is caught and reported as [`JobError::Panicked`] in its
    /// own slot; all other jobs still run exactly once.
    pub fn run<J, R, E, F>(&self, jobs: Vec<J>, f: F) -> Vec<JobOutcome<R, E>>
    where
        J: Sync,
        R: Send,
        E: Send + std::fmt::Display,
        F: Fn(&J) -> Result<R, E> + Sync,
    {
        let mut states = vec![(); self.width];
        self.run_with(&mut states, &jobs, |(): &mut (), job| f(job))
    }

    /// [`Pool::run`] with exclusive per-worker scratch state: worker `w`
    /// passes `&mut states[w]` to every job it executes.
    ///
    /// The effective width is `min(self.width, jobs.len(), states.len())`;
    /// `states` must be non-empty. Which worker (and therefore which state)
    /// a job lands on is scheduling-dependent, so **results must not depend
    /// on the state's history** — callers hand in scratch whose contents
    /// provably cannot change outputs (allocation reuse only). An effective
    /// width of 1 executes inline on the caller's thread, with the same
    /// per-job collector installation and panic containment as workers.
    pub fn run_with<S, J, R, E, F>(
        &self,
        states: &mut [S],
        jobs: &[J],
        f: F,
    ) -> Vec<JobOutcome<R, E>>
    where
        S: Send,
        J: Sync,
        R: Send,
        E: Send + std::fmt::Display,
        F: Fn(&mut S, &J) -> Result<R, E> + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        assert!(!states.is_empty(), "run_with needs at least one state");
        let width = self.width.min(n).min(states.len());
        if width == 1 {
            // Inline fast path: no thread spawn, same execution semantics.
            return jobs
                .iter()
                .enumerate()
                .map(|(i, job)| execute(0, i, &mut states[0], job, &f))
                .collect();
        }
        let injector: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
        let locals: Vec<Mutex<VecDeque<usize>>> =
            (0..width).map(|_| Mutex::new(VecDeque::new())).collect();
        let slots: Vec<Mutex<Option<JobOutcome<R, E>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        // Batched injector pulls amortize the shared lock; small enough that
        // the tail of a grid still spreads across workers.
        let batch = (n / (width * 4)).max(1);
        {
            let (f, injector, locals, slots) = (&f, &injector, &locals, &slots);
            std::thread::scope(|scope| {
                for (w, state) in states.iter_mut().enumerate().take(width) {
                    scope.spawn(move || {
                        while let Some(i) = next_job(w, injector, locals, batch) {
                            *lock(&slots[i]) = Some(execute(w, i, state, &jobs[i], f));
                        }
                    });
                }
            });
        }
        let out: Vec<JobOutcome<R, E>> = slots
            .into_iter()
            .filter_map(|s| s.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        assert_eq!(out.len(), n, "every job is claimed exactly once");
        out
    }
}

/// Runs one job under a fresh per-job collector with panic containment.
fn execute<S, J, R, E, F>(
    worker: usize,
    index: usize,
    state: &mut S,
    job: &J,
    f: &F,
) -> JobOutcome<R, E>
where
    E: std::fmt::Display,
    F: Fn(&mut S, &J) -> Result<R, E>,
{
    let t0 = Instant::now();
    // Per-job collector: the job's instrumentation all lands in a private
    // buffer, merged later in submission order — metric values stay
    // identical at any pool width.
    let collector = ffet_obs::Collector::new();
    let caught = {
        let _guard = collector.install();
        catch_unwind(AssertUnwindSafe(|| f(state, job)))
    };
    let trace = collector.finish();
    let wall = t0.elapsed();
    let (result, disposition) = match caught {
        Ok(Ok(r)) => (Ok(r), Disposition::Completed),
        Ok(Err(e)) => {
            let msg = e.to_string();
            (Err(JobError::Failed(e)), Disposition::Failed(msg))
        }
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            (
                Err(JobError::Panicked(msg.clone())),
                Disposition::Panicked(msg),
            )
        }
    };
    JobOutcome {
        result,
        stats: JobStats {
            index,
            worker,
            wall,
            disposition,
        },
        trace,
    }
}

/// Locks ignoring poisoning: job panics are already caught inside
/// `execute`, so a poisoned mutex can only result from a panic in the
/// pool's own bookkeeping, where the protected index/slot data is a plain
/// value that is never left half-updated.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Claims the next job for worker `w`: local deque front, else a batch from
/// the injector, else steal from the back of a sibling's deque.
fn next_job(
    w: usize,
    injector: &Mutex<VecDeque<usize>>,
    locals: &[Mutex<VecDeque<usize>>],
    batch: usize,
) -> Option<usize> {
    if let Some(i) = lock(&locals[w]).pop_front() {
        return Some(i);
    }
    {
        let mut inj = lock(injector);
        if !inj.is_empty() {
            let mut local = lock(&locals[w]);
            for _ in 0..batch {
                match inj.pop_front() {
                    Some(i) => local.push_back(i),
                    None => break,
                }
            }
            return local.pop_front();
        }
    }
    for offset in 1..locals.len() {
        let victim = (w + offset) % locals.len();
        if let Some(i) = lock(&locals[victim]).pop_back() {
            return Some(i);
        }
    }
    // Injector drained and nothing to steal: remaining jobs are owned by
    // live workers (a worker never exits with a non-empty local deque), so
    // this worker is done.
    None
}

/// Cooperative cancellation token for deadline watchdogs.
///
/// A token is a pure value (`Copy`), so it can ride inside `Copy` configs
/// (e.g. `PnrConfig`) and be checked from any thread without
/// synchronization. Holders poll [`CancelToken::cancelled`] at natural
/// yield points (stage boundaries, route-batch and rip-up-round tops) and
/// unwind cooperatively — the pool itself never kills a worker.
///
/// Two flavors:
///
/// - **Deadline** ([`CancelToken::with_deadline_ms`]): expires once the
///   wall clock passes `start + budget`. Inherently nondeterministic (the
///   same sweep may or may not expire on different hardware) — outside the
///   DESIGN §7 byte-identity contract, which is why tests use…
/// - **Forced** ([`CancelToken::forced`]): already expired at birth. The
///   `stage-timeout` fault kind uses this to exercise every timeout path
///   deterministically at any pool width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancelToken {
    deadline: Option<Instant>,
    forced: bool,
}

impl CancelToken {
    /// A token that never cancels (the default).
    #[must_use]
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A token that cancels `budget_ms` from now. `None` never cancels.
    #[must_use]
    pub fn with_deadline_ms(budget_ms: Option<u64>) -> CancelToken {
        CancelToken {
            deadline: budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            forced: false,
        }
    }

    /// A token that is already expired — deterministic timeout injection.
    #[must_use]
    pub fn forced() -> CancelToken {
        CancelToken {
            deadline: None,
            forced: true,
        }
    }

    /// Whether the holder should stop at the next yield point.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.forced || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether this token can ever cancel (used to skip bookkeeping on the
    /// default token).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.forced || self.deadline.is_some()
    }
}

/// Renders a caught panic payload (`&str` and `String` payloads verbatim).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Pool width from an optional `FFET_JOBS`-style value: a positive integer
/// wins; anything else falls back to available parallelism.
#[must_use]
pub fn width_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_list_returns_empty() {
        let pool = Pool::new(4);
        let out = pool.run(Vec::<u32>::new(), |_| Ok::<u32, String>(0));
        assert!(out.is_empty());
    }

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(Pool::new(0).width(), 1);
        assert_eq!(Pool::new(7).width(), 7);
    }

    #[test]
    fn width_from_env_values() {
        assert_eq!(width_from(Some("3")), 3);
        assert_eq!(width_from(Some(" 2 ")), 2);
        // Invalid / zero fall back to available parallelism (≥ 1).
        assert!(width_from(Some("0")) >= 1);
        assert!(width_from(Some("lots")) >= 1);
        assert!(width_from(None) >= 1);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = Pool::new(4);
        let jobs: Vec<u64> = (0..97).collect();
        let out = pool.run(jobs, |&j| Ok::<u64, String>(j * j));
        assert_eq!(out.len(), 97);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.stats.index, i);
            assert_eq!(*o.result.as_ref().expect("ok"), (i * i) as u64);
        }
    }

    #[test]
    fn errors_are_carried_per_slot() {
        let pool = Pool::new(2);
        let out = pool.run(vec![1u32, 2, 3], |&j| {
            if j == 2 {
                Err(format!("job {j} refused"))
            } else {
                Ok(j)
            }
        });
        assert!(out[0].result.is_ok() && out[2].result.is_ok());
        match &out[1].result {
            Err(JobError::Failed(m)) => assert_eq!(m, "job 2 refused"),
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(out[1].stats.disposition.to_cell(), "failed: job 2 refused");
    }

    #[test]
    fn run_with_hands_each_worker_its_own_state() {
        let pool = Pool::new(3);
        let jobs: Vec<usize> = (0..50).collect();
        // Each worker counts the jobs it ran in its own scratch slot; the
        // counts must sum to the job count (exactly-once) and results must
        // not depend on which worker ran which job.
        let mut counts = vec![0usize; 3];
        let out = pool.run_with(&mut counts, &jobs, |c: &mut usize, &j| {
            *c += 1;
            Ok::<usize, String>(j + 1)
        });
        assert_eq!(counts.iter().sum::<usize>(), 50);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o.result.as_ref().expect("ok"), i + 1);
            assert_eq!(o.stats.index, i);
        }
    }

    #[test]
    fn effective_width_is_bounded_by_states() {
        let pool = Pool::new(8);
        let jobs: Vec<u32> = (0..20).collect();
        // Only one state: the pool must degrade to the inline path rather
        // than hand the same &mut to two workers.
        let mut states = vec![0u32];
        let out = pool.run_with(&mut states, &jobs, |s: &mut u32, &j| {
            *s += 1;
            Ok::<u32, String>(j)
        });
        assert_eq!(states[0], 20);
        assert!(out.iter().all(|o| o.stats.worker == 0));
    }

    #[test]
    fn inline_width_one_contains_panics() {
        let pool = Pool::new(1);
        let out = pool.run(vec![1u32, 2, 3], |&j| {
            if j == 2 {
                panic!("job {j} exploded");
            }
            Ok::<u32, String>(j)
        });
        assert!(out[0].result.is_ok() && out[2].result.is_ok());
        match &out[1].result {
            Err(JobError::Panicked(m)) => assert_eq!(m, "job 2 exploded"),
            other => panic!("expected contained panic, got {other:?}"),
        }
    }

    #[test]
    fn cancel_token_flavors() {
        assert!(!CancelToken::none().cancelled());
        assert!(!CancelToken::none().is_armed());
        assert!(CancelToken::forced().cancelled());
        assert!(CancelToken::forced().is_armed());
        // A generous deadline is armed but not yet expired; an elapsed one
        // (zero budget) cancels immediately.
        let far = CancelToken::with_deadline_ms(Some(3_600_000));
        assert!(far.is_armed() && !far.cancelled());
        let now = CancelToken::with_deadline_ms(Some(0));
        assert!(now.cancelled());
        assert!(!CancelToken::with_deadline_ms(None).is_armed());
    }

    #[test]
    fn per_job_collectors_capture_metrics_inline_and_threaded() {
        for width in [1, 4] {
            let pool = Pool::new(width);
            let jobs: Vec<i64> = (1..=8).collect();
            let out = pool.run(jobs, |&j| {
                ffet_obs::counter_add("pool.test.value", j);
                Ok::<i64, String>(j)
            });
            for (i, o) in out.iter().enumerate() {
                assert_eq!(
                    o.trace.metrics.counters["pool.test.value"],
                    i as i64 + 1,
                    "width {width}"
                );
            }
        }
    }
}
