use crate::{Nm, Point};

/// An axis-aligned rectangle, half-open in neither direction: `lo` and `hi`
/// are both inclusive corner coordinates of the covered region
/// (`lo.x <= hi.x`, `lo.y <= hi.y`).
///
/// Rectangles model cell outlines, pin shapes, routing blockages and die
/// areas. A zero-width or zero-height rectangle is valid and models a wire
/// centreline or an on-track pin access point.
///
/// ```
/// use ffet_geom::Rect;
/// let die = Rect::new(0, 0, 10_000, 8_000);
/// assert_eq!(die.width(), 10_000);
/// assert_eq!(die.area(), 80_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates, normalising the corners
    /// so that `lo` is the lower-left and `hi` the upper-right.
    #[must_use]
    pub fn new(x1: Nm, y1: Nm, x2: Nm, y2: Nm) -> Rect {
        Rect {
            lo: Point::new(x1.min(x2), y1.min(y2)),
            hi: Point::new(x1.max(x2), y1.max(y2)),
        }
    }

    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    #[must_use]
    pub fn from_origin_size(origin: Point, width: Nm, height: Nm) -> Rect {
        assert!(width >= 0 && height >= 0, "negative rectangle size");
        Rect {
            lo: origin,
            hi: Point::new(origin.x + width, origin.y + height),
        }
    }

    /// Width along the x axis.
    #[must_use]
    pub fn width(&self) -> Nm {
        self.hi.x - self.lo.x
    }

    /// Height along the y axis.
    #[must_use]
    pub fn height(&self) -> Nm {
        self.hi.y - self.lo.y
    }

    /// Area in nm².
    #[must_use]
    pub fn area(&self) -> i128 {
        i128::from(self.width()) * i128::from(self.height())
    }

    /// Centre point (rounded toward `lo` for odd sizes).
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(self.lo.x + self.width() / 2, self.lo.y + self.height() / 2)
    }

    /// Whether `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether `other` lies entirely inside or on the boundary of `self`.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Whether the two rectangles share any point (boundary touch counts).
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Whether the two rectangles share interior area (boundary touch does
    /// not count). This is the test used for placement-overlap checks, where
    /// abutting cells are legal.
    #[must_use]
    pub fn overlaps_strictly(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// Intersection of the two rectangles, or `None` if they are disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect {
            lo: Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        })
    }

    /// Smallest rectangle covering both inputs.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Rectangle grown by `margin` on every side (shrunk for negative
    /// margins; the result is normalised so it never inverts).
    #[must_use]
    pub fn inflated(&self, margin: Nm) -> Rect {
        Rect::new(
            self.lo.x - margin,
            self.lo.y - margin,
            (self.hi.x + margin).max(self.lo.x - margin),
            (self.hi.y + margin).max(self.lo.y - margin),
        )
    }

    /// Rectangle translated by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: Nm, dy: Nm) -> Rect {
        Rect {
            lo: self.lo.translated(dx, dy),
            hi: self.hi.translated(dx, dy),
        }
    }

    /// Half-perimeter of the bounding box: the classic HPWL wirelength
    /// estimate when applied to a net's pin bounding box.
    #[must_use]
    pub fn half_perimeter(&self) -> Nm {
        self.width() + self.height()
    }

    /// Bounding box of a set of points; `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut r = Rect {
            lo: first,
            hi: first,
        };
        for p in iter {
            r.lo.x = r.lo.x.min(p.x);
            r.lo.y = r.lo.y.min(p.y);
            r.hi.x = r.hi.x.max(p.x);
            r.hi.y = r.hi.y.max(p.y);
        }
        Some(r)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn normalises_corners() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r.lo, Point::new(0, 5));
        assert_eq!(r.hi, Point::new(10, 20));
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(11, 11, 20, 20);
        assert!(!a.overlaps(&b));
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn abutting_rects_touch_but_do_not_strictly_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps_strictly(&b));
    }

    #[test]
    fn bounding_of_points() {
        let bb = Rect::bounding([Point::new(3, 9), Point::new(-1, 4), Point::new(7, 5)]).unwrap();
        assert_eq!(bb, Rect::new(-1, 4, 7, 9));
        assert_eq!(Rect::bounding(std::iter::empty()), None);
    }

    #[test]
    fn zero_area_rect_is_valid() {
        let wire = Rect::new(0, 5, 100, 5);
        assert_eq!(wire.height(), 0);
        assert_eq!(wire.area(), 0);
        assert!(wire.contains(Point::new(50, 5)));
    }

    fn random_rect(rng: &mut Rng64) -> Rect {
        Rect::new(
            rng.range_i64(-10_000, 10_000),
            rng.range_i64(-10_000, 10_000),
            rng.range_i64(-10_000, 10_000),
            rng.range_i64(-10_000, 10_000),
        )
    }

    #[test]
    fn intersection_contained_in_both() {
        let mut rng = Rng64::new(0x6e01);
        for _ in 0..256 {
            let a = random_rect(&mut rng);
            let b = random_rect(&mut rng);
            if let Some(i) = a.intersection(&b) {
                assert!(a.contains_rect(&i), "a={a} b={b}");
                assert!(b.contains_rect(&i), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn union_contains_both() {
        let mut rng = Rng64::new(0x6e02);
        for _ in 0..256 {
            let a = random_rect(&mut rng);
            let b = random_rect(&mut rng);
            let u = a.union(&b);
            assert!(u.contains_rect(&a), "a={a} b={b}");
            assert!(u.contains_rect(&b), "a={a} b={b}");
        }
    }

    #[test]
    fn overlap_symmetric() {
        let mut rng = Rng64::new(0x6e03);
        for _ in 0..256 {
            let a = random_rect(&mut rng);
            let b = random_rect(&mut rng);
            assert_eq!(a.overlaps(&b), b.overlaps(&a), "a={a} b={b}");
            assert_eq!(
                a.overlaps_strictly(&b),
                b.overlaps_strictly(&a),
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn inflate_then_deflate_is_identity_for_large_rects() {
        let mut rng = Rng64::new(0x6e04);
        for _ in 0..256 {
            let a = random_rect(&mut rng);
            let m = rng.range_i64(0, 100);
            if a.width() > 0 && a.height() > 0 {
                assert_eq!(a.inflated(m).inflated(-m), a, "a={a} m={m}");
            }
        }
    }
}
