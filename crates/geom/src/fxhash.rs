//! Deterministic, zero-dependency FxHash-style hashing.
//!
//! `std`'s default `RandomState` seeds SipHash from process entropy: secure
//! against HashDoS, but slow for small keys and — worse for this workspace —
//! a source of run-to-run iteration-order variation that deterministic code
//! must never depend on. The hot paths that intern [`crate::Point`]s (RC
//! extraction node building) want the opposite trade-off: a fixed-seed
//! multiplicative hash over machine words, the same scheme rustc itself
//! uses (`FxHasher`). Inputs are geometry, not attacker-controlled, so the
//! missing DoS resistance costs nothing.
//!
//! ```
//! use ffet_geom::{FxHashMap, Point};
//! let mut m: FxHashMap<Point, usize> = FxHashMap::default();
//! m.insert(Point::new(1, 2), 7);
//! assert_eq!(m.get(&Point::new(1, 2)), Some(&7));
//! ```

// ffet-analyze: allow(D001) -- this module DEFINES the deterministic aliases;
// the std types appear here only to be re-parameterized with FxBuildHasher.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc multiplicative-hash constant (64-bit golden-ratio
/// derived, odd so multiplication permutes `u64`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-seed word-at-a-time hasher (FxHash scheme): rotate, xor the
/// input word, multiply. Not DoS-resistant by design — see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add_word(i as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.add_word(i as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_word(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add_word(i as u64);
    }
}

/// Zero-sized `BuildHasher` producing [`FxHasher`]s from a fixed (zero)
/// state: equal keys hash equally in every process, on every platform.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the deterministic [`FxHasher`].
// ffet-analyze: allow(D001) -- the alias being defined: hasher is FxBuildHasher
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the deterministic [`FxHasher`].
// ffet-analyze: allow(D001) -- the alias being defined: hasher is FxBuildHasher
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal_and_fixed() {
        let p = Point::new(123, -456);
        assert_eq!(hash_of(&p), hash_of(&Point::new(123, -456)));
        assert_ne!(hash_of(&p), hash_of(&Point::new(124, -456)));
        // The scheme is seedless: the same value hashes identically in
        // every process. Pin one value so accidental scheme changes show.
        assert_eq!(hash_of(&0u64), 0);
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<Point, usize> = FxHashMap::default();
        let mut s: FxHashSet<Point> = FxHashSet::default();
        for i in 0..100 {
            m.insert(Point::new(i, -i), i as usize);
            s.insert(Point::new(i, -i));
        }
        assert_eq!(m.len(), 100);
        assert!((0..100).all(|i| m[&Point::new(i, -i)] == i as usize));
        assert!(s.contains(&Point::new(42, -42)));
    }
}
