//! Integer-nanometre geometry primitives for the FFET evaluation framework.
//!
//! All physical coordinates in the framework are expressed in integer
//! nanometres ([`Nm`]). Using integers everywhere keeps geometry exact:
//! placement legality, routing-track alignment and DEF round-trips never
//! accumulate floating-point error.
//!
//! # Example
//!
//! ```
//! use ffet_geom::{Point, Rect};
//!
//! let a = Rect::new(0, 0, 100, 50);
//! let b = Rect::new(60, 10, 160, 90);
//! assert!(a.overlaps(&b));
//! assert_eq!(a.intersection(&b), Some(Rect::new(60, 10, 100, 50)));
//! assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
//! ```

mod fxhash;
mod point;
mod rect;
mod rng;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use point::Point;
pub use rect::Rect;
pub use rng::Rng64;

/// Physical coordinate in nanometres.
pub type Nm = i64;

/// Axis of a wire segment or routing layer.
///
/// Routing layers alternate between horizontal and vertical preferred
/// directions; wire segments in the detailed-routing output are always
/// axis-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// Preferred direction parallel to the x axis.
    Horizontal,
    /// Preferred direction parallel to the y axis.
    Vertical,
}

impl Axis {
    /// The other axis.
    ///
    /// ```
    /// use ffet_geom::Axis;
    /// assert_eq!(Axis::Horizontal.perpendicular(), Axis::Vertical);
    /// ```
    #[must_use]
    pub fn perpendicular(self) -> Axis {
        match self {
            Axis::Horizontal => Axis::Vertical,
            Axis::Vertical => Axis::Horizontal,
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::Horizontal => f.write_str("H"),
            Axis::Vertical => f.write_str("V"),
        }
    }
}

/// Standard-cell placement orientation (DEF subset).
///
/// Only the orientations produced by row-based legalization are modelled:
/// north and the x-flipped variant used on alternating rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// `N` — as drawn.
    #[default]
    North,
    /// `FS` — flipped around the x axis (used on alternating rows so that
    /// power rails of adjacent rows share a track).
    FlippedSouth,
}

impl std::fmt::Display for Orientation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Orientation::North => f.write_str("N"),
            Orientation::FlippedSouth => f.write_str("FS"),
        }
    }
}

impl std::str::FromStr for Orientation {
    type Err = ParseOrientationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "N" => Ok(Orientation::North),
            "FS" => Ok(Orientation::FlippedSouth),
            _ => Err(ParseOrientationError(s.to_owned())),
        }
    }
}

/// Error returned when parsing an unknown orientation keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOrientationError(String);

impl std::fmt::Display for ParseOrientationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown orientation keyword `{}`", self.0)
    }
}

impl std::error::Error for ParseOrientationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_perpendicular_is_involution() {
        for axis in [Axis::Horizontal, Axis::Vertical] {
            assert_eq!(axis.perpendicular().perpendicular(), axis);
        }
    }

    #[test]
    fn orientation_roundtrip() {
        for o in [Orientation::North, Orientation::FlippedSouth] {
            let parsed: Orientation = o.to_string().parse().expect("roundtrip");
            assert_eq!(parsed, o);
        }
    }

    #[test]
    fn orientation_parse_rejects_unknown() {
        let err = "FN".parse::<Orientation>().unwrap_err();
        assert!(err.to_string().contains("FN"));
    }
}
