use crate::Nm;

/// A point in the plane, in integer nanometres.
///
/// ```
/// use ffet_geom::Point;
/// let p = Point::new(30, 40);
/// assert_eq!(p.manhattan(Point::ORIGIN), 70);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Point {
    /// X coordinate in nanometres.
    pub x: Nm,
    /// Y coordinate in nanometres.
    pub y: Nm,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: Nm, y: Nm) -> Point {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// Routed wirelength between two points on a Manhattan routing grid is
    /// bounded below by this distance, which is why half-perimeter wirelength
    /// estimates are built from it.
    #[must_use]
    pub fn manhattan(self, other: Point) -> Nm {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise translation by `(dx, dy)`.
    #[must_use]
    pub fn translated(self, dx: Nm, dy: Nm) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} {})", self.x, self.y)
    }
}

impl std::ops::Add for Point {
    type Output = Point;

    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;

    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(Nm, Nm)> for Point {
    fn from((x, y): (Nm, Nm)) -> Point {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn manhattan_of_axis_aligned_pairs() {
        assert_eq!(Point::new(0, 0).manhattan(Point::new(5, 0)), 5);
        assert_eq!(Point::new(0, 0).manhattan(Point::new(0, -5)), 5);
        assert_eq!(Point::new(2, 3).manhattan(Point::new(2, 3)), 0);
    }

    #[test]
    fn add_sub_inverse() {
        let a = Point::new(7, -3);
        let b = Point::new(-2, 11);
        assert_eq!(a + b - b, a);
    }

    fn random_point(rng: &mut Rng64, span: i64) -> Point {
        Point::new(rng.range_i64(-span, span), rng.range_i64(-span, span))
    }

    #[test]
    fn manhattan_symmetric() {
        let mut rng = Rng64::new(0x9e01);
        for _ in 0..256 {
            let a = random_point(&mut rng, 1_000_000);
            let b = random_point(&mut rng, 1_000_000);
            assert_eq!(a.manhattan(b), b.manhattan(a), "a={a} b={b}");
        }
    }

    #[test]
    fn manhattan_triangle_inequality() {
        let mut rng = Rng64::new(0x9e02);
        for _ in 0..256 {
            let a = random_point(&mut rng, 100_000);
            let b = random_point(&mut rng, 100_000);
            let c = random_point(&mut rng, 100_000);
            assert!(
                a.manhattan(c) <= a.manhattan(b) + b.manhattan(c),
                "a={a} b={b} c={c}"
            );
        }
    }
}
