//! Deterministic pseudo-random numbers for the framework's stochastic
//! stages (placement seeding, random test programs, randomized tests).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — small, fast,
//! and fully reproducible from a single `u64` seed on every platform, so
//! every flow stage stays bit-identical across runs and machines. Keeping
//! it in-workspace (instead of an external `rand` dependency) lets the
//! whole workspace build with no registry access.
//!
//! ```
//! use ffet_geom::Rng64;
//! let mut a = Rng64::new(42);
//! let mut b = Rng64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 step: the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng64 { s }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits (upper half of the 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        // Debiased multiply-shift (Lemire); the retry loop terminates with
        // overwhelming probability after one or two draws.
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            let hi128 = ((u128::from(r) * u128::from(span)) >> 64) as u64;
            let lo64 = (u128::from(r) * u128::from(span)) as u64;
            if lo64 >= threshold {
                return lo.wrapping_add(hi128 as i64);
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng64::new(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng64::new(7);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let mut c = Rng64::new(8);
        assert_ne!(a[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = Rng64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            seen[(v + 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng64::new(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniforms is close to 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(11);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
