//! Static timing analysis and power analysis over extracted parasitics.
//!
//! Mirrors the final stage of the paper's framework ("power and achieved
//! frequency is analyzed by commercially available tools based on the RC
//! net of the block"): NLDM cell delays from [`ffet_liberty`], Elmore wire
//! delays from [`ffet_rcx`], setup closure at the flip-flops, and an
//! activity-based power model.
//!
//! # Example
//!
//! ```
//! use ffet_cells::Library;
//! use ffet_netlist::NetlistBuilder;
//! use ffet_sta::{analyze_timing, StaConfig};
//! use ffet_tech::Technology;
//!
//! let lib = Library::new(Technology::ffet_3p5t());
//! let mut b = NetlistBuilder::new(&lib, "t");
//! let clk = b.input("clk");
//! let x = b.input("x");
//! let y = b.not(x);
//! let q = b.dff(y, clk);
//! b.output("q", q);
//! let nl = b.finish();
//! let parasitics = vec![None; nl.nets().len()];
//! let report = analyze_timing(&nl, &lib, &parasitics, &StaConfig::default())?;
//! assert!(report.max_frequency_ghz > 1.0);
//! # Ok::<(), ffet_netlist::CombLoopError>(())
//! ```

mod power;
mod timing;

pub use power::{analyze_power, PowerReport};
pub use timing::{analyze_timing, PathStep, TimingReport};

/// Analysis conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct StaConfig {
    /// Clock period for slack reporting, ps.
    pub clock_period_ps: f64,
    /// Switching-activity factor of signal nets (clock nets use 2.0).
    pub activity: f64,
    /// Slew assumed at primary inputs and clock pins, ps.
    pub input_slew_ps: f64,
}

impl Default for StaConfig {
    fn default() -> StaConfig {
        StaConfig {
            clock_period_ps: 666.7, // 1.5 GHz, the paper's main target
            activity: 0.15,
            input_slew_ps: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_cells::Library;
    use ffet_netlist::{Netlist, NetlistBuilder};
    use ffet_rcx::{NetParasitics, SinkParasitics};
    use ffet_tech::Technology;

    fn pipeline(lib: &Library, depth: usize) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "pipe");
        let clk = b.input("clk");
        b.netlist_mut().mark_clock(clk);
        let x = b.input("x");
        let mut v = b.dff(x, clk);
        for _ in 0..depth {
            v = b.not(v);
        }
        let q = b.dff(v, clk);
        b.output("q", q);
        b.finish()
    }

    #[test]
    fn deeper_logic_is_slower() {
        let lib = Library::new(Technology::ffet_3p5t());
        let shallow = pipeline(&lib, 2);
        let deep = pipeline(&lib, 20);
        let cfg = StaConfig::default();
        let none_s = vec![None; shallow.nets().len()];
        let none_d = vec![None; deep.nets().len()];
        let rs = analyze_timing(&shallow, &lib, &none_s, &cfg).unwrap();
        let rd = analyze_timing(&deep, &lib, &none_d, &cfg).unwrap();
        // Both share the clk→Q + setup constant; the deep pipe adds ~18
        // more inverter stages of combinational delay on top.
        assert!(rd.critical_path_ps > rs.critical_path_ps * 2.0);
        assert!(rd.max_frequency_ghz < rs.max_frequency_ghz);
        assert_eq!(rs.endpoints, 2 + 1); // 2 DFF D pins + 1 output port
    }

    #[test]
    fn wire_parasitics_slow_the_path() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = pipeline(&lib, 4);
        let cfg = StaConfig::default();
        let no_wires = vec![None; nl.nets().len()];
        let base = analyze_timing(&nl, &lib, &no_wires, &cfg).unwrap();
        // Give every net a hefty wire.
        let heavy: Vec<Option<NetParasitics>> = nl
            .nets()
            .iter()
            .map(|n| {
                Some(NetParasitics {
                    name: n.name.clone(),
                    total_cap_ff: 5.0,
                    sinks: n
                        .sinks
                        .iter()
                        .map(|_| SinkParasitics {
                            path_res_kohm: 0.5,
                            wire_elmore_ps: 3.0,
                            connected: true,
                        })
                        .collect(),
                })
            })
            .collect();
        let loaded = analyze_timing(&nl, &lib, &heavy, &cfg).unwrap();
        assert!(loaded.critical_path_ps > base.critical_path_ps + 10.0);
    }

    #[test]
    fn wns_matches_period_minus_critical() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = pipeline(&lib, 10);
        let cfg = StaConfig {
            clock_period_ps: 100.0,
            ..StaConfig::default()
        };
        let none = vec![None; nl.nets().len()];
        let r = analyze_timing(&nl, &lib, &none, &cfg).unwrap();
        assert!((r.wns_ps - (100.0 - r.critical_path_ps)).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_frequency_and_activity() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = pipeline(&lib, 8);
        let cfg = StaConfig::default();
        let none = vec![None; nl.nets().len()];
        let p1 = analyze_power(&nl, &lib, &none, &cfg, 1.0);
        let p2 = analyze_power(&nl, &lib, &none, &cfg, 2.0);
        assert!(p2.switching_mw > p1.switching_mw * 1.9);
        assert!(
            (p2.leakage_mw - p1.leakage_mw).abs() < 1e-12,
            "leakage is static"
        );
        let hot = StaConfig {
            activity: 0.5,
            ..StaConfig::default()
        };
        let p3 = analyze_power(&nl, &lib, &none, &hot, 1.0);
        // Clock power is activity-independent; data switching scales by
        // exactly 0.5/0.15.
        let data1 = p1.switching_mw - p1.clock_mw;
        let data3 = p3.switching_mw - p3.clock_mw;
        assert!(
            (data3 / data1 - 0.5 / 0.15).abs() < 0.01,
            "ratio {}",
            data3 / data1
        );
        assert!(p1.total_mw() > 0.0);
    }

    #[test]
    fn clock_nets_contribute_clock_power() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = pipeline(&lib, 4);
        let cfg = StaConfig::default();
        let none = vec![None; nl.nets().len()];
        let p = analyze_power(&nl, &lib, &none, &cfg, 1.5);
        assert!(p.clock_mw > 0.0);
        assert!(p.clock_mw <= p.switching_mw + p.internal_mw + 1e-12);
    }
}
