use crate::StaConfig;
use ffet_cells::{CellFunction, Library};
use ffet_geom::FxHashMap;
use ffet_netlist::{levelize, CombLoopError, Netlist, PinRef, PortDirection};
use ffet_rcx::NetParasitics;

/// One stage of the reported critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Net the stage drives.
    pub net: String,
    /// Arrival time at the net's driver output, ps.
    pub arrival_ps: f64,
    /// Cell delay contributed by this stage, ps.
    pub cell_delay_ps: f64,
    /// Wire delay from the previous stage's output to this stage's input,
    /// ps.
    pub wire_delay_ps: f64,
    /// Driving cell name.
    pub cell: String,
    /// Fanout of the net.
    pub fanout: usize,
}

/// Timing analysis results.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Longest register-to-register / port-to-register path including
    /// setup, ps.
    pub critical_path_ps: f64,
    /// Maximum operating frequency, GHz.
    pub max_frequency_ghz: f64,
    /// Worst slack at the configured clock period, ps (negative = failing).
    pub wns_ps: f64,
    /// Number of timing endpoints (DFF D pins + output ports).
    pub endpoints: usize,
    /// Name of the net driving the critical endpoint.
    pub critical_net: String,
    /// The critical path, source first (for timing debug and reports).
    pub path: Vec<PathStep>,
}

/// Runs static timing analysis.
///
/// Arrival times start at primary inputs and DFF clock-to-Q arcs, propagate
/// through NLDM cell delays (slew- and load-dependent) plus Elmore wire
/// delays from the extracted parasitics, and close at DFF D pins (with
/// setup) and output ports. The clock is ideal (CTS buffers exist for
/// power; skew is not modelled).
///
/// `parasitics[net]` must have its sinks in `net.sinks` order; `None`
/// falls back to zero wire parasitics (unplaced/unrouted evaluation).
///
/// # Errors
///
/// Propagates [`CombLoopError`] from levelization.
pub fn analyze_timing(
    netlist: &Netlist,
    library: &Library,
    parasitics: &[Option<NetParasitics>],
    config: &StaConfig,
) -> Result<TimingReport, CombLoopError> {
    let lv = levelize(netlist, library)?;
    let n_nets = netlist.nets().len();

    // Sink index of every input pin on its net.
    let mut sink_index: FxHashMap<PinRef, usize> = FxHashMap::default();
    for net in netlist.nets() {
        for (k, &s) in net.sinks.iter().enumerate() {
            sink_index.insert(s, k);
        }
    }

    // Effective load per net: wire cap + sink pin caps.
    let mut load = vec![0.0f64; n_nets];
    for (ni, net) in netlist.nets().iter().enumerate() {
        let mut c = parasitics
            .get(ni)
            .and_then(|p| p.as_ref())
            .map_or(0.0, |p| p.total_cap_ff);
        for s in &net.sinks {
            let inst = &netlist.instances()[s.inst.0 as usize];
            let cell = library.cell(inst.cell);
            c += cell.input_cap(s.pin.min(cell.timing.input_caps.len().saturating_sub(1)));
        }
        load[ni] = c;
    }

    // Arrival time and slew at each net's driver output pin; `prev` tracks
    // the worst input net plus that stage's (cell delay, wire delay) for
    // critical-path reporting.
    let mut arrival = vec![0.0f64; n_nets];
    let mut slew = vec![config.input_slew_ps; n_nets];
    let mut prev: Vec<Option<(u32, f64, f64)>> = vec![None; n_nets];

    // Sources: primary inputs are 0 (set already); DFF Q nets get clk→Q.
    for inst in netlist.instances() {
        let cell = library.cell(inst.cell);
        if cell.kind.function != CellFunction::Dff {
            continue;
        }
        let Some(q) = inst.conns[2] else { continue };
        let arc = &cell.timing.arcs[0];
        let d = arc.worst_delay(config.input_slew_ps, load[q.0 as usize]);
        arrival[q.0 as usize] = d;
        slew[q.0 as usize] = arc
            .slew_rise
            .lookup(config.input_slew_ps, load[q.0 as usize])
            .max(
                arc.slew_fall
                    .lookup(config.input_slew_ps, load[q.0 as usize]),
            );
    }

    // Wire delay/slew from a net's driver to one sink.
    let at_sink = |ni: usize, pin: PinRef, arrival: &[f64], slew: &[f64], pin_cap: f64| {
        let base_a = arrival[ni];
        let base_s = slew[ni];
        match parasitics.get(ni).and_then(|p| p.as_ref()) {
            Some(p) => {
                let k = sink_index.get(&pin).copied().unwrap_or(0);
                let sp = p.sinks.get(k).copied();
                match sp {
                    Some(sp) => {
                        let wire = sp.wire_elmore_ps + sp.path_res_kohm * pin_cap;
                        let s = (base_s * base_s + (2.2 * wire) * (2.2 * wire)).sqrt();
                        (base_a + wire, s)
                    }
                    None => (base_a, base_s),
                }
            }
            None => (base_a, base_s),
        }
    };

    // Propagate through combinational logic in topological order.
    for &inst_id in &lv.order {
        let inst = netlist.instance(inst_id);
        let cell = library.cell(inst.cell);
        let Some(out_pin) = cell.output_pin() else {
            continue;
        };
        let Some(out_net) = inst.conns[out_pin] else {
            continue;
        };
        let out_load = load[out_net.0 as usize];
        let mut best_a = 0.0f64;
        let mut best_s = config.input_slew_ps;
        let mut best_prev: Option<(u32, f64, f64)> = None;
        for (pi, conn) in inst
            .conns
            .iter()
            .enumerate()
            .take(cell.timing.input_caps.len())
        {
            let Some(in_net) = conn else { continue };
            let pin = PinRef::new(inst_id, pi);
            let pin_cap = cell.input_cap(pi);
            let (a_in, s_in) = at_sink(in_net.0 as usize, pin, &arrival, &slew, pin_cap);
            let arc = cell
                .timing
                .arcs
                .iter()
                .find(|arc| arc.from_input == pi)
                .unwrap_or(&cell.timing.arcs[0]);
            let d = arc.worst_delay(s_in, out_load);
            let s_out = arc
                .slew_rise
                .lookup(s_in, out_load)
                .max(arc.slew_fall.lookup(s_in, out_load));
            if a_in + d > best_a {
                best_a = a_in + d;
                best_s = s_out;
                best_prev = Some((in_net.0, d, a_in - arrival[in_net.0 as usize]));
            }
        }
        arrival[out_net.0 as usize] = best_a;
        slew[out_net.0 as usize] = best_s;
        prev[out_net.0 as usize] = best_prev;
    }

    // Endpoints: DFF D pins (setup) and output ports.
    let mut critical = 0.0f64;
    let mut critical_net = String::new();
    let mut critical_net_id: Option<u32> = None;
    let mut endpoints = 0;
    for (ii, inst) in netlist.instances().iter().enumerate() {
        let cell = library.cell(inst.cell);
        if cell.kind.function != CellFunction::Dff {
            continue;
        }
        let Some(d_net) = inst.conns[0] else { continue };
        endpoints += 1;
        let pin = PinRef::new(ffet_netlist::InstId(ii as u32), 0);
        let pin_cap = cell.input_cap(0);
        let (a, _) = at_sink(d_net.0 as usize, pin, &arrival, &slew, pin_cap);
        let total = a + cell.timing.setup_ps;
        ffet_obs::observe("sta.slack_ps", config.clock_period_ps - total);
        if total > critical {
            critical = total;
            critical_net = netlist.nets()[d_net.0 as usize].name.clone();
            critical_net_id = Some(d_net.0);
        }
    }
    for port in netlist.ports() {
        if port.direction != PortDirection::Output {
            continue;
        }
        endpoints += 1;
        let a = arrival[port.net.0 as usize];
        ffet_obs::observe("sta.slack_ps", config.clock_period_ps - a);
        if a > critical {
            critical = a;
            critical_net = netlist.nets()[port.net.0 as usize].name.clone();
            critical_net_id = Some(port.net.0);
        }
    }

    // Backtrack the critical path for reporting.
    let mut path = Vec::new();
    let mut cursor = critical_net_id;
    while let Some(ni) = cursor {
        let net = &netlist.nets()[ni as usize];
        let cell = net.driver.map_or_else(
            || "<port>".to_owned(),
            |d| {
                library
                    .cell(netlist.instances()[d.inst.0 as usize].cell)
                    .name
                    .clone()
            },
        );
        let (p, cell_d, wire_d) = match prev[ni as usize] {
            Some((p, c, w)) => (Some(p), c, w),
            None => (None, 0.0, 0.0),
        };
        path.push(PathStep {
            net: net.name.clone(),
            arrival_ps: arrival[ni as usize],
            cell_delay_ps: cell_d,
            wire_delay_ps: wire_d,
            cell,
            fanout: net.sinks.len(),
        });
        cursor = p;
        if path.len() > n_nets {
            break; // defensive: never loop
        }
    }
    path.reverse();

    let critical = critical.max(1.0);
    ffet_obs::gauge_set("sta.critical_path_ps", critical);
    ffet_obs::gauge_set("sta.wns_ps", config.clock_period_ps - critical);
    Ok(TimingReport {
        critical_path_ps: critical,
        max_frequency_ghz: 1000.0 / critical,
        wns_ps: config.clock_period_ps - critical,
        endpoints,
        critical_net,
        path,
    })
}
