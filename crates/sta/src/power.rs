use crate::StaConfig;
use ffet_cells::Library;
use ffet_liberty::VDD;
use ffet_netlist::Netlist;
use ffet_rcx::NetParasitics;

/// Power analysis results, mW.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Net-switching power (wire + pin caps), mW.
    pub switching_mw: f64,
    /// Cell-internal power (short-circuit + intra-cell caps), mW.
    pub internal_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Clock-network share of switching+internal, mW (reporting).
    pub clock_mw: f64,
}

impl PowerReport {
    /// Total power, mW.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.switching_mw + self.internal_mw + self.leakage_mw
    }

    /// Power efficiency in GHz/mW at a given frequency — the paper's
    /// Fig. 13 metric.
    #[must_use]
    pub fn efficiency_ghz_per_mw(&self, freq_ghz: f64) -> f64 {
        freq_ghz / self.total_mw()
    }
}

/// Runs power analysis at operating frequency `freq_ghz`.
///
/// * Switching: `α · C_net · VDD² · f` per net, with `α` the configured
///   activity (clock nets switch twice per cycle, `α = 2`).
/// * Internal: `α · E_transition(slew, load) · f` per cell.
/// * Leakage: library leakage, frequency-independent.
///
/// `fJ × GHz = µW`; results are reported in mW.
#[must_use]
pub fn analyze_power(
    netlist: &Netlist,
    library: &Library,
    parasitics: &[Option<NetParasitics>],
    config: &StaConfig,
    freq_ghz: f64,
) -> PowerReport {
    let mut switching_uw = 0.0f64;
    let mut clock_uw = 0.0f64;
    for (ni, net) in netlist.nets().iter().enumerate() {
        let mut cap = parasitics
            .get(ni)
            .and_then(|p| p.as_ref())
            .map_or(0.0, |p| p.total_cap_ff);
        for s in &net.sinks {
            let cell = library.cell(netlist.instances()[s.inst.0 as usize].cell);
            cap += cell.input_cap(s.pin.min(cell.timing.input_caps.len().saturating_sub(1)));
        }
        let activity = if net.is_clock { 2.0 } else { config.activity };
        let p = activity * cap * VDD * VDD * freq_ghz;
        switching_uw += p;
        if net.is_clock {
            clock_uw += p;
        }
    }

    let mut internal_uw = 0.0f64;
    let mut leakage_uw = 0.0f64;
    for inst in netlist.instances() {
        let cell = library.cell(inst.cell);
        leakage_uw += cell.timing.leakage_nw / 1000.0;
        if cell.timing.arcs.is_empty() {
            continue;
        }
        let out_load = cell
            .output_pin()
            .and_then(|op| inst.conns.get(op).copied().flatten())
            .map_or(1.0, |net| {
                parasitics
                    .get(net.0 as usize)
                    .and_then(|p| p.as_ref())
                    .map_or(1.0, |p| p.total_cap_ff)
            });
        let is_clock_cell = inst
            .conns
            .iter()
            .flatten()
            .any(|n| netlist.nets()[n.0 as usize].is_clock)
            && cell.kind.function == ffet_cells::CellFunction::ClkBuf;
        let activity = if is_clock_cell { 2.0 } else { config.activity };
        let e = cell
            .timing
            .transition_energy(config.input_slew_ps, out_load);
        let p = activity * e * freq_ghz;
        internal_uw += p;
        if is_clock_cell {
            clock_uw += p;
        }
    }

    PowerReport {
        switching_mw: switching_uw / 1000.0,
        internal_mw: internal_uw / 1000.0,
        leakage_mw: leakage_uw / 1000.0,
        clock_mw: clock_uw / 1000.0,
    }
}
