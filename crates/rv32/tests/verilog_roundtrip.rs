//! Interchange check at full scale: the RV32 core survives a structural
//! Verilog write → parse round trip with identical structure and function.

use ffet_cells::Library;
use ffet_netlist::{from_verilog, to_verilog};
use ffet_rv32::{build_core, cosimulate, programs, Rv32Core};
use ffet_tech::Technology;

#[test]
fn rv32_core_verilog_roundtrip() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    let text = to_verilog(&core.netlist, &lib);
    assert!(text.len() > 100_000, "a real netlist, not a stub");

    let parsed = from_verilog(&text, &lib).expect("core netlist parses back");
    assert_eq!(parsed.instances().len(), core.netlist.instances().len());
    assert_eq!(parsed.nets().len(), core.netlist.nets().len());
    assert_eq!(parsed.ports().len(), core.netlist.ports().len());
    parsed.check_consistency(&lib).expect("consistent");

    // The parsed netlist is still a working CPU: rebuild the interface net
    // ids by name and cosimulate.
    let find_bus = |name: &str, width: usize| -> Vec<ffet_netlist::NetId> {
        (0..width)
            .map(|i| {
                let port_name = format!("{name}[{i}]");
                parsed
                    .ports()
                    .iter()
                    .find(|p| p.name == port_name)
                    .map_or_else(|| panic!("port {port_name}"), |p| p.net)
            })
            .collect()
    };
    let find = |name: &str| {
        parsed
            .ports()
            .iter()
            .find(|p| p.name == name)
            .map_or_else(|| panic!("port {name}"), |p| p.net)
    };
    let clk = find("clk");
    let imem_addr = find_bus("imem_addr", 32);
    let imem_rdata = find_bus("imem_rdata", 32);
    let dmem_addr = find_bus("dmem_addr", 32);
    let dmem_wdata = find_bus("dmem_wdata", 32);
    let dmem_wmask = find_bus("dmem_wmask", 4);
    let dmem_we = find("dmem_we");
    let dmem_rdata = find_bus("dmem_rdata", 32);
    let halt = find("halt");
    let dbg_rd_we = find("dbg_rd_we");
    let dbg_rd_addr = find_bus("dbg_rd_addr", 5);
    let dbg_rd_data = find_bus("dbg_rd_data", 32);
    let reparsed_core = Rv32Core {
        netlist: parsed,
        clk,
        imem_addr,
        imem_rdata,
        dmem_addr,
        dmem_wdata,
        dmem_wmask,
        dmem_we,
        dmem_rdata,
        halt,
        dbg_rd_we,
        dbg_rd_addr,
        dbg_rd_data,
        dff_count: core.dff_count,
    };
    cosimulate(&reparsed_core, &lib, &programs::sum_loop(10), 1_000)
        .expect("round-tripped core still executes programs");
}
