//! End-to-end verification of the gate-level RV32I core: lockstep
//! cosimulation against the reference ISS on directed and random programs,
//! in both the FFET and CFET libraries.

use ffet_cells::Library;
use ffet_rv32::{build_core, cosimulate, programs};
use ffet_tech::Technology;

#[test]
fn fibonacci_runs_on_gate_level_core() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    let report = cosimulate(&core, &lib, &programs::fibonacci(10), 2_000)
        .expect("fibonacci cosimulates cleanly");
    assert!(report.retired > 50, "retired {}", report.retired);
}

#[test]
fn sum_loop_runs_on_gate_level_core() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    cosimulate(&core, &lib, &programs::sum_loop(50), 2_000).expect("sum loop cosimulates");
}

#[test]
fn memory_stress_runs_on_gate_level_core() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    cosimulate(&core, &lib, &programs::memory_stress(), 500).expect("memory ops cosimulate");
}

#[test]
fn alu_torture_runs_on_gate_level_core() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    cosimulate(&core, &lib, &programs::alu_torture(), 500).expect("ALU ops cosimulate");
}

#[test]
fn branch_torture_runs_on_gate_level_core() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    cosimulate(&core, &lib, &programs::branch_torture(), 500).expect("branches cosimulate");
}

#[test]
fn random_programs_cosimulate() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    for seed in 0..8u64 {
        let prog = programs::random_program(seed, 80);
        cosimulate(&core, &lib, &prog, 1_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn core_is_library_agnostic() {
    // The same generator must produce a functionally identical core in the
    // CFET baseline library (different geometry, same logic).
    let lib = Library::new(Technology::cfet_4t());
    let core = build_core(&lib, "rv32_core_cfet");
    cosimulate(&core, &lib, &programs::fibonacci(8), 2_000).expect("CFET core works too");
}

#[test]
fn gcd_runs_on_gate_level_core() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    cosimulate(&core, &lib, &programs::gcd(48, 36), 2_000).expect("gcd cosimulates");
}

#[test]
fn memcpy_runs_on_gate_level_core() {
    let lib = Library::new(Technology::ffet_3p5t());
    let core = build_core(&lib, "rv32_core");
    cosimulate(&core, &lib, &programs::memcpy_checksum(8), 5_000).expect("memcpy cosimulates");
}
