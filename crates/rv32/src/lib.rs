//! Gate-level RV32I core generator, reference ISS and cosimulation.
//!
//! The paper evaluates its FFET framework on a 32-bit RISC-V core; this
//! crate is that benchmark design, built from scratch:
//!
//! * [`build_core`] — generates a single-cycle RV32I core as a flat
//!   standard-cell netlist (~10k gates, DFF/MUX-heavy via its 31×32
//!   register file — the profile that exercises the FFET Split Gate cells),
//! * [`Iss`] — a reference instruction-set simulator,
//! * [`cosimulate`] — lockstep comparison of the gate-level core against
//!   the ISS, retiring instruction by instruction,
//! * [`programs`] — directed and random verification programs.
//!
//! # Example
//!
//! ```no_run
//! use ffet_cells::Library;
//! use ffet_rv32::{build_core, cosimulate, programs};
//! use ffet_tech::Technology;
//!
//! let lib = Library::new(Technology::ffet_3p5t());
//! let core = build_core(&lib, "rv32_core");
//! let report = cosimulate(&core, &lib, &programs::fibonacci(10), 2_000)?;
//! assert!(report.retired > 10);
//! # Ok::<(), ffet_rv32::CosimError>(())
//! ```

mod alu;
mod bus;
mod core;
mod cosim;
mod isa;
mod iss;
pub mod programs;
mod regfile;

pub use crate::core::{build_core, Rv32Core};
pub use alu::{build_alu, Alu};
pub use bus::{
    add_word, and_word, decode, eq_word, extend, gate_word, mux_word, not_word, onehot_mux,
    or_word, shift_left, shift_right, sub_word, xor_word, Consts, Word,
};
pub use cosim::{cosimulate, CosimError, CosimReport};
pub use isa::{encode, Instr, Opcode};
pub use iss::{Iss, IssError, Retire};
pub use regfile::{build_regfile, Regfile};
