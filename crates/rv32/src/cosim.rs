//! Cosimulation: runs a program on the gate-level core and the reference
//! ISS in lockstep, comparing every retired instruction.

use crate::core::Rv32Core;
use crate::iss::{Iss, IssError, Retire};
use ffet_cells::Library;
use ffet_geom::FxHashMap;
use ffet_netlist::{CombLoopError, Simulator};

/// A mismatch between the gate-level core and the reference model.
#[derive(Debug, Clone, PartialEq)]
pub enum CosimError {
    /// The netlist failed to levelize.
    CombLoop(String),
    /// The ISS raised an architectural error.
    Iss(IssError),
    /// The cores disagreed at the given cycle.
    Mismatch {
        /// Cycle index of the divergence.
        cycle: usize,
        /// Human-readable description of the differing field.
        detail: String,
    },
    /// The program did not halt within the cycle budget.
    Timeout {
        /// Budget that was exhausted.
        max_cycles: usize,
    },
}

impl std::fmt::Display for CosimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CosimError::CombLoop(i) => write!(f, "combinational loop through {i}"),
            CosimError::Iss(e) => write!(f, "reference model error: {e}"),
            CosimError::Mismatch { cycle, detail } => {
                write!(f, "gate-level/ISS mismatch at cycle {cycle}: {detail}")
            }
            CosimError::Timeout { max_cycles } => {
                write!(f, "program did not halt within {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for CosimError {}

impl From<CombLoopError> for CosimError {
    fn from(e: CombLoopError) -> CosimError {
        CosimError::CombLoop(e.instance)
    }
}

impl From<IssError> for CosimError {
    fn from(e: IssError) -> CosimError {
        CosimError::Iss(e)
    }
}

/// Result of a successful cosimulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimReport {
    /// Instructions retired (== cycles on the single-cycle core).
    pub retired: usize,
    /// Final PC.
    pub final_pc: u32,
    /// The ISS retire trace.
    pub trace: Vec<Retire>,
}

/// Runs `program` (loaded at address 0) on both models until `EBREAK`/
/// `ECALL` or `max_cycles`, comparing PC, writeback and store activity at
/// every instruction.
///
/// # Errors
///
/// Any divergence or model error is reported as a [`CosimError`].
pub fn cosimulate(
    core: &Rv32Core,
    library: &Library,
    program: &[u32],
    max_cycles: usize,
) -> Result<CosimReport, CosimError> {
    let mut sim = Simulator::new(&core.netlist, library)?;
    sim.reset_state(false);
    let mut iss = Iss::new();
    iss.load_program(0, program);

    let mut mem: FxHashMap<u32, u32> = FxHashMap::default();
    for (i, &w) in program.iter().enumerate() {
        mem.insert(4 * i as u32, w);
    }

    let mut trace = Vec::new();
    for cycle in 0..max_cycles {
        // Fetch.
        let pc = sim.get_bus(&core.imem_addr) as u32;
        let instr = mem.get(&pc).copied().unwrap_or(0);
        sim.set_bus(&core.imem_rdata, instr as u64);
        sim.settle();

        // Service a potential load (combinational read).
        let addr = sim.get_bus(&core.dmem_addr) as u32 & !3;
        let rdata = mem.get(&addr).copied().unwrap_or(0);
        sim.set_bus(&core.dmem_rdata, rdata as u64);
        sim.settle();

        // Reference model steps one instruction.
        let retire = iss.step()?;
        if retire.pc != pc {
            return Err(CosimError::Mismatch {
                cycle,
                detail: format!("pc: gate {pc:#010x}, iss {:#010x}", retire.pc),
            });
        }

        // Compare register writeback.
        let g_we = sim.get(core.dbg_rd_we);
        let g_rd = sim.get_bus(&core.dbg_rd_addr) as usize;
        let g_data = sim.get_bus(&core.dbg_rd_data) as u32;
        match retire.rd {
            Some((rd, val)) => {
                if !g_we || g_rd != rd || g_data != val {
                    return Err(CosimError::Mismatch {
                        cycle,
                        detail: format!(
                            "writeback: gate we={g_we} x{g_rd}={g_data:#010x}, iss x{rd}={val:#010x}"
                        ),
                    });
                }
            }
            None => {
                if g_we {
                    return Err(CosimError::Mismatch {
                        cycle,
                        detail: format!("spurious writeback x{g_rd}={g_data:#010x}"),
                    });
                }
            }
        }

        // Compare and apply stores.
        let g_store = sim.get(core.dmem_we);
        if g_store {
            let s_addr = sim.get_bus(&core.dmem_addr) as u32 & !3;
            let wdata = sim.get_bus(&core.dmem_wdata) as u32;
            let wmask = sim.get_bus(&core.dmem_wmask) as u8;
            let old = mem.get(&s_addr).copied().unwrap_or(0);
            let mut merged = old;
            for byte in 0..4 {
                if wmask >> byte & 1 == 1 {
                    let m = 0xffu32 << (byte * 8);
                    merged = (merged & !m) | (wdata & m);
                }
            }
            mem.insert(s_addr, merged);
            match retire.store {
                Some((i_addr, i_word, i_mask)) => {
                    if i_addr != s_addr || i_mask != wmask || i_word != merged {
                        return Err(CosimError::Mismatch {
                            cycle,
                            detail: format!(
                                "store: gate [{s_addr:#x}]={merged:#010x}/{wmask:#x}, iss [{i_addr:#x}]={i_word:#010x}/{i_mask:#x}"
                            ),
                        });
                    }
                }
                None => {
                    return Err(CosimError::Mismatch {
                        cycle,
                        detail: format!("spurious store to {s_addr:#x}"),
                    });
                }
            }
        } else if retire.store.is_some() {
            return Err(CosimError::Mismatch {
                cycle,
                detail: "missing store".to_owned(),
            });
        }

        let halted = sim.get(core.halt);
        if halted != retire.halt {
            return Err(CosimError::Mismatch {
                cycle,
                detail: format!("halt: gate {halted}, iss {}", retire.halt),
            });
        }
        trace.push(retire);
        if halted {
            return Ok(CosimReport {
                retired: cycle + 1,
                final_pc: pc,
                trace,
            });
        }
        sim.clock_edge();
    }
    Err(CosimError::Timeout { max_cycles })
}
