//! RV32I instruction formats, opcodes and an assembler-style encoder.
//!
//! Shared by the reference ISS, the gate-level core generator's testbench
//! and the cosimulation harness, so all three agree on one decode.

/// Major opcodes of RV32I (bits 6..0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// `LUI` — load upper immediate.
    Lui,
    /// `AUIPC` — add upper immediate to PC.
    Auipc,
    /// `JAL` — jump and link.
    Jal,
    /// `JALR` — jump and link register.
    Jalr,
    /// Conditional branches (`BEQ`…`BGEU`).
    Branch,
    /// Loads (`LB`…`LHU`).
    Load,
    /// Stores (`SB`…`SW`).
    Store,
    /// Register-immediate ALU ops.
    OpImm,
    /// Register-register ALU ops.
    Op,
    /// `FENCE`/`FENCE.I` — treated as NOP by this core.
    MiscMem,
    /// `ECALL`/`EBREAK` — treated as halt markers by the harness.
    System,
}

impl Opcode {
    /// Decodes bits 6..0.
    #[must_use]
    pub fn decode(bits: u32) -> Option<Opcode> {
        match bits & 0x7f {
            0x37 => Some(Opcode::Lui),
            0x17 => Some(Opcode::Auipc),
            0x6f => Some(Opcode::Jal),
            0x67 => Some(Opcode::Jalr),
            0x63 => Some(Opcode::Branch),
            0x03 => Some(Opcode::Load),
            0x23 => Some(Opcode::Store),
            0x13 => Some(Opcode::OpImm),
            0x33 => Some(Opcode::Op),
            0x0f => Some(Opcode::MiscMem),
            0x73 => Some(Opcode::System),
            _ => None,
        }
    }

    /// Encodes to bits 6..0.
    #[must_use]
    pub fn bits(&self) -> u32 {
        match self {
            Opcode::Lui => 0x37,
            Opcode::Auipc => 0x17,
            Opcode::Jal => 0x6f,
            Opcode::Jalr => 0x67,
            Opcode::Branch => 0x63,
            Opcode::Load => 0x03,
            Opcode::Store => 0x23,
            Opcode::OpImm => 0x13,
            Opcode::Op => 0x33,
            Opcode::MiscMem => 0x0f,
            Opcode::System => 0x73,
        }
    }
}

/// Field accessors over a raw 32-bit instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr(pub u32);

impl Instr {
    /// Destination register index.
    #[must_use]
    pub fn rd(&self) -> usize {
        ((self.0 >> 7) & 0x1f) as usize
    }

    /// First source register index.
    #[must_use]
    pub fn rs1(&self) -> usize {
        ((self.0 >> 15) & 0x1f) as usize
    }

    /// Second source register index.
    #[must_use]
    pub fn rs2(&self) -> usize {
        ((self.0 >> 20) & 0x1f) as usize
    }

    /// `funct3` field.
    #[must_use]
    pub fn funct3(&self) -> u32 {
        (self.0 >> 12) & 0x7
    }

    /// `funct7` field.
    #[must_use]
    pub fn funct7(&self) -> u32 {
        self.0 >> 25
    }

    /// Major opcode.
    #[must_use]
    pub fn opcode(&self) -> Option<Opcode> {
        Opcode::decode(self.0)
    }

    /// I-type immediate (sign-extended).
    #[must_use]
    pub fn imm_i(&self) -> i32 {
        (self.0 as i32) >> 20
    }

    /// S-type immediate.
    #[must_use]
    pub fn imm_s(&self) -> i32 {
        (((self.0 & 0xfe00_0000) as i32) >> 20) | (((self.0 >> 7) & 0x1f) as i32)
    }

    /// B-type immediate.
    #[must_use]
    pub fn imm_b(&self) -> i32 {
        (((self.0 & 0x8000_0000) as i32) >> 19)
            | (((self.0 >> 7) & 0x1) as i32) << 11
            | (((self.0 >> 25) & 0x3f) as i32) << 5
            | (((self.0 >> 8) & 0xf) as i32) << 1
    }

    /// U-type immediate (already shifted).
    #[must_use]
    pub fn imm_u(&self) -> i32 {
        (self.0 & 0xffff_f000) as i32
    }

    /// J-type immediate.
    #[must_use]
    pub fn imm_j(&self) -> i32 {
        (((self.0 & 0x8000_0000) as i32) >> 11)
            | (((self.0 >> 12) & 0xff) as i32) << 12
            | (((self.0 >> 20) & 0x1) as i32) << 11
            | (((self.0 >> 21) & 0x3ff) as i32) << 1
    }
}

/// Assembler helpers producing raw instruction words.
pub mod encode {
    fn r(f7: u32, rs2: usize, rs1: usize, f3: u32, rd: usize, op: u32) -> u32 {
        (f7 << 25)
            | ((rs2 as u32) << 20)
            | ((rs1 as u32) << 15)
            | (f3 << 12)
            | ((rd as u32) << 7)
            | op
    }

    fn i(imm: i32, rs1: usize, f3: u32, rd: usize, op: u32) -> u32 {
        (((imm as u32) & 0xfff) << 20) | ((rs1 as u32) << 15) | (f3 << 12) | ((rd as u32) << 7) | op
    }

    fn s(imm: i32, rs2: usize, rs1: usize, f3: u32, op: u32) -> u32 {
        let imm = imm as u32;
        ((imm >> 5 & 0x7f) << 25)
            | ((rs2 as u32) << 20)
            | ((rs1 as u32) << 15)
            | (f3 << 12)
            | ((imm & 0x1f) << 7)
            | op
    }

    fn b(imm: i32, rs2: usize, rs1: usize, f3: u32) -> u32 {
        let imm = imm as u32;
        ((imm >> 12 & 1) << 31)
            | ((imm >> 5 & 0x3f) << 25)
            | ((rs2 as u32) << 20)
            | ((rs1 as u32) << 15)
            | (f3 << 12)
            | ((imm >> 1 & 0xf) << 8)
            | ((imm >> 11 & 1) << 7)
            | 0x63
    }

    /// `ADD rd, rs1, rs2`.
    #[must_use]
    pub fn add(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 0, rd, 0x33)
    }
    /// `SUB rd, rs1, rs2`.
    #[must_use]
    pub fn sub(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0x20, rs2, rs1, 0, rd, 0x33)
    }
    /// `SLL rd, rs1, rs2`.
    #[must_use]
    pub fn sll(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 1, rd, 0x33)
    }
    /// `SLT rd, rs1, rs2`.
    #[must_use]
    pub fn slt(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 2, rd, 0x33)
    }
    /// `SLTU rd, rs1, rs2`.
    #[must_use]
    pub fn sltu(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 3, rd, 0x33)
    }
    /// `XOR rd, rs1, rs2`.
    #[must_use]
    pub fn xor(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 4, rd, 0x33)
    }
    /// `SRL rd, rs1, rs2`.
    #[must_use]
    pub fn srl(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 5, rd, 0x33)
    }
    /// `SRA rd, rs1, rs2`.
    #[must_use]
    pub fn sra(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0x20, rs2, rs1, 5, rd, 0x33)
    }
    /// `OR rd, rs1, rs2`.
    #[must_use]
    pub fn or(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 6, rd, 0x33)
    }
    /// `AND rd, rs1, rs2`.
    #[must_use]
    pub fn and(rd: usize, rs1: usize, rs2: usize) -> u32 {
        r(0, rs2, rs1, 7, rd, 0x33)
    }

    /// `ADDI rd, rs1, imm`.
    #[must_use]
    pub fn addi(rd: usize, rs1: usize, imm: i32) -> u32 {
        i(imm, rs1, 0, rd, 0x13)
    }
    /// `SLTI rd, rs1, imm`.
    #[must_use]
    pub fn slti(rd: usize, rs1: usize, imm: i32) -> u32 {
        i(imm, rs1, 2, rd, 0x13)
    }
    /// `SLTIU rd, rs1, imm`.
    #[must_use]
    pub fn sltiu(rd: usize, rs1: usize, imm: i32) -> u32 {
        i(imm, rs1, 3, rd, 0x13)
    }
    /// `XORI rd, rs1, imm`.
    #[must_use]
    pub fn xori(rd: usize, rs1: usize, imm: i32) -> u32 {
        i(imm, rs1, 4, rd, 0x13)
    }
    /// `ORI rd, rs1, imm`.
    #[must_use]
    pub fn ori(rd: usize, rs1: usize, imm: i32) -> u32 {
        i(imm, rs1, 6, rd, 0x13)
    }
    /// `ANDI rd, rs1, imm`.
    #[must_use]
    pub fn andi(rd: usize, rs1: usize, imm: i32) -> u32 {
        i(imm, rs1, 7, rd, 0x13)
    }
    /// `SLLI rd, rs1, shamt`.
    #[must_use]
    pub fn slli(rd: usize, rs1: usize, sh: u32) -> u32 {
        i(sh as i32, rs1, 1, rd, 0x13)
    }
    /// `SRLI rd, rs1, shamt`.
    #[must_use]
    pub fn srli(rd: usize, rs1: usize, sh: u32) -> u32 {
        i(sh as i32, rs1, 5, rd, 0x13)
    }
    /// `SRAI rd, rs1, shamt`.
    #[must_use]
    pub fn srai(rd: usize, rs1: usize, sh: u32) -> u32 {
        i((sh | 0x400) as i32, rs1, 5, rd, 0x13)
    }

    /// `LUI rd, imm` (`imm` is the full 32-bit value with low 12 bits zero).
    #[must_use]
    pub fn lui(rd: usize, imm: u32) -> u32 {
        (imm & 0xffff_f000) | ((rd as u32) << 7) | 0x37
    }
    /// `AUIPC rd, imm`.
    #[must_use]
    pub fn auipc(rd: usize, imm: u32) -> u32 {
        (imm & 0xffff_f000) | ((rd as u32) << 7) | 0x17
    }

    /// `JAL rd, offset`.
    #[must_use]
    pub fn jal(rd: usize, offset: i32) -> u32 {
        let imm = offset as u32;
        ((imm >> 20 & 1) << 31)
            | ((imm >> 1 & 0x3ff) << 21)
            | ((imm >> 11 & 1) << 20)
            | ((imm >> 12 & 0xff) << 12)
            | ((rd as u32) << 7)
            | 0x6f
    }
    /// `JALR rd, rs1, imm`.
    #[must_use]
    pub fn jalr(rd: usize, rs1: usize, imm: i32) -> u32 {
        i(imm, rs1, 0, rd, 0x67)
    }

    /// `BEQ rs1, rs2, offset`.
    #[must_use]
    pub fn beq(rs1: usize, rs2: usize, off: i32) -> u32 {
        b(off, rs2, rs1, 0)
    }
    /// `BNE rs1, rs2, offset`.
    #[must_use]
    pub fn bne(rs1: usize, rs2: usize, off: i32) -> u32 {
        b(off, rs2, rs1, 1)
    }
    /// `BLT rs1, rs2, offset`.
    #[must_use]
    pub fn blt(rs1: usize, rs2: usize, off: i32) -> u32 {
        b(off, rs2, rs1, 4)
    }
    /// `BGE rs1, rs2, offset`.
    #[must_use]
    pub fn bge(rs1: usize, rs2: usize, off: i32) -> u32 {
        b(off, rs2, rs1, 5)
    }
    /// `BLTU rs1, rs2, offset`.
    #[must_use]
    pub fn bltu(rs1: usize, rs2: usize, off: i32) -> u32 {
        b(off, rs2, rs1, 6)
    }
    /// `BGEU rs1, rs2, offset`.
    #[must_use]
    pub fn bgeu(rs1: usize, rs2: usize, off: i32) -> u32 {
        b(off, rs2, rs1, 7)
    }

    /// `LB rd, offset(rs1)`.
    #[must_use]
    pub fn lb(rd: usize, rs1: usize, off: i32) -> u32 {
        i(off, rs1, 0, rd, 0x03)
    }
    /// `LH rd, offset(rs1)`.
    #[must_use]
    pub fn lh(rd: usize, rs1: usize, off: i32) -> u32 {
        i(off, rs1, 1, rd, 0x03)
    }
    /// `LW rd, offset(rs1)`.
    #[must_use]
    pub fn lw(rd: usize, rs1: usize, off: i32) -> u32 {
        i(off, rs1, 2, rd, 0x03)
    }
    /// `LBU rd, offset(rs1)`.
    #[must_use]
    pub fn lbu(rd: usize, rs1: usize, off: i32) -> u32 {
        i(off, rs1, 4, rd, 0x03)
    }
    /// `LHU rd, offset(rs1)`.
    #[must_use]
    pub fn lhu(rd: usize, rs1: usize, off: i32) -> u32 {
        i(off, rs1, 5, rd, 0x03)
    }

    /// `SB rs2, offset(rs1)`.
    #[must_use]
    pub fn sb(rs2: usize, rs1: usize, off: i32) -> u32 {
        s(off, rs2, rs1, 0, 0x23)
    }
    /// `SH rs2, offset(rs1)`.
    #[must_use]
    pub fn sh(rs2: usize, rs1: usize, off: i32) -> u32 {
        s(off, rs2, rs1, 1, 0x23)
    }
    /// `SW rs2, offset(rs1)`.
    #[must_use]
    pub fn sw(rs2: usize, rs1: usize, off: i32) -> u32 {
        s(off, rs2, rs1, 2, 0x23)
    }

    /// `NOP` (`ADDI x0, x0, 0`).
    #[must_use]
    pub fn nop() -> u32 {
        addi(0, 0, 0)
    }
    /// `EBREAK` — the cosim harness treats it as program end.
    #[must_use]
    pub fn ebreak() -> u32 {
        0x0010_0073
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_roundtrips() {
        for off in [-4096i32, -2048, -2, 0, 2, 14, 2046, 4094] {
            let w = Instr(encode::beq(1, 2, off & !1));
            assert_eq!(w.imm_b(), off & !1, "B imm {off}");
        }
        for off in [-1048576i32, -4096, -2, 0, 2, 4096, 1048574] {
            let w = Instr(encode::jal(1, off & !1));
            assert_eq!(w.imm_j(), off & !1, "J imm {off}");
        }
        for imm in [-2048i32, -1, 0, 1, 2047] {
            assert_eq!(Instr(encode::addi(3, 4, imm)).imm_i(), imm);
            assert_eq!(Instr(encode::sw(3, 4, imm)).imm_s(), imm);
        }
    }

    #[test]
    fn field_extraction() {
        let w = Instr(encode::add(5, 6, 7));
        assert_eq!(w.rd(), 5);
        assert_eq!(w.rs1(), 6);
        assert_eq!(w.rs2(), 7);
        assert_eq!(w.funct3(), 0);
        assert_eq!(w.funct7(), 0);
        assert_eq!(w.opcode(), Some(Opcode::Op));
        let w = Instr(encode::sub(1, 2, 3));
        assert_eq!(w.funct7(), 0x20);
    }

    #[test]
    fn opcode_roundtrip() {
        for op in [
            Opcode::Lui,
            Opcode::Auipc,
            Opcode::Jal,
            Opcode::Jalr,
            Opcode::Branch,
            Opcode::Load,
            Opcode::Store,
            Opcode::OpImm,
            Opcode::Op,
            Opcode::MiscMem,
            Opcode::System,
        ] {
            assert_eq!(Opcode::decode(op.bits()), Some(op));
        }
        assert_eq!(Opcode::decode(0x7f), None);
    }

    #[test]
    fn lui_keeps_upper_bits() {
        let w = Instr(encode::lui(3, 0xdead_b000));
        assert_eq!(w.imm_u() as u32, 0xdead_b000);
        assert_eq!(w.rd(), 3);
    }
}
