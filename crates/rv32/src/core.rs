//! The single-cycle gate-level RV32I core generator.
//!
//! Produces a flat standard-cell netlist: fetch (PC register + incrementer),
//! decode (opcode matchers, immediate muxes), a 31×32-DFF register file,
//! the shared-adder ALU, branch resolution, and byte/halfword load/store
//! alignment. Memories are external: the testbench (or SoC) services the
//! `imem`/`dmem` buses combinationally, as in a classic single-cycle
//! organization.

use crate::alu::build_alu;
use crate::bus::{decode, fast_add, mux_word, onehot_mux, shift_left, shift_right, Consts, Word};
use crate::regfile::build_regfile;
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_netlist::{NetId, Netlist, NetlistBuilder};

/// The generated core: netlist plus the nets of its external interface.
pub struct Rv32Core {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Clock input.
    pub clk: NetId,
    /// Instruction fetch address (the PC), output.
    pub imem_addr: Word,
    /// Instruction word, input (must reflect `imem_addr` combinationally).
    pub imem_rdata: Word,
    /// Data address, output (word-aligned access; low bits select bytes).
    pub dmem_addr: Word,
    /// Store data (shifted into byte lanes), output.
    pub dmem_wdata: Word,
    /// Active byte lanes of a store, output (4 bits).
    pub dmem_wmask: Word,
    /// Store strobe, output.
    pub dmem_we: NetId,
    /// Load data, input (must reflect `dmem_addr` combinationally).
    pub dmem_rdata: Word,
    /// High while the current instruction is `ECALL`/`EBREAK`.
    pub halt: NetId,
    /// Debug: register writeback strobe this cycle.
    pub dbg_rd_we: NetId,
    /// Debug: writeback register index (5 bits).
    pub dbg_rd_addr: Word,
    /// Debug: writeback data.
    pub dbg_rd_data: Word,
    /// Flip-flop count (PC + register file).
    pub dff_count: usize,
}

/// Matches `value` against the 7-bit opcode field (instruction bits 6..0).
fn opcode_is(b: &mut NetlistBuilder<'_>, ins: &[NetId], value: u32) -> NetId {
    let terms: Vec<NetId> = (0..7)
        .map(|i| {
            if value >> i & 1 == 1 {
                ins[i]
            } else {
                b.not(ins[i])
            }
        })
        .collect();
    b.and_tree(&terms)
}

/// Generates the core over `library`. The design name becomes the netlist
/// name (`rv32_core` in the paper-scale experiments).
#[must_use]
pub fn build_core(library: &Library, name: &str) -> Rv32Core {
    let mut b = NetlistBuilder::new(library, name);
    let clk = b.input("clk");
    b.netlist_mut().mark_clock(clk);
    let imem_rdata = b.input_bus("imem_rdata", 32);
    let dmem_rdata = b.input_bus("dmem_rdata", 32);
    let consts = Consts::new(&mut b);

    // ---------------- Fetch: PC register ----------------
    let pc: Word = (0..32)
        .map(|i| b.netlist_mut().add_net(format!("pc[{i}]")))
        .collect();
    let four = consts.word(4, 32);
    let zero = consts.zero();
    let (pc_plus4, _) = fast_add(&mut b, &pc, &four, zero);

    let ins = &imem_rdata;

    // ---------------- Decode ----------------
    let is_lui = opcode_is(&mut b, ins, 0x37);
    let is_auipc = opcode_is(&mut b, ins, 0x17);
    let is_jal = opcode_is(&mut b, ins, 0x6f);
    let is_jalr = opcode_is(&mut b, ins, 0x67);
    let is_branch = opcode_is(&mut b, ins, 0x63);
    let is_load = opcode_is(&mut b, ins, 0x03);
    let is_store = opcode_is(&mut b, ins, 0x23);
    let is_op_imm = opcode_is(&mut b, ins, 0x13);
    let is_op = opcode_is(&mut b, ins, 0x33);
    let is_system = opcode_is(&mut b, ins, 0x73);

    let rd_addr: Word = ins[7..12].to_vec();
    let f3: Word = ins[12..15].to_vec();
    let rs1_addr: Word = ins[15..20].to_vec();
    let rs2_addr: Word = ins[20..25].to_vec();
    let bit30 = ins[30];
    let f3_hot = decode(&mut b, &f3);

    // Immediates (sign bit is ins[31]).
    let sign = ins[31];
    let mut imm_i: Word = ins[20..32].to_vec();
    imm_i.resize(32, sign);
    let mut imm_s: Word = ins[7..12].to_vec();
    imm_s.extend_from_slice(&ins[25..32]);
    imm_s.resize(32, sign);
    let mut imm_b: Word = vec![consts.zero()];
    imm_b.extend_from_slice(&ins[8..12]);
    imm_b.extend_from_slice(&ins[25..31]);
    imm_b.push(ins[7]);
    imm_b.resize(32, sign);
    let mut imm_u: Word = consts.word(0, 12);
    imm_u.extend_from_slice(&ins[12..32]);
    let mut imm_j: Word = vec![consts.zero()];
    imm_j.extend_from_slice(&ins[21..31]);
    imm_j.push(ins[20]);
    imm_j.extend_from_slice(&ins[12..20]);
    imm_j.resize(32, sign);

    // ---------------- Register file ----------------
    // Writeback signals are defined below; allocate their nets first.
    let rd_we = b.netlist_mut().add_net("rd_we");
    let rd_data: Word = (0..32)
        .map(|i| b.netlist_mut().add_net(format!("rd_data[{i}]")))
        .collect();
    let rf = build_regfile(
        &mut b, &consts, clk, rd_we, &rd_addr, &rd_data, &rs1_addr, &rs2_addr,
    );
    let rs1 = rf.rdata1.clone();
    let rs2 = rf.rdata2.clone();

    // ---------------- ALU ----------------
    // Second operand: rs2 for OP/branch, store imm for stores, else imm_i.
    let use_rs2 = b.or2(is_op, is_branch);
    let imm_is = mux_word(&mut b, &imm_i, &imm_s, is_store);
    let alu_b = mux_word(&mut b, &imm_is, &rs2, use_rs2);

    // funct3 honored only by OP/OP-IMM; other consumers force ADD.
    let use_f3 = b.or2(is_op, is_op_imm);
    let alu_f3_hot: Word = f3_hot
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            if i == 0 {
                // hot0 OR not(use_f3): forced add when f3 is ignored.
                let n = b.not(use_f3);
                b.or2(h, n)
            } else {
                b.and2(h, use_f3)
            }
        })
        .collect();

    // sub for: branches; SLT/SLTU(I); SUB (OP with bit30, f3=0).
    let cmp = b.or2(f3_hot[2], f3_hot[3]);
    let cmp_en = b.and2(use_f3, cmp);
    let sub_op = {
        let t = b.and2(is_op, bit30);
        b.and2(t, f3_hot[0])
    };
    let sub_en = {
        let t = b.or2(is_branch, cmp_en);
        b.or2(t, sub_op)
    };
    let sra_en = {
        let t = b.and2(use_f3, bit30);
        b.and2(t, f3_hot[5])
    };

    let alu = build_alu(&mut b, &consts, &rs1, &alu_b, &alu_f3_hot, sub_en, sra_en);

    // ---------------- PC-relative adder (branch/JAL targets, AUIPC) ------
    let imm_bj = mux_word(&mut b, &imm_b, &imm_j, is_jal);
    let pc_imm_sel = mux_word(&mut b, &imm_bj, &imm_u, is_auipc);
    let (pc_imm, _) = fast_add(&mut b, &pc, &pc_imm_sel, zero);

    // ---------------- Branch resolution ----------------
    let ne = b.not(alu.eq);
    let ge = b.not(alu.lt);
    let geu = b.not(alu.ltu);
    let taken_cond = onehot_mux(
        &mut b,
        &[
            (std::slice::from_ref(&alu.eq), f3_hot[0]),
            (std::slice::from_ref(&ne), f3_hot[1]),
            (std::slice::from_ref(&alu.lt), f3_hot[4]),
            (std::slice::from_ref(&ge), f3_hot[5]),
            (std::slice::from_ref(&alu.ltu), f3_hot[6]),
            (std::slice::from_ref(&geu), f3_hot[7]),
        ],
    )[0];
    let branch_taken = b.and2(is_branch, taken_cond);

    // ---------------- Next PC ----------------
    let take_pc_imm = b.or2(branch_taken, is_jal);
    let mut next_pc = mux_word(&mut b, &pc_plus4, &pc_imm, take_pc_imm);
    // JALR: ALU sum with bit 0 cleared.
    let mut jalr_target = alu.sum.clone();
    jalr_target[0] = consts.zero();
    next_pc = mux_word(&mut b, &next_pc, &jalr_target, is_jalr);

    // PC DFFs.
    let dff = library
        .id(CellKind::new(CellFunction::Dff, DriveStrength::D1))
        .expect("DFFD1 in library");
    for i in 0..32 {
        let library = b.library();
        b.netlist_mut().add_instance(
            library,
            format!("pc_dff_{i}"),
            dff,
            &[Some(next_pc[i]), Some(clk), Some(pc[i])],
        );
    }

    // ---------------- Load unit ----------------
    let addr_lo: Word = alu.sum[..2].to_vec();
    // Shift amount = addr[1:0] * 8 → bits [3] and [4] of a 5-bit shamt.
    let shamt: Word = vec![
        zeroed(&consts),
        zeroed(&consts),
        zeroed(&consts),
        addr_lo[0],
        addr_lo[1],
    ];
    let aligned = shift_right(&mut b, &dmem_rdata, &shamt, zero);
    // Sign/zero extension: f3 bit2 (ins[14]) = unsigned.
    let load_unsigned = f3[2];
    let b7 = aligned[7];
    let b15 = aligned[15];
    let nu = b.not(load_unsigned);
    let byte_fill = b.and2(b7, nu);
    let half_fill = b.and2(b15, nu);
    let mut load_byte: Word = aligned[..8].to_vec();
    load_byte.resize(32, byte_fill);
    let mut load_half: Word = aligned[..16].to_vec();
    load_half.resize(32, half_fill);
    // Width select on f3[1:0]: 0 = byte, 1 = half, 2 = word.
    let is_word = f3[1];
    let is_half = f3[0];
    let mut load_data = mux_word(&mut b, &load_byte, &load_half, is_half);
    load_data = mux_word(&mut b, &load_data, &dmem_rdata, is_word);

    // ---------------- Store unit ----------------
    let store_shifted = shift_left(&mut b, &rs2, &shamt, zero);
    let lane_hot = decode(&mut b, &addr_lo); // 4 one-hot byte lanes
    let mask_b: Word = lane_hot.clone();
    let nl1 = b.not(addr_lo[1]);
    let mask_h: Word = vec![nl1, nl1, addr_lo[1], addr_lo[1]];
    let ones = consts.word(0xf, 4);
    let mut wmask = mux_word(&mut b, &mask_b, &mask_h, is_half);
    wmask = mux_word(&mut b, &wmask, &ones, is_word);
    let dmem_wmask: Word = wmask.iter().map(|&m| b.and2(m, is_store)).collect();

    // ---------------- Writeback ----------------
    let is_jump = b.or2(is_jal, is_jalr);
    let wb_ops = [
        (&alu.result, { b.or2(is_op, is_op_imm) }),
        (&load_data, is_load),
        (&pc_plus4, is_jump),
        (&imm_u, is_lui),
        (&pc_imm, is_auipc),
    ];
    let wb_choices: Vec<(&[NetId], NetId)> =
        wb_ops.iter().map(|(w, s)| (w.as_slice(), *s)).collect();
    let wb_data = onehot_mux(&mut b, &wb_choices);

    let writes_rd = {
        let a = b.or2(is_op, is_op_imm);
        let c = b.or2(is_load, is_jump);
        let d = b.or2(is_lui, is_auipc);
        let e = b.or2(a, c);
        b.or2(e, d)
    };
    let rd_nonzero = b.or_tree(&rd_addr);
    let rd_we_val = b.and2(writes_rd, rd_nonzero);

    // Bind the pre-allocated writeback nets with buffers.
    bind(&mut b, rd_we_val, rd_we);
    for i in 0..32 {
        bind(&mut b, wb_data[i], rd_data[i]);
    }

    // ---------------- Outputs ----------------
    b.output_bus("imem_addr", &pc);
    b.output_bus("dmem_addr", &alu.sum);
    b.output_bus("dmem_wdata", &store_shifted);
    b.output_bus("dmem_wmask", &dmem_wmask);
    b.output("dmem_we", is_store);
    b.output("halt", is_system);
    b.output("dbg_rd_we", rd_we);
    b.output_bus("dbg_rd_addr", &rd_addr);
    b.output_bus("dbg_rd_data", &rd_data);

    let dff_count = rf.dff_count + 32;
    Rv32Core {
        netlist: b.finish(),
        clk,
        imem_addr: pc,
        imem_rdata,
        dmem_addr: alu.sum,
        dmem_wdata: store_shifted,
        dmem_wmask,
        dmem_we: is_store,
        dmem_rdata,
        halt: is_system,
        dbg_rd_we: rd_we,
        dbg_rd_addr: rd_addr,
        dbg_rd_data: rd_data,
        dff_count,
    }
}

/// Ties `src` to the pre-allocated net `dst` through a buffer (the netlist
/// model has single-driver nets, so aliasing is done with a BUF instance).
fn bind(b: &mut NetlistBuilder<'_>, src: NetId, dst: NetId) {
    let buf = b
        .library()
        .id(CellKind::new(CellFunction::Buf, DriveStrength::D1))
        .expect("BUFD1 in library");
    let library = b.library();
    let name = format!("bind_{}_{}", src.0, dst.0);
    b.netlist_mut()
        .add_instance(library, name, buf, &[Some(src), Some(dst)]);
}

fn zeroed(consts: &Consts) -> NetId {
    consts.zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_netlist::stats;
    use ffet_tech::Technology;

    #[test]
    fn core_builds_and_levelizes() {
        let lib = Library::new(Technology::ffet_3p5t());
        let core = build_core(&lib, "rv32_test");
        core.netlist.check_consistency(&lib).unwrap();
        let s = stats(&core.netlist, &lib);
        assert!(s.instances > 5_000, "instances = {}", s.instances);
        assert_eq!(s.sequential, 31 * 32 + 32);
        assert_eq!(core.dff_count, 31 * 32 + 32);
        // Must levelize (no combinational loops).
        let sim = ffet_netlist::Simulator::new(&core.netlist, &lib).unwrap();
        assert!(sim.depth() > 10);
    }
}
