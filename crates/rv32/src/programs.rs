//! Directed and random RV32I test programs for verification.

use crate::isa::encode::*;
use ffet_geom::Rng64;

/// Iterative Fibonacci: leaves `fib(n)` in x10 and a scratch table in
/// memory at 0x100.
#[must_use]
pub fn fibonacci(n: u32) -> Vec<u32> {
    vec![
        addi(1, 0, 0),        // x1 = fib(i)
        addi(2, 0, 1),        // x2 = fib(i+1)
        addi(3, 0, n as i32), // counter
        addi(4, 0, 0x100),    // table base
        // loop:
        beq(3, 0, 32), // while counter != 0, else jump to done
        add(5, 1, 2),
        addi(1, 2, 0),
        addi(2, 5, 0),
        sw(1, 4, 0),
        addi(4, 4, 4),
        addi(3, 3, -1),
        jal(0, -28),
        // done:
        addi(10, 1, 0),
        ebreak(),
    ]
}

/// Sums the integers 1..=n with a branch loop; result in x10.
#[must_use]
pub fn sum_loop(n: i32) -> Vec<u32> {
    vec![
        addi(1, 0, 0),
        addi(2, 0, n),
        // loop:
        beq(2, 0, 16),
        add(1, 1, 2),
        addi(2, 2, -1),
        jal(0, -12),
        // done:
        addi(10, 1, 0),
        ebreak(),
    ]
}

/// Byte/halfword memory stress: writes a pattern with SB/SH, reads it back
/// with every load flavour, and accumulates a checksum in x10.
#[must_use]
pub fn memory_stress() -> Vec<u32> {
    vec![
        lui(1, 0x0000_1000), // base = 0x1000
        addi(2, 0, -86),     // 0xAA pattern (sign-extended)
        sb(2, 1, 0),
        sb(2, 1, 1),
        addi(3, 0, 0x355),
        sh(3, 1, 2),
        lw(4, 1, 0),
        lb(5, 1, 0),
        lbu(6, 1, 1),
        lh(7, 1, 2),
        lhu(8, 1, 0),
        add(10, 4, 5),
        add(10, 10, 6),
        add(10, 10, 7),
        add(10, 10, 8),
        sw(10, 1, 8),
        ebreak(),
    ]
}

/// Exercises every ALU operation and both shift kinds; checksum in x10.
#[must_use]
pub fn alu_torture() -> Vec<u32> {
    let mut p = vec![
        lui(1, 0xdead_b000),
        addi(1, 1, 0x6ef),
        lui(2, 0x1234_5000),
        addi(2, 2, 0x678),
        addi(10, 0, 0),
    ];
    for mk in [add, sub, sll, slt, sltu, xor, srl, sra, or, and] {
        p.push(mk(3, 1, 2));
        p.push(add(10, 10, 3));
    }
    for (mk, imm) in [
        (addi as fn(usize, usize, i32) -> u32, -1905i32),
        (slti, 100),
        (sltiu, -1),
        (xori, 0x7ff),
        (ori, 0x555),
        (andi, -256),
    ] {
        p.push(mk(3, 1, imm));
        p.push(add(10, 10, 3));
    }
    for (mk, sh) in [
        (slli as fn(usize, usize, u32) -> u32, 13u32),
        (srli, 7),
        (srai, 19),
    ] {
        p.push(mk(3, 1, sh));
        p.push(add(10, 10, 3));
    }
    p.push(ebreak());
    p
}

/// Branch/jump torture: every branch kind in taken and not-taken flavours,
/// plus JAL/JALR link-register checks; checksum in x10.
#[must_use]
pub fn branch_torture() -> Vec<u32> {
    vec![
        addi(1, 0, 5),
        addi(2, 0, -5),
        addi(10, 0, 0),
        // beq not taken, bne taken.
        beq(1, 2, 8),
        addi(10, 10, 1),
        bne(1, 2, 8),
        addi(10, 10, 100), // skipped
        // blt: -5 < 5 taken.
        blt(2, 1, 8),
        addi(10, 10, 100), // skipped
        // bltu: 0xfffffffb < 5 is false → not taken.
        bltu(2, 1, 8),
        addi(10, 10, 2),
        // bge: 5 >= -5 taken.
        bge(1, 2, 8),
        addi(10, 10, 100), // skipped
        // bgeu: 5 >= 0xfffffffb false → not taken.
        bgeu(1, 2, 8),
        addi(10, 10, 4),
        // jal skips one instruction, link x5 = 0x40.
        jal(5, 8),
        addi(10, 10, 100), // 0x40, skipped
        add(10, 10, 5),    // 0x44, += link address
        // jalr via register to the final ebreak.
        addi(6, 0, 0x54),
        jalr(7, 6, 0),
        addi(10, 10, 100), // 0x50, skipped
        ebreak(),          // 0x54
    ]
}

/// Euclid's GCD of two constants by repeated subtraction; result in x10.
#[must_use]
pub fn gcd(a: i32, b: i32) -> Vec<u32> {
    vec![
        addi(1, 0, a),
        addi(2, 0, b),
        // loop: while a != b
        beq(1, 2, 24),  // 0x08 → done at 0x20
        blt(1, 2, 12),  // 0x0c → swap-subtract at 0x18
        sub(1, 1, 2),   // 0x10: a -= b
        jal(0, -12),    // 0x14 → loop
        sub(2, 2, 1),   // 0x18: b -= a
        jal(0, -20),    // 0x1c → loop
        addi(10, 1, 0), // 0x20 done:
        ebreak(),
    ]
}

/// Copies a block of words with LW/SW in a loop, then checksums the
/// destination; checksum in x10.
#[must_use]
pub fn memcpy_checksum(words: usize) -> Vec<u32> {
    let n = words as i32;
    let mut p = vec![
        lui(1, 0x0000_1000), // src
        lui(2, 0x0000_2000), // dst
        addi(3, 0, n),       // count
        addi(4, 0, 1),       // value seed
    ];
    // Fill source with a recognisable ramp.
    p.extend([
        // fill: 0x10
        beq(3, 0, 24), // → copy setup at +24
        sw(4, 1, 0),
        addi(1, 1, 4),
        addi(4, 4, 3),
        addi(3, 3, -1),
        jal(0, -20),
        // copy setup: 0x28
        lui(1, 0x0000_1000),
        addi(3, 0, n),
    ]);
    p.extend([
        // copy loop: 0x30
        beq(3, 0, 28), // → checksum setup at +28
        lw(5, 1, 0),
        sw(5, 2, 0),
        addi(1, 1, 4),
        addi(2, 2, 4),
        addi(3, 3, -1),
        jal(0, -24),
        // checksum setup: 0x4c
        lui(2, 0x0000_2000),
        addi(3, 0, n),
        addi(10, 0, 0),
    ]);
    p.extend([
        // checksum loop: 0x58
        beq(3, 0, 24), // → done at +24
        lw(5, 2, 0),
        add(10, 10, 5),
        addi(2, 2, 4),
        addi(3, 3, -1),
        jal(0, -20),
        // done: 0x70
        ebreak(),
    ]);
    p
}

/// Generates a random but safe instruction mix: ALU ops over x1–x15 with
/// occasional word-aligned loads/stores into a scratch page, ending in
/// `EBREAK`. Forward-only short branches keep the control flow bounded.
#[must_use]
pub fn random_program(seed: u64, len: usize) -> Vec<u32> {
    let mut rng = Rng64::new(seed);
    let mut p: Vec<u32> = vec![
        lui(15, 0x0000_2000), // scratch base in x15
    ];
    while p.len() < len {
        let rd = rng.range_usize(1, 15);
        let rs1 = rng.range_usize(0, 15);
        let rs2 = rng.range_usize(0, 15);
        match rng.range_i64(0, 10) {
            0 => p.push(addi(rd, rs1, rng.range_i64(-2048, 2048) as i32)),
            1 => p.push(add(rd, rs1, rs2)),
            2 => p.push(sub(rd, rs1, rs2)),
            3 => p.push(xor(rd, rs1, rs2)),
            4 => match rng.range_i64(0, 3) {
                0 => p.push(sll(rd, rs1, rs2)),
                1 => p.push(srl(rd, rs1, rs2)),
                _ => p.push(sra(rd, rs1, rs2)),
            },
            5 => p.push(slt(rd, rs1, rs2)),
            6 => p.push(lui(rd, rng.next_u32())),
            7 => {
                // Word-aligned store then load within the scratch page.
                let off = rng.range_i64(0, 64) as i32 * 4;
                p.push(sw(rs2, 15, off));
                p.push(lw(rd, 15, off));
            }
            8 => {
                // Short forward branch over one instruction.
                let branch = match rng.range_i64(0, 4) {
                    0 => beq(rs1, rs2, 8),
                    1 => bne(rs1, rs2, 8),
                    2 => blt(rs1, rs2, 8),
                    _ => bgeu(rs1, rs2, 8),
                };
                p.push(branch);
                p.push(addi(rd, rd, 1));
            }
            _ => {
                // Sub-word memory op, byte-aligned within the page.
                let off = rng.range_i64(0, 255) as i32;
                p.push(sb(rs2, 15, off));
                p.push(lbu(rd, 15, off));
            }
        }
    }
    p.push(ebreak());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iss::Iss;

    #[test]
    fn fibonacci_reference_result() {
        let mut iss = Iss::new();
        iss.load_program(0, &fibonacci(10));
        iss.run(1000).unwrap();
        assert_eq!(iss.reg(10), 55);
        // Table contains the intermediate values.
        assert_eq!(iss.read_word(0x100), 1);
        assert_eq!(iss.read_word(0x104), 1);
        assert_eq!(iss.read_word(0x108), 2);
    }

    #[test]
    fn sum_loop_reference_result() {
        let mut iss = Iss::new();
        iss.load_program(0, &sum_loop(100));
        iss.run(1000).unwrap();
        assert_eq!(iss.reg(10), 5050);
    }

    #[test]
    fn branch_torture_checksum() {
        let mut iss = Iss::new();
        iss.load_program(0, &branch_torture());
        let trace = iss.run(100).unwrap();
        assert!(trace.last().unwrap().halt);
        // No skipped instruction contributed its +100.
        assert!(iss.reg(10) < 100, "x10 = {}", iss.reg(10));
        assert_eq!(iss.reg(10), 1 + 2 + 4 + 0x40);
    }

    #[test]
    fn gcd_reference_results() {
        for (a, b, expect) in [(48, 36, 12), (17, 5, 1), (100, 100, 100), (21, 14, 7)] {
            let mut iss = Iss::new();
            iss.load_program(0, &gcd(a, b));
            iss.run(2_000).unwrap();
            assert_eq!(iss.reg(10), expect as u32, "gcd({a}, {b})");
        }
    }

    #[test]
    fn memcpy_checksum_reference_result() {
        let mut iss = Iss::new();
        iss.load_program(0, &memcpy_checksum(8));
        let trace = iss.run(5_000).unwrap();
        assert!(trace.last().unwrap().halt);
        // Ramp 1, 4, 7, … (step 3), 8 terms → 8·1 + 3·(0+1+…+7) = 92.
        assert_eq!(iss.reg(10), 92);
        // Destination actually holds the copy.
        assert_eq!(iss.read_word(0x2000), 1);
        assert_eq!(iss.read_word(0x2004), 4);
    }

    #[test]
    fn random_programs_halt_on_iss() {
        for seed in 0..4u64 {
            let prog = random_program(seed, 60);
            let mut iss = Iss::new();
            iss.load_program(0, &prog);
            let trace = iss.run(500).unwrap();
            assert!(trace.last().unwrap().halt, "seed {seed} did not halt");
        }
    }
}
