//! Gate-level RV32I ALU: shared add/sub, comparisons, barrel shifter and
//! bitwise logic, with a one-hot `funct3` result select.

use crate::bus::{
    and_word, fast_add, onehot_mux, or_word, shift_left, shift_right, xor_word, Consts, Word,
};
use ffet_netlist::{NetId, NetlistBuilder};

/// The ALU's outputs: the selected result plus the comparison flags the
/// branch unit reuses.
pub struct Alu {
    /// Selected 32-bit result (valid for OP/OP-IMM; carries the address for
    /// loads/stores when the decode forces the add function).
    pub result: Word,
    /// `a == b`.
    pub eq: NetId,
    /// Signed `a < b`.
    pub lt: NetId,
    /// Unsigned `a < b`.
    pub ltu: NetId,
    /// Raw adder output (`a + b_eff`), used as the memory address.
    pub sum: Word,
}

/// Builds the ALU.
///
/// * `funct3_hot` — one-hot decode of `funct3` (8 nets).
/// * `sub_en` — high to compute `a - b` on the add path (SUB, SLT/SLTU,
///   branches).
/// * `sra_en` — high to arithmetic-fill the right shifter.
pub fn build_alu(
    b: &mut NetlistBuilder<'_>,
    consts: &Consts,
    a: &[NetId],
    bb: &[NetId],
    funct3_hot: &[NetId],
    sub_en: NetId,
    sra_en: NetId,
) -> Alu {
    assert_eq!(a.len(), 32);
    assert_eq!(bb.len(), 32);
    assert_eq!(funct3_hot.len(), 8);
    let xlen = 32;

    // Shared adder: b_eff = b ^ sub_en (per bit), carry-in = sub_en.
    let sub_word_b: Word = bb.iter().map(|&x| b.xor2(x, sub_en)).collect();
    let (sum, cout) = fast_add(b, a, &sub_word_b, sub_en);

    // Comparison flags (valid when sub_en is high).
    // Signed: lt = diff[31] ^ overflow; overflow = (a31 ^ b31) & (a31 ^ diff31).
    let a31 = a[xlen - 1];
    let b31 = bb[xlen - 1];
    let d31 = sum[xlen - 1];
    let ax = b.xor2(a31, b31);
    let dx = b.xor2(a31, d31);
    let overflow = b.and2(ax, dx);
    let lt = b.xor2(d31, overflow);
    // Unsigned: borrow = !carry_out.
    let ltu = b.not(cout);
    // Equality: difference is zero.
    let any = b.or_tree(&sum);
    let eq = b.not(any);

    // Shifter.
    let shamt: Word = bb[..5].to_vec();
    let zero = consts.zero();
    let sra_fill = b.and2(a31, sra_en);
    let srl_sra = shift_right(b, a, &shamt, sra_fill);
    let sll = shift_left(b, a, &shamt, zero);

    // Bitwise.
    let and_r = and_word(b, a, bb);
    let or_r = or_word(b, a, bb);
    let xor_r = xor_word(b, a, bb);

    // Zero-extended comparison results.
    let mut slt_w = consts.word(0, xlen);
    slt_w[0] = lt;
    let mut sltu_w = consts.word(0, xlen);
    sltu_w[0] = ltu;

    let result = onehot_mux(
        b,
        &[
            (&sum, funct3_hot[0]),
            (&sll, funct3_hot[1]),
            (&slt_w, funct3_hot[2]),
            (&sltu_w, funct3_hot[3]),
            (&xor_r, funct3_hot[4]),
            (&srl_sra, funct3_hot[5]),
            (&or_r, funct3_hot[6]),
            (&and_r, funct3_hot[7]),
        ],
    );

    Alu {
        result,
        eq,
        lt,
        ltu,
        sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::decode;
    use ffet_cells::Library;
    use ffet_netlist::Simulator;
    use ffet_tech::Technology;

    struct Bench {
        nl: ffet_netlist::Netlist,
        a: Word,
        b: Word,
        f3: Word,
        sub: NetId,
        sra: NetId,
        result: Word,
        eq: NetId,
        lt: NetId,
        ltu: NetId,
    }

    fn bench(lib: &Library) -> Bench {
        let mut bld = NetlistBuilder::new(lib, "alu");
        let a = bld.input_bus("a", 32);
        let bw = bld.input_bus("b", 32);
        let f3 = bld.input_bus("f3", 3);
        let sub = bld.input("sub");
        let sra = bld.input("sra");
        let consts = Consts::new(&mut bld);
        let hot = decode(&mut bld, &f3);
        let alu = build_alu(&mut bld, &consts, &a, &bw, &hot, sub, sra);
        bld.output_bus("r", &alu.result);
        bld.output("eq", alu.eq);
        bld.output("lt", alu.lt);
        bld.output("ltu", alu.ltu);
        Bench {
            nl: bld.finish(),
            a,
            b: bw,
            f3,
            sub,
            sra,
            result: alu.result,
            eq: alu.eq,
            lt: alu.lt,
            ltu: alu.ltu,
        }
    }

    #[test]
    fn matches_software_alu_on_corner_cases() {
        let lib = Library::new(Technology::ffet_3p5t());
        let bench = bench(&lib);
        let mut sim = Simulator::new(&bench.nl, &lib).unwrap();
        let cases: &[(u32, u32)] = &[
            (0, 0),
            (1, 1),
            (0xffff_ffff, 1),
            (0x8000_0000, 0x7fff_ffff),
            (0xdead_beef, 0x1234_5678),
            (5, 0xffff_fffb),
        ];
        for &(x, y) in cases {
            for f3 in 0..8u32 {
                for alt in [false, true] {
                    // ALU semantics: alt selects SUB (f3=0) or SRA (f3=5).
                    let sub_en = alt && f3 == 0 || f3 == 2 || f3 == 3;
                    let expected = match f3 {
                        0 => {
                            if alt {
                                x.wrapping_sub(y)
                            } else {
                                x.wrapping_add(y)
                            }
                        }
                        1 => x << (y & 31),
                        2 => u32::from((x as i32) < (y as i32)),
                        3 => u32::from(x < y),
                        4 => x ^ y,
                        5 => {
                            if alt {
                                ((x as i32) >> (y & 31)) as u32
                            } else {
                                x >> (y & 31)
                            }
                        }
                        6 => x | y,
                        7 => x & y,
                        _ => unreachable!(),
                    };
                    sim.set_bus(&bench.a, x as u64);
                    sim.set_bus(&bench.b, y as u64);
                    sim.set_bus(&bench.f3, f3 as u64);
                    sim.set(bench.sub, sub_en);
                    sim.set(bench.sra, alt && f3 == 5);
                    sim.settle();
                    assert_eq!(
                        sim.get_bus(&bench.result) as u32,
                        expected,
                        "f3={f3} alt={alt} x={x:#x} y={y:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn comparison_flags() {
        let lib = Library::new(Technology::ffet_3p5t());
        let bench = bench(&lib);
        let mut sim = Simulator::new(&bench.nl, &lib).unwrap();
        let cases: &[(u32, u32)] = &[
            (0, 0),
            (1, 2),
            (2, 1),
            (0x8000_0000, 1),
            (1, 0x8000_0000),
            (0xffff_ffff, 0xffff_ffff),
        ];
        for &(x, y) in cases {
            sim.set_bus(&bench.a, x as u64);
            sim.set_bus(&bench.b, y as u64);
            sim.set_bus(&bench.f3, 0);
            sim.set(bench.sub, true);
            sim.set(bench.sra, false);
            sim.settle();
            assert_eq!(sim.get(bench.eq), x == y, "eq {x:#x} {y:#x}");
            assert_eq!(sim.get(bench.lt), (x as i32) < (y as i32), "lt");
            assert_eq!(sim.get(bench.ltu), x < y, "ltu");
        }
    }
}
