//! Word-level construction helpers: 32-bit datapath operators expressed as
//! gate networks over [`NetlistBuilder`].

use ffet_netlist::{NetId, NetlistBuilder};

/// A little-endian bus of nets (index 0 = LSB).
pub type Word = Vec<NetId>;

/// Constant word from an integer (ties shared via the two cached nets).
pub struct Consts {
    zero: NetId,
    one: NetId,
}

impl Consts {
    /// Creates (and caches) the tie-cell constants.
    pub fn new(b: &mut NetlistBuilder<'_>) -> Consts {
        Consts {
            zero: b.zero(),
            one: b.one(),
        }
    }

    /// The constant-0 net.
    #[must_use]
    pub fn zero(&self) -> NetId {
        self.zero
    }

    /// The constant-1 net.
    #[must_use]
    pub fn one(&self) -> NetId {
        self.one
    }

    /// A `width`-bit constant word.
    #[must_use]
    pub fn word(&self, value: u32, width: usize) -> Word {
        (0..width)
            .map(|i| {
                if value >> i & 1 == 1 {
                    self.one
                } else {
                    self.zero
                }
            })
            .collect()
    }
}

/// Bitwise NOT of a word.
pub fn not_word(b: &mut NetlistBuilder<'_>, a: &[NetId]) -> Word {
    a.iter().map(|&x| b.not(x)).collect()
}

/// Bitwise AND of two words.
pub fn and_word(b: &mut NetlistBuilder<'_>, a: &[NetId], c: &[NetId]) -> Word {
    a.iter().zip(c).map(|(&x, &y)| b.and2(x, y)).collect()
}

/// Bitwise OR of two words.
pub fn or_word(b: &mut NetlistBuilder<'_>, a: &[NetId], c: &[NetId]) -> Word {
    a.iter().zip(c).map(|(&x, &y)| b.or2(x, y)).collect()
}

/// Bitwise XOR of two words.
pub fn xor_word(b: &mut NetlistBuilder<'_>, a: &[NetId], c: &[NetId]) -> Word {
    a.iter().zip(c).map(|(&x, &y)| b.xor2(x, y)).collect()
}

/// Per-bit 2:1 mux: `s ? yes : no`.
pub fn mux_word(b: &mut NetlistBuilder<'_>, no: &[NetId], yes: &[NetId], s: NetId) -> Word {
    no.iter().zip(yes).map(|(&n, &y)| b.mux2(n, y, s)).collect()
}

/// AND every bit of `a` with the single net `en` (gating a word).
pub fn gate_word(b: &mut NetlistBuilder<'_>, a: &[NetId], en: NetId) -> Word {
    a.iter().map(|&x| b.and2(x, en)).collect()
}

/// `a == c` reduction.
pub fn eq_word(b: &mut NetlistBuilder<'_>, a: &[NetId], c: &[NetId]) -> NetId {
    let x = xor_word(b, a, c);
    let any = b.or_tree(&x);
    b.not(any)
}

/// Ripple add with carry-in; returns (sum, carry_out).
pub fn add_word(
    b: &mut NetlistBuilder<'_>,
    a: &[NetId],
    c: &[NetId],
    carry_in: NetId,
) -> (Word, NetId) {
    b.adder(a, c, carry_in)
}

/// `a - c` via two's complement; returns (difference, carry_out) where
/// `carry_out == 1` means no borrow (`a >= c` unsigned).
pub fn sub_word(b: &mut NetlistBuilder<'_>, a: &[NetId], c: &[NetId]) -> (Word, NetId) {
    let nc = not_word(b, c);
    let one = b.one();
    add_word(b, a, &nc, one)
}

/// Kogge–Stone parallel-prefix adder: `a + c + carry_in`, returning
/// (sum, carry_out) in `O(log n)` logic depth — the adder the datapath
/// uses so the core's critical path is prefix-tree-, not ripple-, limited.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn fast_add(
    b: &mut NetlistBuilder<'_>,
    a: &[NetId],
    c: &[NetId],
    carry_in: NetId,
) -> (Word, NetId) {
    assert_eq!(a.len(), c.len(), "adder width mismatch");
    assert!(!a.is_empty(), "zero-width adder");
    let n = a.len();
    // Bitwise propagate/generate.
    let p: Word = a.iter().zip(c).map(|(&x, &y)| b.xor2(x, y)).collect();
    let g: Word = a.iter().zip(c).map(|(&x, &y)| b.and2(x, y)).collect();
    // Prefix tree over (g, p): after the last level, gg[i]/pp[i] span bits
    // 0..=i.
    let mut gg = g.clone();
    let mut pp = p.clone();
    let mut d = 1;
    while d < n {
        let mut gg_next = gg.clone();
        let mut pp_next = pp.clone();
        for i in d..n {
            // (g, p) ∘ (g', p') = (g | p & g', p & p').
            let t = b.and2(pp[i], gg[i - d]);
            gg_next[i] = b.or2(gg[i], t);
            pp_next[i] = b.and2(pp[i], pp[i - d]);
        }
        gg = gg_next;
        pp = pp_next;
        d *= 2;
    }
    // Carry into bit i: prefix over bits 0..i combined with carry_in.
    // c_0 = carry_in; c_i = G_{i-1:0} | (P_{i-1:0} & carry_in).
    let mut sum = Vec::with_capacity(n);
    sum.push(b.xor2(p[0], carry_in));
    for i in 1..n {
        let t = b.and2(pp[i - 1], carry_in);
        let ci = b.or2(gg[i - 1], t);
        sum.push(b.xor2(p[i], ci));
    }
    let t = b.and2(pp[n - 1], carry_in);
    let cout = b.or2(gg[n - 1], t);
    (sum, cout)
}

/// Sign- or zero-extends `a` to `width` bits.
pub fn extend(b: &mut NetlistBuilder<'_>, a: &[NetId], width: usize, signed: bool) -> Word {
    assert!(width >= a.len(), "extend cannot truncate");
    let fill = if signed {
        *a.last().expect("non-empty word")
    } else {
        // Zero fill via a tie-less trick: AND a bit with its own inverse.
        let last = *a.last().expect("non-empty word");
        let n = b.not(last);
        b.and2(last, n)
    };
    let mut out = a.to_vec();
    out.resize(width, fill);
    out
}

/// Logical/arithmetic right barrel shifter: shifts `a` right by the 5-bit
/// amount `sh`, filling with `fill` (tie 0 for SRL, sign bit for SRA).
pub fn shift_right(b: &mut NetlistBuilder<'_>, a: &[NetId], sh: &[NetId], fill: NetId) -> Word {
    assert_eq!(sh.len(), 5, "shift amount is 5 bits");
    let mut cur: Word = a.to_vec();
    for (k, &s) in sh.iter().enumerate() {
        let dist = 1usize << k;
        let shifted: Word = (0..cur.len())
            .map(|i| {
                if i + dist < cur.len() {
                    cur[i + dist]
                } else {
                    fill
                }
            })
            .collect();
        cur = mux_word(b, &cur, &shifted, s);
    }
    cur
}

/// Left barrel shifter (reverse, shift right, reverse — the reversals are
/// free rewiring).
pub fn shift_left(b: &mut NetlistBuilder<'_>, a: &[NetId], sh: &[NetId], fill: NetId) -> Word {
    let rev: Word = a.iter().rev().copied().collect();
    let shifted = shift_right(b, &rev, sh, fill);
    shifted.into_iter().rev().collect()
}

/// One-hot select: OR of `words[i]` gated by `sels[i]`. All unselected
/// words contribute zero, so exactly one select should be high. The OR
/// reduction is a balanced tree, keeping the mux depth logarithmic in the
/// choice count.
pub fn onehot_mux(b: &mut NetlistBuilder<'_>, choices: &[(&[NetId], NetId)]) -> Word {
    assert!(!choices.is_empty(), "empty one-hot mux");
    let width = choices[0].0.len();
    let mut level: Vec<Word> = choices
        .iter()
        .map(|(word, sel)| {
            assert_eq!(word.len(), width, "one-hot mux width mismatch");
            gate_word(b, word, *sel)
        })
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    or_word(b, &pair[0], &pair[1])
                } else {
                    pair[0].clone()
                }
            })
            .collect();
    }
    level.pop().expect("non-empty")
}

/// Binary decoder: `n`-bit input to `2^n` one-hot outputs.
pub fn decode(b: &mut NetlistBuilder<'_>, sel: &[NetId]) -> Vec<NetId> {
    let n = sel.len();
    let inv: Vec<NetId> = sel.iter().map(|&s| b.not(s)).collect();
    (0..1usize << n)
        .map(|code| {
            let terms: Vec<NetId> = (0..n)
                .map(|bit| {
                    if code >> bit & 1 == 1 {
                        sel[bit]
                    } else {
                        inv[bit]
                    }
                })
                .collect();
            b.and_tree(&terms)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_cells::Library;
    use ffet_netlist::Simulator;
    use ffet_tech::Technology;

    fn harness<F>(
        width: usize,
        build: F,
    ) -> (ffet_netlist::Netlist, Library, Vec<NetId>, Vec<NetId>, Word)
    where
        F: FnOnce(&mut NetlistBuilder<'_>, &[NetId], &[NetId]) -> Word,
    {
        let lib = Library::new(Technology::ffet_3p5t());
        // Library outlives netlist in the tuple; rebuild a second library
        // for the caller instead of wrestling with self-references.
        let lib2 = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let a = b.input_bus("a", width);
        let c = b.input_bus("b", width);
        let out = build(&mut b, &a, &c);
        b.output_bus("y", &out);
        (b.finish(), lib2, a, c, out)
    }

    #[test]
    fn shifts_match_reference() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let a = b.input_bus("a", 32);
        let sh = b.input_bus("sh", 5);
        let zero = b.zero();
        let sign = a[31];
        let srl = shift_right(&mut b, &a, &sh, zero);
        let sra = shift_right(&mut b, &a, &sh, sign);
        let sll = shift_left(&mut b, &a, &sh, zero);
        b.output_bus("srl", &srl);
        b.output_bus("sra", &sra);
        b.output_bus("sll", &sll);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        for (val, s) in [
            (0x8000_0001u32, 1u32),
            (0xdead_beef, 13),
            (1, 31),
            (0xffff_0000, 16),
            (5, 0),
        ] {
            sim.set_bus(&a, val as u64);
            sim.set_bus(&sh, s as u64);
            sim.settle();
            assert_eq!(sim.get_bus(&srl) as u32, val >> s, "srl {val:#x} >> {s}");
            assert_eq!(sim.get_bus(&sra) as u32, ((val as i32) >> s) as u32, "sra");
            assert_eq!(sim.get_bus(&sll) as u32, val << s, "sll");
        }
    }

    #[test]
    fn sub_and_eq() {
        let (nl, lib, a, c, y) = harness(8, |b, a, c| {
            let (diff, _) = sub_word(b, a, c);
            let e = eq_word(b, a, c);
            let mut out = diff;
            out.push(e);
            out
        });
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        for (x, z) in [(200u8, 13u8), (13, 200), (77, 77), (0, 255)] {
            sim.set_bus(&a, x as u64);
            sim.set_bus(&c, z as u64);
            sim.settle();
            let diff = sim.get_bus(&y[..8]) as u8;
            assert_eq!(diff, x.wrapping_sub(z));
            assert_eq!(sim.get(y[8]), x == z);
        }
    }

    #[test]
    fn decoder_is_onehot() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let sel = b.input_bus("s", 3);
        let hot = decode(&mut b, &sel);
        b.output_bus("h", &hot);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        for code in 0..8u64 {
            sim.set_bus(&sel, code);
            sim.settle();
            let out = sim.get_bus(&hot);
            assert_eq!(out, 1 << code, "code {code}");
        }
    }

    #[test]
    fn onehot_mux_selects() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let a = b.input_bus("a", 4);
        let c = b.input_bus("b", 4);
        let sa = b.input("sa");
        let sb = b.input("sb");
        let out = onehot_mux(&mut b, &[(&a, sa), (&c, sb)]);
        b.output_bus("y", &out);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.set_bus(&a, 0b1010);
        sim.set_bus(&c, 0b0101);
        sim.set(sa, true);
        sim.set(sb, false);
        sim.settle();
        assert_eq!(sim.get_bus(&out), 0b1010);
        sim.set(sa, false);
        sim.set(sb, true);
        sim.settle();
        assert_eq!(sim.get_bus(&out), 0b0101);
    }
}
