use crate::isa::{Instr, Opcode};
use ffet_geom::FxHashMap;

/// Architectural effect of retiring one instruction — the golden record the
/// cosimulation compares against the gate-level core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retire {
    /// PC of the retired instruction.
    pub pc: u32,
    /// Destination register written (if any, and not x0).
    pub rd: Option<(usize, u32)>,
    /// Memory store performed: (address, data, byte mask).
    pub store: Option<(u32, u32, u8)>,
    /// Whether this instruction halts the program (`EBREAK`/`ECALL`).
    pub halt: bool,
}

/// Error raised by the ISS on malformed programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssError {
    /// Undecodable instruction word at the given PC.
    IllegalInstruction {
        /// Faulting PC.
        pc: u32,
        /// Raw word.
        word: u32,
    },
    /// PC not 4-byte aligned after a jump/branch.
    MisalignedPc(u32),
    /// Halfword/word data access that crosses its natural alignment (the
    /// single-cycle core's one-word data port cannot express it, so the
    /// reference model traps instead of silently diverging).
    MisalignedAccess {
        /// Faulting PC.
        pc: u32,
        /// Offending data address.
        addr: u32,
    },
}

impl std::fmt::Display for IssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IssError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            IssError::MisalignedPc(pc) => write!(f, "misaligned pc {pc:#010x}"),
            IssError::MisalignedAccess { pc, addr } => {
                write!(f, "misaligned data access to {addr:#010x} at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for IssError {}

/// Reference RV32I instruction-set simulator.
///
/// Word-addressed sparse memory; unwritten memory reads zero. Matches the
/// gate-level core exactly: no traps besides decode failure, `FENCE` is a
/// NOP, `ECALL`/`EBREAK` signal halt.
///
/// ```
/// use ffet_rv32::{Iss, encode};
///
/// let mut iss = Iss::new();
/// iss.load_program(0, &[encode::addi(1, 0, 42), encode::ebreak()]);
/// let r = iss.step()?;
/// assert_eq!(r.rd, Some((1, 42)));
/// # Ok::<(), ffet_rv32::IssError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Iss {
    regs: [u32; 32],
    pc: u32,
    mem: FxHashMap<u32, u32>,
}

impl Iss {
    /// Creates an ISS with zeroed registers, PC 0, empty memory.
    #[must_use]
    pub fn new() -> Iss {
        Iss::default()
    }

    /// Current PC.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads register `x{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[must_use]
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i]
    }

    /// Writes register `x{i}` (x0 stays zero).
    pub fn set_reg(&mut self, i: usize, value: u32) {
        if i != 0 {
            self.regs[i] = value;
        }
    }

    /// Word-aligned memory read (address bits 1..0 ignored).
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        self.mem.get(&(addr & !3)).copied().unwrap_or(0)
    }

    /// Word-aligned memory write.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        self.mem.insert(addr & !3, value);
    }

    /// Loads a program (sequence of instruction words) at `base`.
    pub fn load_program(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_word(base + 4 * i as u32, w);
        }
    }

    /// Executes one instruction and returns its architectural effect.
    ///
    /// # Errors
    ///
    /// [`IssError::IllegalInstruction`] on undecodable words.
    pub fn step(&mut self) -> Result<Retire, IssError> {
        let pc = self.pc;
        let word = self.read_word(pc);
        let instr = Instr(word);
        let op = instr
            .opcode()
            .ok_or(IssError::IllegalInstruction { pc, word })?;
        let rs1 = self.regs[instr.rs1()];
        let rs2 = self.regs[instr.rs2()];
        let mut next_pc = pc.wrapping_add(4);
        let mut rd_val: Option<u32> = None;
        let mut store: Option<(u32, u32, u8)> = None;
        let mut halt = false;

        match op {
            Opcode::Lui => rd_val = Some(instr.imm_u() as u32),
            Opcode::Auipc => rd_val = Some(pc.wrapping_add(instr.imm_u() as u32)),
            Opcode::Jal => {
                rd_val = Some(pc.wrapping_add(4));
                next_pc = pc.wrapping_add(instr.imm_j() as u32);
            }
            Opcode::Jalr => {
                rd_val = Some(pc.wrapping_add(4));
                next_pc = rs1.wrapping_add(instr.imm_i() as u32) & !1;
            }
            Opcode::Branch => {
                let taken = match instr.funct3() {
                    0 => rs1 == rs2,
                    1 => rs1 != rs2,
                    4 => (rs1 as i32) < (rs2 as i32),
                    5 => (rs1 as i32) >= (rs2 as i32),
                    6 => rs1 < rs2,
                    7 => rs1 >= rs2,
                    _ => return Err(IssError::IllegalInstruction { pc, word }),
                };
                if taken {
                    next_pc = pc.wrapping_add(instr.imm_b() as u32);
                }
            }
            Opcode::Load => {
                let addr = rs1.wrapping_add(instr.imm_i() as u32);
                let misaligned = match instr.funct3() & 3 {
                    1 => addr & 1 != 0,
                    2 => addr & 3 != 0,
                    _ => false,
                };
                if misaligned {
                    return Err(IssError::MisalignedAccess { pc, addr });
                }
                let w = self.read_word(addr);
                let sh = (addr & 3) * 8;
                rd_val = Some(match instr.funct3() {
                    0 => ((w >> sh) as u8) as i8 as i32 as u32,
                    1 => ((w >> sh) as u16) as i16 as i32 as u32,
                    2 => w,
                    4 => ((w >> sh) as u8) as u32,
                    5 => ((w >> sh) as u16) as u32,
                    _ => return Err(IssError::IllegalInstruction { pc, word }),
                });
            }
            Opcode::Store => {
                let addr = rs1.wrapping_add(instr.imm_s() as u32);
                let misaligned = match instr.funct3() {
                    1 => addr & 1 != 0,
                    2 => addr & 3 != 0,
                    _ => false,
                };
                if misaligned {
                    return Err(IssError::MisalignedAccess { pc, addr });
                }
                let sh = (addr & 3) * 8;
                let (data, mask) = match instr.funct3() {
                    0 => (rs2 << sh, 0b0001u8 << (addr & 3)),
                    1 => (rs2 << sh, 0b0011u8 << (addr & 3)),
                    2 => (rs2, 0b1111u8),
                    _ => return Err(IssError::IllegalInstruction { pc, word }),
                };
                let old = self.read_word(addr);
                let mut merged = old;
                for byte in 0..4 {
                    if mask >> byte & 1 == 1 {
                        let m = 0xffu32 << (byte * 8);
                        merged = (merged & !m) | (data & m);
                    }
                }
                self.write_word(addr, merged);
                store = Some((addr & !3, merged, mask));
            }
            Opcode::OpImm => {
                let imm = instr.imm_i() as u32;
                rd_val = Some(alu(
                    instr.funct3(),
                    word >> 30 & 1 == 1 && instr.funct3() == 5,
                    rs1,
                    imm,
                ));
            }
            Opcode::Op => {
                let sub_or_sra = word >> 30 & 1 == 1;
                rd_val = Some(alu(instr.funct3(), sub_or_sra, rs1, rs2));
            }
            Opcode::MiscMem => {}
            Opcode::System => halt = true,
        }

        let rd = match rd_val {
            Some(v) if instr.rd() != 0 => {
                self.regs[instr.rd()] = v;
                Some((instr.rd(), v))
            }
            _ => None,
        };
        if !next_pc.is_multiple_of(4) {
            return Err(IssError::MisalignedPc(next_pc));
        }
        self.pc = next_pc;
        Ok(Retire {
            pc,
            rd,
            store,
            halt,
        })
    }

    /// Runs until `EBREAK`/`ECALL` or `max_steps` instructions, returning
    /// the retire trace.
    ///
    /// # Errors
    ///
    /// Propagates [`IssError`] from [`step`](Self::step).
    pub fn run(&mut self, max_steps: usize) -> Result<Vec<Retire>, IssError> {
        let mut trace = Vec::new();
        for _ in 0..max_steps {
            let r = self.step()?;
            let halt = r.halt;
            trace.push(r);
            if halt {
                break;
            }
        }
        Ok(trace)
    }
}

/// The RV32I ALU function table shared by OP and OP-IMM.
fn alu(funct3: u32, alt: bool, a: u32, b: u32) -> u32 {
    match funct3 {
        0 => {
            if alt {
                a.wrapping_sub(b)
            } else {
                a.wrapping_add(b)
            }
        }
        1 => a << (b & 0x1f),
        2 => u32::from((a as i32) < (b as i32)),
        3 => u32::from(a < b),
        4 => a ^ b,
        5 => {
            if alt {
                ((a as i32) >> (b & 0x1f)) as u32
            } else {
                a >> (b & 0x1f)
            }
        }
        6 => a | b,
        7 => a & b,
        _ => unreachable!("funct3 is 3 bits"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::encode::*;

    #[test]
    fn arithmetic_and_logic() {
        let mut iss = Iss::new();
        iss.load_program(
            0,
            &[
                addi(1, 0, 100),
                addi(2, 0, -3),
                add(3, 1, 2), // 97
                sub(4, 1, 2), // 103
                and(5, 1, 2),
                or(6, 1, 2),
                xor(7, 1, 2),
                slt(8, 2, 1),  // -3 < 100 → 1
                sltu(9, 2, 1), // 0xfffffffd < 100 → 0
                ebreak(),
            ],
        );
        iss.run(100).unwrap();
        assert_eq!(iss.reg(3), 97);
        assert_eq!(iss.reg(4), 103);
        assert_eq!(iss.reg(5), 100 & (-3i32 as u32));
        assert_eq!(iss.reg(6), 100 | (-3i32 as u32));
        assert_eq!(iss.reg(7), 100 ^ (-3i32 as u32));
        assert_eq!(iss.reg(8), 1);
        assert_eq!(iss.reg(9), 0);
    }

    #[test]
    fn shifts() {
        let mut iss = Iss::new();
        iss.load_program(
            0,
            &[
                addi(1, 0, -8), // 0xfffffff8
                slli(2, 1, 4),
                srli(3, 1, 4),
                srai(4, 1, 4),
                ebreak(),
            ],
        );
        iss.run(100).unwrap();
        assert_eq!(iss.reg(2), 0xffff_ff80);
        assert_eq!(iss.reg(3), 0x0fff_ffff);
        assert_eq!(iss.reg(4), 0xffff_ffff);
    }

    #[test]
    fn branches_and_jumps() {
        let mut iss = Iss::new();
        // Loop: x1 counts 0..5.
        iss.load_program(
            0,
            &[
                addi(1, 0, 0), // 0x00
                addi(2, 0, 5), // 0x04
                addi(1, 1, 1), // 0x08 loop:
                bne(1, 2, -4), // 0x0c
                jal(3, 8),     // 0x10 → 0x18, x3 = 0x14
                nop(),         // 0x14 skipped
                ebreak(),      // 0x18
            ],
        );
        let trace = iss.run(100).unwrap();
        assert_eq!(iss.reg(1), 5);
        assert_eq!(iss.reg(3), 0x14);
        // The EBREAK at 0x18 is the last retired instruction.
        assert_eq!(trace.last().unwrap().pc, 0x18);
        assert!(trace.last().unwrap().halt);
    }

    #[test]
    fn loads_and_stores_subword() {
        let mut iss = Iss::new();
        iss.load_program(
            0,
            &[
                lui(1, 0x1000_0000), // base address
                addi(2, 0, -2),      // 0xfffffffe
                sw(2, 1, 0),
                lb(3, 1, 0), // 0xfe sign-extended
                lbu(4, 1, 0),
                lh(5, 1, 0),
                lhu(6, 1, 0),
                addi(7, 0, 0x55),
                sb(7, 1, 1), // overwrite byte 1
                lw(8, 1, 0),
                ebreak(),
            ],
        );
        iss.run(100).unwrap();
        assert_eq!(iss.reg(3), 0xffff_fffe);
        assert_eq!(iss.reg(4), 0xfe);
        assert_eq!(iss.reg(5), 0xffff_fffe);
        assert_eq!(iss.reg(6), 0xfffe);
        assert_eq!(iss.reg(8), 0xffff_55fe);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut iss = Iss::new();
        iss.load_program(0, &[addi(0, 0, 123), add(1, 0, 0), ebreak()]);
        iss.run(10).unwrap();
        assert_eq!(iss.reg(0), 0);
        assert_eq!(iss.reg(1), 0);
    }

    #[test]
    fn lui_auipc() {
        let mut iss = Iss::new();
        iss.load_program(0, &[lui(1, 0xabcd_e000), auipc(2, 0x1000), ebreak()]);
        iss.run(10).unwrap();
        assert_eq!(iss.reg(1), 0xabcd_e000);
        assert_eq!(iss.reg(2), 4 + 0x1000);
    }

    #[test]
    fn jalr_clears_bit0() {
        let mut iss = Iss::new();
        iss.load_program(0, &[addi(1, 0, 9), jalr(2, 1, 0), nop(), ebreak()]);
        iss.step().unwrap();
        iss.step().unwrap();
        assert_eq!(iss.pc(), 8);
        assert_eq!(iss.reg(2), 8);
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut iss = Iss::new();
        iss.write_word(0, 0xffff_ffff);
        assert!(matches!(
            iss.step(),
            Err(IssError::IllegalInstruction { pc: 0, .. })
        ));
    }
}
