//! Gate-level 32×32 register file with two read ports and one write port.

use crate::bus::{decode, mux_word, Consts, Word};
use ffet_netlist::{NetId, NetlistBuilder};

/// The register file's build products.
pub struct Regfile {
    /// Read data for port 1 (`rs1`).
    pub rdata1: Word,
    /// Read data for port 2 (`rs2`).
    pub rdata2: Word,
    /// Number of flip-flops instantiated.
    pub dff_count: usize,
}

/// Builds the register file: 31 real registers (x0 reads as zero) of
/// `xlen` DFFs each, write-enable recirculation muxes, a 5→32 write
/// decoder, and two 32:1 read mux trees per bit.
///
/// This block dominates the core's gate count — exactly the DFF/MUX-heavy
/// profile that lets the FFET Split Gate cells pay off at block level.
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)] // register-indexed loops; the port list IS the interface
pub fn build_regfile(
    b: &mut NetlistBuilder<'_>,
    consts: &Consts,
    clk: NetId,
    we: NetId,
    waddr: &[NetId],
    wdata: &[NetId],
    raddr1: &[NetId],
    raddr2: &[NetId],
) -> Regfile {
    assert_eq!(waddr.len(), 5);
    assert_eq!(raddr1.len(), 5);
    assert_eq!(raddr2.len(), 5);
    let xlen = wdata.len();

    // One-hot write select, gated by the global write enable. Slot 0 is
    // unused (x0 is constant) but kept for index alignment.
    let onehot = decode(b, waddr);
    let write_sel: Vec<NetId> = onehot.iter().map(|&h| b.and2(h, we)).collect();

    // Registers x1..x31: q -> recirculation mux -> dff.
    let mut dff_count = 0;
    let zero_word = consts.word(0, xlen);
    let mut regs: Vec<Word> = Vec::with_capacity(32);
    regs.push(zero_word);
    for r in 1..32 {
        let q: Word = (0..xlen)
            .map(|bit| b.netlist_mut().add_net(format!("x{r}_q[{bit}]")))
            .collect();
        let d = mux_word(b, &q, wdata, write_sel[r]);
        for bit in 0..xlen {
            use ffet_cells::{CellFunction, CellKind, DriveStrength};
            let dff = b
                .library()
                .id(CellKind::new(CellFunction::Dff, DriveStrength::D1))
                .expect("DFFD1 in library");
            let name = format!("x{r}_dff_{bit}");
            let library = b.library();
            b.netlist_mut().add_instance(
                library,
                name,
                dff,
                &[Some(d[bit]), Some(clk), Some(q[bit])],
            );
            dff_count += 1;
        }
        regs.push(q);
    }

    let rdata1 = read_port(b, &regs, raddr1);
    let rdata2 = read_port(b, &regs, raddr2);
    Regfile {
        rdata1,
        rdata2,
        dff_count,
    }
}

/// 32:1 read mux tree (5 levels of 2:1 muxes per bit).
fn read_port(b: &mut NetlistBuilder<'_>, regs: &[Word], raddr: &[NetId]) -> Word {
    let mut level: Vec<Word> = regs.to_vec();
    for &sel in raddr {
        level = level
            .chunks(2)
            .map(|pair| mux_word(b, &pair[0], &pair[1], sel))
            .collect();
    }
    assert_eq!(level.len(), 1);
    level.pop().expect("root of mux tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_cells::Library;
    use ffet_netlist::Simulator;
    use ffet_tech::Technology;

    #[test]
    fn write_then_read_back() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "rf");
        let clk = b.input("clk");
        let we = b.input("we");
        let waddr = b.input_bus("waddr", 5);
        let wdata = b.input_bus("wdata", 8); // narrow for test speed
        let raddr1 = b.input_bus("raddr1", 5);
        let raddr2 = b.input_bus("raddr2", 5);
        let consts = Consts::new(&mut b);
        let rf = build_regfile(&mut b, &consts, clk, we, &waddr, &wdata, &raddr1, &raddr2);
        b.output_bus("rdata1", &rf.rdata1);
        b.output_bus("rdata2", &rf.rdata2);
        let nl = b.finish();
        assert_eq!(rf.dff_count, 31 * 8);
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.reset_state(false);

        // Write 0xAB to x5 and 0x3C to x31.
        for (r, v) in [(5u64, 0xABu64), (31, 0x3C)] {
            sim.set(we, true);
            sim.set_bus(&waddr, r);
            sim.set_bus(&wdata, v);
            sim.settle();
            sim.clock_edge();
        }
        sim.set(we, false);
        sim.set_bus(&raddr1, 5);
        sim.set_bus(&raddr2, 31);
        sim.settle();
        assert_eq!(sim.get_bus(&rf.rdata1), 0xAB);
        assert_eq!(sim.get_bus(&rf.rdata2), 0x3C);

        // x0 reads zero even after an attempted write.
        sim.set(we, true);
        sim.set_bus(&waddr, 0);
        sim.set_bus(&wdata, 0xFF);
        sim.settle();
        sim.clock_edge();
        sim.set_bus(&raddr1, 0);
        sim.settle();
        assert_eq!(sim.get_bus(&rf.rdata1), 0);
    }

    #[test]
    fn write_disabled_holds_value() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "rf");
        let clk = b.input("clk");
        let we = b.input("we");
        let waddr = b.input_bus("waddr", 5);
        let wdata = b.input_bus("wdata", 4);
        let raddr1 = b.input_bus("raddr1", 5);
        let raddr2 = b.input_bus("raddr2", 5);
        let consts = Consts::new(&mut b);
        let rf = build_regfile(&mut b, &consts, clk, we, &waddr, &wdata, &raddr1, &raddr2);
        b.output_bus("rdata1", &rf.rdata1);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.reset_state(false);
        sim.set(we, true);
        sim.set_bus(&waddr, 7);
        sim.set_bus(&wdata, 0x9);
        sim.settle();
        sim.clock_edge();
        // Now disable writes and try to clobber.
        sim.set(we, false);
        sim.set_bus(&wdata, 0x6);
        sim.settle();
        sim.clock_edge();
        sim.set_bus(&raddr1, 7);
        sim.settle();
        assert_eq!(sim.get_bus(&rf.rdata1), 0x9);
    }
}
