//! Minimal JSON value model, writer and parser.
//!
//! The workspace is fully offline with zero external dependencies, so the
//! observability artifacts (`trace.jsonl`, `metrics.json`) are produced and
//! consumed by this hand-rolled module. It covers exactly the JSON subset
//! the artifacts use: objects (with insertion order preserved — object keys
//! in artifacts are either BTreeMap-sorted or schema-fixed, so order is
//! deterministic), arrays, strings, integers, floats, booleans and null.

use std::fmt::Write as _;

/// A JSON value. `Obj` keeps insertion order; callers that need sorted keys
/// insert them sorted (metric maps come from `BTreeMap`s).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept distinct from floats so counters round-trip exactly.
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric accessor: accepts both `Int` and `Num` (a float field whose
    /// value happens to be integral parses back as `Int`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Floats use Rust's shortest-roundtrip `Display`; JSON has no NaN/Inf, so
/// non-finite values degrade to `null` (they never occur in well-formed
/// artifacts, but a crash half-way through a metric update must not produce
/// an unparseable file).
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        // `Display` prints integral floats without a decimal point; keep the
        // JSON type unambiguous so readers don't reinterpret gauges as ints.
        let needs_point = !s.contains('.') && !s.contains('e') && !s.contains('E');
        out.push_str(&s);
        if needs_point {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad float {text:?}: {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad integer {text:?}: {e}"))
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Artifacts never emit surrogate pairs; map lone
                        // surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Bulk-copy the run up to the next quote or escape. Multi-byte
                // UTF-8 scalars contain no `"`/`\` bytes (continuation bytes
                // are >= 0x80), so scanning bytewise never splits a scalar —
                // and validating only the chunk keeps large strings linear
                // instead of re-validating the whole tail per character.
                let start = *pos;
                while matches!(bytes.get(*pos), Some(b) if *b != b'"' && *b != b'\\') {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b'"')) {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b':')) {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = parse_json(text).unwrap();
            assert_eq!(v.render(), text, "roundtrip of {text}");
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(3.0).render(), "3.0");
        assert_eq!(Json::Num(-2.0).render(), "-2.0");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2.5,{"b":"x\ny"}],"c":null}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.render(), text);
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        let rendered = v.render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse_json(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse_json(r#""é""#).unwrap(), Json::Str("\u{e9}".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse_json(r#"{"n":3,"x":1.5,"s":"t"}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(v.get("missing"), None);
    }
}
