//! Text rendering of one traced flow point: a span tree with durations, a
//! hottest-spans table (aggregated by span name) and a metrics summary.
//! Used by `repro trace <point>`; pure string-in/string-out so it is
//! testable here and printable by any caller.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::SpanEvent;

/// Render a full text report for one point.
pub fn render_point(label: &str, events: &[SpanEvent], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "point {label}");
    render_tree(&mut out, events);
    render_hottest(&mut out, events);
    render_metrics(&mut out, metrics);
    out
}

fn render_tree(out: &mut String, events: &[SpanEvent]) {
    if events.is_empty() {
        out.push_str("\n  (no spans recorded)\n");
        return;
    }
    let mut children: BTreeMap<Option<u32>, Vec<&SpanEvent>> = BTreeMap::new();
    for event in events {
        children.entry(event.parent).or_default().push(event);
    }
    // Pre-order by start time within each sibling group.
    for siblings in children.values_mut() {
        siblings.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    }
    out.push_str("\nspan tree (wall ms)\n");
    let mut stack: Vec<&SpanEvent> = children
        .get(&None)
        .map(|roots| roots.iter().rev().copied().collect())
        .unwrap_or_default();
    while let Some(event) = stack.pop() {
        let indent = "  ".repeat(usize::from(event.depth) + 1);
        let _ = write!(
            out,
            "{indent}{:<28}{:>10.3}",
            event.name,
            event.dur_us / 1e3
        );
        if !event.attrs.is_empty() {
            let attrs: Vec<String> = event
                .attrs
                .iter()
                .map(|(k, v)| {
                    format!(
                        "{k}={}",
                        match v {
                            crate::AttrValue::Str(s) => s.clone(),
                            crate::AttrValue::Int(i) => i.to_string(),
                            crate::AttrValue::Float(x) => format!("{x:.3}"),
                            crate::AttrValue::Bool(b) => b.to_string(),
                        }
                    )
                })
                .collect();
            let _ = write!(out, "  [{}]", attrs.join(" "));
        }
        out.push('\n');
        if let Some(kids) = children.get(&Some(event.id)) {
            stack.extend(kids.iter().rev());
        }
    }
}

fn render_hottest(out: &mut String, events: &[SpanEvent]) {
    if events.is_empty() {
        return;
    }
    // Aggregate self time? Total time per name is more intuitive for a
    // summary; nested repetition (route.round under flow.pnr) is obvious
    // from the names.
    let mut by_name: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for event in events {
        let slot = by_name.entry(event.name.as_str()).or_insert((0, 0.0));
        slot.0 += 1;
        slot.1 += event.dur_us;
    }
    let mut rows: Vec<(&str, usize, f64)> =
        by_name.into_iter().map(|(n, (c, d))| (n, c, d)).collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(b.0)));
    out.push_str("\nhottest spans (total wall ms)\n");
    let _ = writeln!(out, "  {:<28}{:>7}{:>12}", "name", "count", "total ms");
    for (name, count, total_us) in rows.iter().take(8) {
        let _ = writeln!(out, "  {name:<28}{count:>7}{:>12.3}", total_us / 1e3);
    }
}

fn render_metrics(out: &mut String, metrics: &MetricsSnapshot) {
    if metrics.is_empty() {
        out.push_str("\n  (no metrics recorded)\n");
        return;
    }
    if !metrics.counters.is_empty() {
        out.push_str("\ncounters\n");
        for (name, value) in &metrics.counters {
            let _ = writeln!(out, "  {name:<32}{value:>12}");
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("\ngauges\n");
        for (name, value) in &metrics.gauges {
            let _ = writeln!(out, "  {name:<32}{value:>12.3}");
        }
    }
    if !metrics.histograms.is_empty() {
        out.push_str("\nhistograms\n");
        let _ = writeln!(
            out,
            "  {:<24}{:>8}{:>12}{:>12}{:>12}",
            "name", "count", "min", "mean", "max"
        );
        for (name, h) in &metrics.histograms {
            let _ = writeln!(
                out,
                "  {name:<24}{:>8}{:>12.3}{:>12.3}{:>12.3}",
                h.count,
                h.min,
                h.mean(),
                h.max
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter_add, gauge_set, observe, span, Collector};

    #[test]
    fn render_shows_tree_hotspots_and_metrics() {
        let collector = Collector::new();
        let guard = collector.install();
        let root = span("flow").attr("seed", "42");
        for round in 0..3_i64 {
            span("route.round").attr("round", round).close();
        }
        counter_add("route.ripups", 12);
        gauge_set("cts.levels", 4.0);
        observe("sta.slack_ps", -3.0);
        root.close();
        drop(guard);
        let data = collector.finish();
        let text = render_point("fig9/u0.65/s42", &data.events, &data.metrics);
        assert!(text.starts_with("point fig9/u0.65/s42"));
        // Tree: root at depth 0, rounds indented one level deeper.
        assert!(text.contains("\n  flow"));
        assert!(text.contains("\n    route.round"));
        assert!(text.contains("[round=0]"));
        assert!(text.contains("[seed=42]"));
        // Hottest spans aggregate the three rounds into one row.
        let hot = text.split("hottest spans").nth(1).unwrap();
        assert!(hot.contains("route.round"));
        assert!(hot
            .lines()
            .any(|l| l.contains("route.round") && l.contains("      3")));
        // Metrics sections.
        assert!(text.contains("route.ripups"));
        assert!(text.contains("cts.levels"));
        assert!(text.contains("sta.slack_ps"));
    }

    #[test]
    fn render_empty_point() {
        let text = render_point("p", &[], &MetricsSnapshot::default());
        assert!(text.contains("(no spans recorded)"));
        assert!(text.contains("(no metrics recorded)"));
    }
}
