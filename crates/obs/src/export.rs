//! Chrome `trace_event` JSON export: renders one traced point as a
//! document loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Field mapping (DESIGN §13):
//!
//! | `trace.jsonl` span field | Chrome event field                     |
//! |--------------------------|----------------------------------------|
//! | `name`                   | `name` of a `ph:"X"` complete event    |
//! | `start_us` / `dur_us`    | `ts` / `dur` (both already in µs)      |
//! | `attrs` + `depth`        | `args`                                 |
//! | point label              | `ph:"M"` `thread_name` metadata        |
//! | counters / gauges        | `ph:"C"` counter events at `ts:0`      |
//!
//! Span nesting is reconstructed by the viewer from `ts`/`dur` overlap on
//! the single `pid:1`/`tid:1` track, which is exactly how the spans nested
//! at runtime. Histograms have no Chrome counterpart and are exported as
//! one counter event per histogram carrying its `count`.

use crate::json::{parse_json, Json};
use crate::{AttrValue, PointData};

fn attr_json(value: &AttrValue) -> Json {
    match value {
        AttrValue::Str(s) => Json::Str(s.clone()),
        AttrValue::Int(i) => Json::Int(*i),
        AttrValue::Float(x) => Json::Num(*x),
        AttrValue::Bool(b) => Json::Bool(*b),
    }
}

fn event(ph: &str, name: &str, ts: f64, args: Vec<(String, Json)>) -> Json {
    Json::Obj(vec![
        ("ph".into(), Json::Str(ph.into())),
        ("name".into(), Json::Str(name.into())),
        ("ts".into(), Json::Num(ts)),
        ("pid".into(), Json::Int(1)),
        ("tid".into(), Json::Int(1)),
        ("args".into(), Json::Obj(args)),
    ])
}

/// Renders one point as a complete Chrome trace-event JSON document
/// (object form, `displayTimeUnit: "ms"`, timestamps in µs as the format
/// requires).
#[must_use]
pub fn chrome_trace(label: &str, point: &PointData) -> String {
    let mut events = vec![
        event(
            "M",
            "process_name",
            0.0,
            vec![("name".into(), Json::Str("ffet".into()))],
        ),
        event(
            "M",
            "thread_name",
            0.0,
            vec![("name".into(), Json::Str(label.into()))],
        ),
    ];
    for span in &point.events {
        let mut args: Vec<(String, Json)> = span
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), attr_json(v)))
            .collect();
        args.push(("depth".into(), Json::Int(i64::from(span.depth))));
        let mut obj = event("X", &span.name, span.start_us, args);
        if let Json::Obj(fields) = &mut obj {
            // `dur` belongs right after `ts` by convention; insert before
            // pid (index 3).
            fields.insert(3, ("dur".into(), Json::Num(span.dur_us)));
        }
        events.push(obj);
    }
    for (name, value) in &point.metrics.counters {
        events.push(event(
            "C",
            name,
            0.0,
            vec![("value".into(), Json::Int(*value))],
        ));
    }
    for (name, value) in &point.metrics.gauges {
        events.push(event(
            "C",
            name,
            0.0,
            vec![("value".into(), Json::Num(*value))],
        ));
    }
    for (name, hist) in &point.metrics.histograms {
        events.push(event(
            "C",
            &format!("{name}.count"),
            0.0,
            vec![("value".into(), Json::Int(hist.count as i64))],
        ));
    }
    let doc = Json::Obj(vec![
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("traceEvents".into(), Json::Arr(events)),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

/// Event counts returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChromeTraceStats {
    pub complete_events: usize,
    pub counter_events: usize,
    pub metadata_events: usize,
}

/// Validates a Chrome trace-event JSON document (object form): a
/// `traceEvents` array whose every event carries a string `ph`/`name`,
/// numeric `ts`, integer `pid`/`tid`, an object `args`, and — for `ph:"X"`
/// complete events — a numeric `dur`.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = parse_json(text.trim_end())?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        _ => return Err("document has no \"traceEvents\" array".into()),
    };
    let mut stats = ChromeTraceStats::default();
    for (idx, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing string \"ph\""))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing string \"name\""))?;
        ev.get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {idx}: missing number \"ts\""))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("event {idx}: missing integer {key:?}"))?;
        }
        if !matches!(ev.get("args"), Some(Json::Obj(_))) {
            return Err(format!("event {idx}: missing object \"args\""));
        }
        match ph {
            "X" => {
                ev.get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {idx}: complete event missing \"dur\""))?;
                stats.complete_events += 1;
            }
            "C" => stats.counter_events += 1,
            "M" => stats.metadata_events += 1,
            other => return Err(format!("event {idx}: unsupported phase {other:?}")),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Collector};

    fn traced_point() -> PointData {
        let collector = Collector::new();
        let guard = collector.install();
        let root = span("flow").attr("seed", "42");
        let child = span("flow.route").attr("layer", 2_i64);
        crate::counter_add("route.ripups", 3);
        crate::gauge_set("place.hpwl_nm", 500.0);
        crate::observe("sta.slack_ps", 12.0);
        child.close();
        root.close();
        drop(guard);
        collector.finish()
    }

    #[test]
    fn export_validates_and_counts_match() {
        let point = traced_point();
        let doc = chrome_trace("fig9/FFET/s42", &point);
        let stats = validate_chrome_trace(&doc).expect("valid chrome trace");
        assert_eq!(stats.complete_events, point.events.len());
        // route.ripups + place.hpwl_nm + sta.slack_ps.count
        assert_eq!(stats.counter_events, 3);
        assert_eq!(stats.metadata_events, 2);
        assert!(doc.contains("\"displayTimeUnit\":\"ms\""));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("fig9/FFET/s42"));
    }

    #[test]
    fn span_timings_map_to_ts_and_dur() {
        let mut point = traced_point();
        point.events[0].start_us = 125.5;
        point.events[0].dur_us = 40.25;
        let doc = chrome_trace("p", &point);
        assert!(doc.contains("\"ts\":125.5,\"dur\":40.25"), "{doc}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        // Complete event without dur.
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"ph":"X","name":"a","ts":0.0,"pid":1,"tid":1,"args":{}}]}"#
        )
        .is_err());
        // Unknown phase.
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"ph":"Q","name":"a","ts":0.0,"pid":1,"tid":1,"args":{}}]}"#
        )
        .is_err());
    }
}
