//! Run artifacts: `trace.jsonl` and `metrics.json` emission, schema
//! validation, and readback helpers for the `repro trace` renderer.
//!
//! ## `trace.jsonl` schema v1
//!
//! One JSON object per line. Two line types:
//!
//! ```text
//! {"v":1,"type":"span","point":L,"id":N,"parent":N|null,"depth":N,
//!  "name":S,"start_us":F,"dur_us":F,"attrs":{K:scalar,...}}
//! {"v":1,"type":"metrics","point":L,"counters":{K:N},"gauges":{K:F},
//!  "histograms":{K:{"count":N,"sum":F,"min":F,"max":F,"buckets":[N;12]}}}
//! ```
//!
//! Span lines appear in close order within a point; exactly one metrics
//! line closes each point. Points appear in submission order, so the file
//! is byte-stable across pool widths except for the `start_us`/`dur_us`
//! timing fields.
//!
//! ## `metrics.json`
//!
//! A single object: `{"v":1,"points":{label:metrics},"merged":metrics,
//! "timing":{"jobs":N,"wall_ms":F,"cache":{K:N}?}}`. Everything except the
//! `timing` key is deterministic; [`strip_timing`] removes it for
//! byte-level diffing. The optional `cache` sub-object carries the run's
//! stage-cache hit/miss/store counters ([`crate::cache_stats`]) — inside
//! `timing` because cache behavior depends on prior disk state, exactly
//! the kind of run-to-run variation the deterministic plane excludes.

use crate::json::{parse_json, Json};
use crate::metrics::{Histogram, MetricsSnapshot, BUCKET_EDGES};
use crate::{PointData, SpanEvent};

// Structural trace comparison lives in its own module but belongs to the
// trace toolkit's public surface: `ffet_obs::trace::diff::diff_traces`.
pub use crate::diff;

/// Version stamped on every `trace.jsonl` line and on `metrics.json`.
pub const TRACE_SCHEMA_VERSION: i64 = 1;

/// One flow point's trace, tagged with its sweep label
/// (e.g. `fig9/FFET0.50u0.65/s42`).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    pub label: String,
    pub data: PointData,
}

/// Accumulates every traced point of a repro run and renders the two
/// artifact files.
#[derive(Debug, Clone, Default)]
pub struct RunArtifacts {
    pub points: Vec<LabeledPoint>,
    /// Pool width the run used — recorded under the nondeterministic
    /// `timing` key only.
    pub jobs: usize,
    pub wall_ms: f64,
    /// Stage-cache event counters (`cache.{hit,miss,store}.<stage>` →
    /// count), typically a [`crate::cache_stats`] snapshot taken by the
    /// driver. Rendered under the `timing` key when non-empty.
    pub cache: Vec<(String, u64)>,
}

impl RunArtifacts {
    pub fn new(jobs: usize) -> Self {
        RunArtifacts {
            points: Vec::new(),
            jobs,
            wall_ms: 0.0,
            cache: Vec::new(),
        }
    }

    pub fn push(&mut self, label: String, data: PointData) {
        self.points.push(LabeledPoint { label, data });
    }

    pub fn extend(&mut self, points: impl IntoIterator<Item = LabeledPoint>) {
        self.points.extend(points);
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Render the full `trace.jsonl` body.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for point in &self.points {
            for event in &point.data.events {
                out.push_str(&span_line(&point.label, event).render());
                out.push('\n');
            }
            out.push_str(&metrics_line(&point.label, &point.data.metrics).render());
            out.push('\n');
        }
        out
    }

    /// Metrics of every point merged in submission order.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for point in &self.points {
            merged.merge(&point.data.metrics);
        }
        merged
    }

    /// Render the `metrics.json` body.
    pub fn metrics_json(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|p| (p.label.clone(), p.data.metrics.to_json()))
            .collect();
        let mut timing = vec![
            ("jobs".into(), Json::Int(self.jobs as i64)),
            ("wall_ms".into(), Json::Num(self.wall_ms)),
        ];
        if !self.cache.is_empty() {
            timing.push((
                "cache".into(),
                Json::Obj(
                    self.cache
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                        .collect(),
                ),
            ));
        }
        let doc = Json::Obj(vec![
            ("v".into(), Json::Int(TRACE_SCHEMA_VERSION)),
            ("points".into(), Json::Obj(points)),
            ("merged".into(), self.merged_metrics().to_json()),
            ("timing".into(), Json::Obj(timing)),
        ]);
        doc.render()
    }
}

fn span_line(label: &str, event: &SpanEvent) -> Json {
    Json::Obj(vec![
        ("v".into(), Json::Int(TRACE_SCHEMA_VERSION)),
        ("type".into(), Json::Str("span".into())),
        ("point".into(), Json::Str(label.to_string())),
        ("id".into(), Json::Int(i64::from(event.id))),
        (
            "parent".into(),
            event.parent.map_or(Json::Null, |p| Json::Int(i64::from(p))),
        ),
        ("depth".into(), Json::Int(i64::from(event.depth))),
        ("name".into(), Json::Str(event.name.clone())),
        ("start_us".into(), Json::Num(event.start_us)),
        ("dur_us".into(), Json::Num(event.dur_us)),
        (
            "attrs".into(),
            Json::Obj(
                event
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        ),
    ])
}

fn metrics_line(label: &str, metrics: &MetricsSnapshot) -> Json {
    let mut fields = vec![
        ("v".into(), Json::Int(TRACE_SCHEMA_VERSION)),
        ("type".into(), Json::Str("metrics".into())),
        ("point".into(), Json::Str(label.to_string())),
    ];
    if let Json::Obj(metric_fields) = metrics.to_json() {
        fields.extend(metric_fields);
    }
    Json::Obj(fields)
}

/// Remove the nondeterministic `timing` key from a `metrics.json` body and
/// re-render, for byte-level determinism comparisons.
pub fn strip_timing(metrics_json: &str) -> Result<String, String> {
    let parsed = parse_json(metrics_json)?;
    match parsed {
        Json::Obj(fields) => {
            Ok(Json::Obj(fields.into_iter().filter(|(k, _)| k != "timing").collect()).render())
        }
        _ => Err("metrics.json root is not an object".into()),
    }
}

/// Summary statistics returned by [`validate_trace`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    pub span_lines: usize,
    pub metrics_lines: usize,
    pub points: usize,
}

/// Validate a `trace.jsonl` body against schema v1. Checks, per line:
/// version, line type, field presence and JSON types, scalar-only attrs,
/// 12-element histogram bucket arrays; and per point: span-id uniqueness
/// and parent ids that refer to spans of the same point. (Parents close
/// *after* their children, so parent resolution is a second pass over the
/// point, not a seen-earlier check.)
pub fn validate_trace(text: &str) -> Result<TraceStats, String> {
    /// (label, span ids, (line, parent id) refs) of the point being read.
    type OpenPoint = (String, Vec<u32>, Vec<(usize, u32)>);
    let mut stats = TraceStats::default();
    let mut current: Option<OpenPoint> = None;

    let finish_point = |point: OpenPoint, stats: &mut TraceStats| -> Result<(), String> {
        let (label, ids, parents) = point;
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != ids.len() {
            return Err(format!("point {label:?}: duplicate span ids"));
        }
        for (line_no, parent) in parents {
            if sorted.binary_search(&parent).is_err() {
                return Err(format!(
                    "line {line_no}: parent {parent} not a span id of point {label:?}"
                ));
            }
        }
        stats.points += 1;
        Ok(())
    };

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_json(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let version = obj
            .get("v")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("line {line_no}: missing integer \"v\""))?;
        if version != TRACE_SCHEMA_VERSION {
            return Err(format!(
                "line {line_no}: schema version {version}, expected {TRACE_SCHEMA_VERSION}"
            ));
        }
        let kind = obj
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line_no}: missing string \"type\""))?;
        let label = obj
            .get("point")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line_no}: missing string \"point\""))?
            .to_string();
        match kind {
            "span" => {
                stats.span_lines += 1;
                let id = require_u32(&obj, "id", line_no)?;
                for key in ["start_us", "dur_us"] {
                    obj.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("line {line_no}: missing number {key:?}"))?;
                }
                obj.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {line_no}: missing string \"name\""))?;
                require_u32(&obj, "depth", line_no)?;
                let parent = match obj.get("parent") {
                    Some(Json::Null) => None,
                    Some(Json::Int(p)) => Some(
                        u32::try_from(*p)
                            .map_err(|_| format!("line {line_no}: negative parent id"))?,
                    ),
                    _ => return Err(format!("line {line_no}: missing \"parent\" (int or null)")),
                };
                match obj.get("attrs") {
                    Some(Json::Obj(attrs)) => {
                        for (key, value) in attrs {
                            if matches!(value, Json::Arr(_) | Json::Obj(_)) {
                                return Err(format!(
                                    "line {line_no}: attr {key:?} is not a scalar"
                                ));
                            }
                        }
                    }
                    _ => return Err(format!("line {line_no}: missing object \"attrs\"")),
                }
                match &mut current {
                    Some((open_label, ids, parents)) if *open_label == label => {
                        ids.push(id);
                        if let Some(p) = parent {
                            parents.push((line_no, p));
                        }
                    }
                    Some(_) => {
                        // A span line for a new point: the previous point
                        // must already have been closed by a metrics line.
                        return Err(format!(
                            "line {line_no}: point {label:?} starts before previous point's metrics line"
                        ));
                    }
                    None => {
                        let parents = parent.map(|p| (line_no, p)).into_iter().collect();
                        current = Some((label, vec![id], parents));
                    }
                }
            }
            "metrics" => {
                stats.metrics_lines += 1;
                for key in ["counters", "gauges", "histograms"] {
                    match obj.get(key) {
                        Some(Json::Obj(_)) => {}
                        _ => return Err(format!("line {line_no}: missing object {key:?}")),
                    }
                }
                if let Some(Json::Obj(histograms)) = obj.get("histograms") {
                    for (name, hist) in histograms {
                        let buckets = hist.get("buckets").ok_or_else(|| {
                            format!("line {line_no}: histogram {name:?} missing buckets")
                        })?;
                        match buckets {
                            Json::Arr(items) if items.len() == BUCKET_EDGES.len() + 1 => {}
                            _ => {
                                return Err(format!(
                                    "line {line_no}: histogram {name:?} needs {} buckets",
                                    BUCKET_EDGES.len() + 1
                                ))
                            }
                        }
                        for key in ["count", "sum", "min", "max"] {
                            hist.get(key).and_then(Json::as_f64).ok_or_else(|| {
                                format!("line {line_no}: histogram {name:?} missing {key:?}")
                            })?;
                        }
                    }
                }
                match current.take() {
                    Some(point) if point.0 == label => finish_point(point, &mut stats)?,
                    Some((open_label, ..)) => {
                        return Err(format!(
                            "line {line_no}: metrics for {label:?} while point {open_label:?} is open"
                        ));
                    }
                    // A point may legitimately have zero spans (e.g. a
                    // skipped job) — its metrics line alone closes it.
                    None => stats.points += 1,
                }
            }
            other => return Err(format!("line {line_no}: unknown line type {other:?}")),
        }
    }
    if let Some((label, ..)) = current {
        return Err(format!(
            "point {label:?} has span lines but no metrics line"
        ));
    }
    Ok(stats)
}

fn require_u32(obj: &Json, key: &str, line_no: usize) -> Result<u32, String> {
    obj.get(key)
        .and_then(Json::as_i64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("line {line_no}: missing non-negative integer {key:?}"))
}

/// All point labels present in a `trace.jsonl` body, in file order.
pub fn point_labels(text: &str) -> Vec<String> {
    let mut labels: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(obj) = parse_json(line) else { continue };
        if let Some(label) = obj.get("point").and_then(Json::as_str) {
            if labels.last().map(String::as_str) != Some(label) {
                labels.push(label.to_string());
            }
        }
    }
    labels
}

/// Reconstruct one point's [`PointData`] from a `trace.jsonl` body.
pub fn parse_point(text: &str, label: &str) -> Result<PointData, String> {
    let mut data = PointData::default();
    let mut found = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if obj.get("point").and_then(Json::as_str) != Some(label) {
            continue;
        }
        found = true;
        match obj.get("type").and_then(Json::as_str) {
            Some("span") => data.events.push(parse_span_event(&obj, idx + 1)?),
            Some("metrics") => data.metrics = parse_metrics(&obj),
            _ => {}
        }
    }
    if found {
        Ok(data)
    } else {
        Err(format!("no point labeled {label:?} in trace"))
    }
}

fn parse_span_event(obj: &Json, line_no: usize) -> Result<SpanEvent, String> {
    let attrs = match obj.get("attrs") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    Json::Str(s) => crate::AttrValue::Str(s.clone()),
                    Json::Int(i) => crate::AttrValue::Int(*i),
                    Json::Num(x) => crate::AttrValue::Float(*x),
                    Json::Bool(b) => crate::AttrValue::Bool(*b),
                    _ => crate::AttrValue::Str(v.render()),
                };
                (k.clone(), value)
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok(SpanEvent {
        id: require_u32(obj, "id", line_no)?,
        parent: obj
            .get("parent")
            .and_then(Json::as_i64)
            .and_then(|p| u32::try_from(p).ok()),
        depth: require_u32(obj, "depth", line_no)? as u16,
        name: obj
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        start_us: obj.get("start_us").and_then(Json::as_f64).unwrap_or(0.0),
        dur_us: obj.get("dur_us").and_then(Json::as_f64).unwrap_or(0.0),
        attrs,
    })
}

fn parse_metrics(obj: &Json) -> MetricsSnapshot {
    let mut snapshot = MetricsSnapshot::default();
    if let Some(Json::Obj(counters)) = obj.get("counters") {
        for (k, v) in counters {
            if let Some(i) = v.as_i64() {
                snapshot.counters.insert(k.clone(), i);
            }
        }
    }
    if let Some(Json::Obj(gauges)) = obj.get("gauges") {
        for (k, v) in gauges {
            if let Some(x) = v.as_f64() {
                snapshot.gauges.insert(k.clone(), x);
            }
        }
    }
    if let Some(Json::Obj(histograms)) = obj.get("histograms") {
        for (k, h) in histograms {
            let mut hist = Histogram {
                count: h.get("count").and_then(Json::as_i64).unwrap_or(0) as u64,
                sum: h.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                min: h.get("min").and_then(Json::as_f64).unwrap_or(0.0),
                max: h.get("max").and_then(Json::as_f64).unwrap_or(0.0),
                buckets: [0; BUCKET_EDGES.len() + 1],
            };
            if let Some(Json::Arr(items)) = h.get("buckets") {
                for (slot, item) in hist.buckets.iter_mut().zip(items.iter()) {
                    *slot = item.as_i64().unwrap_or(0) as u64;
                }
            }
            snapshot.histograms.insert(k.clone(), hist);
        }
    }
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Collector};

    fn sample_artifacts() -> RunArtifacts {
        let mut artifacts = RunArtifacts::new(2);
        for label in ["exp/a", "exp/b"] {
            let collector = Collector::new();
            let guard = collector.install();
            let root = span("flow").attr("seed", "42");
            let child = span("flow.pnr").attr("cells", 10_i64);
            crate::counter_add("route.ripups", 3);
            crate::gauge_set("place.hpwl_nm", 1234.5);
            crate::observe("sta.slack_ps", -12.0);
            crate::observe("sta.slack_ps", 55.0);
            child.close();
            root.close();
            drop(guard);
            artifacts.push(label.to_string(), collector.finish());
        }
        artifacts.wall_ms = 17.0;
        artifacts
    }

    #[test]
    fn emitted_trace_validates() {
        let artifacts = sample_artifacts();
        let trace = artifacts.trace_jsonl();
        let stats = validate_trace(&trace).unwrap();
        assert_eq!(stats.points, 2);
        assert_eq!(stats.span_lines, 4);
        assert_eq!(stats.metrics_lines, 2);
        assert_eq!(point_labels(&trace), vec!["exp/a", "exp/b"]);
    }

    #[test]
    fn parse_point_roundtrips_deterministic_fields() {
        let artifacts = sample_artifacts();
        let trace = artifacts.trace_jsonl();
        let parsed = parse_point(&trace, "exp/a").unwrap();
        let original = &artifacts.points[0].data;
        assert_eq!(parsed.metrics, original.metrics);
        assert_eq!(parsed.events.len(), original.events.len());
        for (p, o) in parsed.events.iter().zip(original.events.iter()) {
            assert_eq!(p.id, o.id);
            assert_eq!(p.parent, o.parent);
            assert_eq!(p.name, o.name);
            assert_eq!(p.attrs, o.attrs);
        }
        assert!(parse_point(&trace, "exp/zz").is_err());
    }

    #[test]
    fn strip_timing_removes_only_timing() {
        let artifacts = sample_artifacts();
        let body = artifacts.metrics_json();
        assert!(body.contains("\"timing\""));
        let stripped = strip_timing(&body).unwrap();
        assert!(!stripped.contains("\"timing\""));
        assert!(stripped.contains("\"merged\""));
        assert!(stripped.contains("\"route.ripups\""));
        // A differently-timed run — including one with cache counters, a
        // pure disk-state artifact — strips to the same bytes.
        let mut other = sample_artifacts();
        other.jobs = 7;
        other.wall_ms = 9999.0;
        other.cache = vec![("cache.hit.synth".into(), 3)];
        assert!(other.metrics_json().contains("cache.hit.synth"));
        assert_eq!(strip_timing(&other.metrics_json()).unwrap(), stripped);
    }

    #[test]
    fn strip_timing_is_stable_across_nested_span_timings() {
        // Three levels of nesting, run twice: wall-clock differences on
        // every nested span must be invisible to both the stripped
        // metrics.json bytes and the structural point comparator.
        let run = |work: fn()| {
            let mut artifacts = RunArtifacts::new(1);
            let collector = Collector::new();
            let guard = collector.install();
            let root = span("flow");
            let mid = span("flow.pnr").attr("cells", 8_i64);
            let leaf = span("flow.pnr.route");
            crate::counter_add("route.rounds", 2);
            work(); // perturb wall clock only
            leaf.close();
            mid.close();
            root.close();
            drop(guard);
            artifacts.push("exp/nested".to_string(), collector.finish());
            artifacts
        };
        let fast = run(|| {});
        let slow = run(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        // Spans carry distinct depths and nest leaf-inside-mid-inside-root.
        let depths: Vec<u16> = fast.points[0].data.events.iter().map(|e| e.depth).collect();
        assert_eq!(depths.iter().max(), Some(&2));
        assert_eq!(
            strip_timing(&fast.metrics_json()).unwrap(),
            strip_timing(&slow.metrics_json()).unwrap()
        );
        assert!(crate::diff::diff_points(&fast.points[0].data, &slow.points[0].data).is_empty());
    }

    #[test]
    fn merged_metrics_accumulate() {
        let artifacts = sample_artifacts();
        let merged = artifacts.merged_metrics();
        assert_eq!(merged.counters["route.ripups"], 6);
        assert_eq!(merged.histograms["sta.slack_ps"].count, 4);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        // Wrong version.
        assert!(validate_trace(
            r#"{"v":2,"type":"metrics","point":"p","counters":{},"gauges":{},"histograms":{}}"#
        )
        .is_err());
        // Unknown type.
        assert!(validate_trace(r#"{"v":1,"type":"zap","point":"p"}"#).is_err());
        // Span whose parent id doesn't exist in the point.
        let bad_parent = concat!(
            r#"{"v":1,"type":"span","point":"p","id":0,"parent":9,"depth":1,"name":"x","start_us":0.0,"dur_us":1.0,"attrs":{}}"#,
            "\n",
            r#"{"v":1,"type":"metrics","point":"p","counters":{},"gauges":{},"histograms":{}}"#,
        );
        assert!(validate_trace(bad_parent).is_err());
        // Non-scalar attr.
        assert!(validate_trace(
            r#"{"v":1,"type":"span","point":"p","id":0,"parent":null,"depth":0,"name":"x","start_us":0.0,"dur_us":1.0,"attrs":{"a":[1]}}"#
        )
        .is_err());
        // Trailing open point (no metrics line).
        assert!(validate_trace(
            r#"{"v":1,"type":"span","point":"p","id":0,"parent":null,"depth":0,"name":"x","start_us":0.0,"dur_us":1.0,"attrs":{}}"#
        )
        .is_err());
        // Histogram with the wrong bucket count.
        assert!(validate_trace(
            r#"{"v":1,"type":"metrics","point":"p","counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":0.0,"min":0.0,"max":0.0,"buckets":[0,0]}}}"#
        )
        .is_err());
    }

    #[test]
    fn validator_accepts_parent_closing_after_child() {
        // Parents serialize after children (close order); the validator
        // must not require parents to appear first.
        let trace = concat!(
            r#"{"v":1,"type":"span","point":"p","id":1,"parent":0,"depth":1,"name":"child","start_us":1.0,"dur_us":1.0,"attrs":{}}"#,
            "\n",
            r#"{"v":1,"type":"span","point":"p","id":0,"parent":null,"depth":0,"name":"root","start_us":0.0,"dur_us":5.0,"attrs":{}}"#,
            "\n",
            r#"{"v":1,"type":"metrics","point":"p","counters":{},"gauges":{},"histograms":{}}"#,
        );
        let stats = validate_trace(trace).unwrap();
        assert_eq!(stats.span_lines, 2);
        assert_eq!(stats.points, 1);
    }
}
