//! Deterministic metrics registry: counters, gauges and histograms.
//!
//! Metric *values* are part of the determinism contract: for a given design,
//! seed and fault plan they are identical at any pool width, because each
//! flow point is executed single-threaded inside its own collector and the
//! runner merges per-point snapshots in submission order. Wall-clock span
//! durations are explicitly *not* covered — see `RunArtifacts` for how the
//! two are separated in the emitted files.

use std::collections::BTreeMap;

use crate::json::Json;

/// Histogram bucket edges, shared by every histogram in the registry.
///
/// A symmetric log-ish scale around zero: slack distributions (ps) need to
/// resolve both large negative violations and large positive margins, and
/// displacement distributions (CPP) live in the small-positive decades.
/// Bucket `i` counts values `v <= BUCKET_EDGES[i]` (first matching edge);
/// the final 12th bucket is the `> 1e4` overflow.
pub const BUCKET_EDGES: [f64; 11] = [-1e4, -1e3, -1e2, -1e1, -1.0, 0.0, 1.0, 1e1, 1e2, 1e3, 1e4];

/// Fixed-bucket histogram. Buckets are non-cumulative counts per bin.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: [u64; BUCKET_EDGES.len() + 1],
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = BUCKET_EDGES
            .iter()
            .position(|&edge| v <= edge)
            .unwrap_or(BUCKET_EDGES.len());
        self.buckets[idx] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merge another histogram into this one (bucketwise addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Int(self.count as i64)),
            ("sum".into(), Json::Num(self.sum)),
            ("min".into(), Json::Num(self.min)),
            ("max".into(), Json::Num(self.max)),
            (
                "buckets".into(),
                Json::Arr(self.buckets.iter().map(|&b| Json::Int(b as i64)).collect()),
            ),
        ])
    }
}

/// A point-in-time snapshot of every metric recorded by one collector.
///
/// `BTreeMap` keys give a deterministic serialization order regardless of
/// the order metrics were first touched.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, i64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another snapshot into this one. Counters and histograms are
    /// additive; gauges are last-write-wins, which is deterministic because
    /// snapshots are always merged in submission order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_sorted() {
        for w in BUCKET_EDGES.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bucket_assignment_uses_first_edge_at_or_above() {
        let mut h = Histogram::default();
        h.observe(-20000.0); // <= -1e4 → bucket 0
        h.observe(0.0); // <= 0.0 → bucket 5
        h.observe(0.5); // <= 1.0 → bucket 6
        h.observe(1.0); // <= 1.0 → bucket 6
        h.observe(1.5); // <= 1e1 → bucket 7
        h.observe(99999.0); // > 1e4 → overflow bucket 11
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[6], 2);
        assert_eq!(h.buckets[7], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_edges() {
        // Every edge value lands in its own bucket (the `v <= edge` bucket),
        // and the next representable value above it spills into the next.
        for (i, &edge) in BUCKET_EDGES.iter().enumerate() {
            let mut h = Histogram::default();
            h.observe(edge);
            assert_eq!(h.buckets[i], 1, "edge {edge} must land in bucket {i}");
            let above = if edge == 0.0 {
                f64::MIN_POSITIVE
            } else {
                edge + edge.abs() * f64::EPSILON * 2.0
            };
            let mut h = Histogram::default();
            h.observe(above);
            assert_eq!(
                h.buckets[i + 1],
                1,
                "just above edge {edge} must land in bucket {}",
                i + 1
            );
        }
        // Everything beyond the last edge shares the overflow bucket.
        let mut h = Histogram::default();
        h.observe(f64::INFINITY);
        assert_eq!(h.buckets[BUCKET_EDGES.len()], 1);
        assert_eq!(h.count, 1);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        h.observe(2.0);
        h.observe(-4.0);
        h.observe(10.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -4.0);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.sum, 8.0);
        assert!((h.mean() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::default();
        a.observe(1.0);
        a.observe(-5.0);
        let mut b = Histogram::default();
        b.observe(500.0);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = Histogram::default();
        for v in [1.0, -5.0, 500.0] {
            direct.observe(v);
        }
        assert_eq!(merged, direct);
        // Merging into an empty histogram copies, including min/max.
        let mut empty = Histogram::default();
        empty.merge(&b);
        assert_eq!(empty, b);
    }

    #[test]
    fn snapshot_merge_semantics() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 2);
        a.gauges.insert("g".into(), 1.0);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 3);
        b.gauges.insert("g".into(), 7.0);
        b.histograms.entry("h".into()).or_default().observe(1.0);
        a.merge(&b);
        assert_eq!(a.counters["c"], 5);
        assert_eq!(a.gauges["g"], 7.0); // last write wins
        assert_eq!(a.histograms["h"].count, 1);
    }
}
