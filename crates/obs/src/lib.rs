//! `ffet-obs`: span-based tracing, deterministic metrics and run artifacts.
//!
//! The flow instruments itself through an *ambient* collector: a
//! thread-local handle installed by whoever owns the run (the DoE pool
//! installs one per job; `repro` subcommands may install one around a single
//! flow). Instrumentation sites call the free functions in this crate —
//! [`span`], [`counter_add`], [`gauge_set`], [`observe`] — which no-op when
//! no collector is installed, so library crates stay usable outside any
//! harness.
//!
//! Determinism contract: metric *values* and the span *tree shape*
//! (names, nesting, attributes, event order) are deterministic for a given
//! design/seed/fault-plan at any pool width; span *durations* and start
//! offsets are wall-clock and are not. Artifact emission keeps the two
//! separated so tests can diff the deterministic part byte-for-byte.

pub mod diff;
pub mod export;
mod json;
pub mod ledger;
mod metrics;
pub mod perf;
mod render;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Mutex;
use std::time::Instant;

pub use export::{chrome_trace, validate_chrome_trace, ChromeTraceStats};
pub use json::{parse_json, Json};
pub use ledger::{fnv1a64, hash_hex, Ledger, LedgerEntry, LedgerTiming};
pub use metrics::{Histogram, MetricsSnapshot, BUCKET_EDGES};
pub use render::render_point;
pub use trace::{
    parse_point, point_labels, strip_timing, validate_trace, LabeledPoint, RunArtifacts,
    TraceStats, TRACE_SCHEMA_VERSION,
};

/// A scalar attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(i64::from(v))
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(i64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        // Artifact attribute counts fit comfortably; saturate rather than
        // wrap if something pathological shows up.
        AttrValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Str(s) => Json::Str(s.clone()),
            AttrValue::Int(i) => Json::Int(*i),
            AttrValue::Float(x) => Json::Num(*x),
            AttrValue::Bool(b) => Json::Bool(*b),
        }
    }
}

/// One closed (or abandoned) span, as recorded by a collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Point-local id, assigned in open order starting at 0.
    pub id: u32,
    pub parent: Option<u32>,
    /// Nesting depth: 0 for roots.
    pub depth: u16,
    pub name: String,
    /// Microseconds since the collector's epoch. Wall-clock: NOT part of
    /// the determinism contract.
    pub start_us: f64,
    /// Wall-clock duration in microseconds. NOT deterministic.
    pub dur_us: f64,
    pub attrs: Vec<(String, AttrValue)>,
}

/// Everything one collector gathered for one flow point: the closed spans
/// (in close order) plus the final metrics snapshot. Plain data — `Send`,
/// clonable, comparable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointData {
    pub events: Vec<SpanEvent>,
    pub metrics: MetricsSnapshot,
}

struct Inner {
    epoch: Instant,
    next_id: u32,
    /// Open span ids, outermost first.
    stack: Vec<u32>,
    events: Vec<SpanEvent>,
    metrics: MetricsSnapshot,
}

/// Handle to a per-point trace/metrics buffer. Cheap to clone (`Rc`);
/// single-threaded by design — each flow point runs on one worker thread
/// with its own collector, which is what makes metric values independent of
/// pool width.
#[derive(Clone)]
pub struct Collector {
    inner: Rc<RefCell<Inner>>,
}

thread_local! {
    static CURRENT: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    pub fn new() -> Self {
        Collector {
            inner: Rc::new(RefCell::new(Inner {
                epoch: Instant::now(),
                next_id: 0,
                stack: Vec::new(),
                events: Vec::new(),
                metrics: MetricsSnapshot::default(),
            })),
        }
    }

    /// Install this collector as the thread's ambient collector. The
    /// returned guard restores the previous one (if any) on drop, so
    /// installs nest correctly.
    #[must_use = "dropping the guard immediately uninstalls the collector"]
    pub fn install(&self) -> InstallGuard {
        let previous = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        InstallGuard { previous }
    }

    /// Drain everything recorded so far into a [`PointData`]. Spans still
    /// open are force-closed first (with an `unclosed` marker attribute) so
    /// panicking flows still yield a well-formed trace.
    pub fn finish(&self) -> PointData {
        // Close any spans left open (e.g. a panic unwound past them and the
        // `Span` guard was consumed by `catch_unwind`'s payload drop order).
        loop {
            let open = {
                let inner = self.inner.borrow();
                inner.stack.last().copied()
            };
            match open {
                None => break,
                Some(id) => {
                    let mut inner = self.inner.borrow_mut();
                    let now_us = inner.epoch.elapsed().as_secs_f64() * 1e6;
                    inner.stack.pop();
                    // The span guard never recorded this id; synthesize an
                    // event so parent links in child events stay valid.
                    let (parent, depth) = inner
                        .stack
                        .last()
                        .map_or((None, 0), |&p| (Some(p), inner.stack.len() as u16));
                    inner.events.push(SpanEvent {
                        id,
                        parent,
                        depth,
                        name: "<unclosed>".into(),
                        start_us: now_us,
                        dur_us: 0.0,
                        attrs: vec![("unclosed".into(), AttrValue::Bool(true))],
                    });
                }
            }
        }
        let mut inner = self.inner.borrow_mut();
        PointData {
            events: std::mem::take(&mut inner.events),
            metrics: std::mem::take(&mut inner.metrics),
        }
    }

    fn open_span(&self, start: Instant) -> OpenToken {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_id;
        inner.next_id += 1;
        let parent = inner.stack.last().copied();
        let depth = inner.stack.len() as u16;
        let start_us = start.duration_since(inner.epoch).as_secs_f64() * 1e6;
        inner.stack.push(id);
        OpenToken {
            collector: self.clone(),
            id,
            parent,
            depth,
            start_us,
        }
    }

    fn close_span(&self, token: &OpenToken, event: SpanEvent) {
        let mut inner = self.inner.borrow_mut();
        // Normally the closing span is the innermost open one; on early
        // returns / panics an outer span may close while inner ids are
        // still stacked — remove just this id, leaving the rest.
        if let Some(pos) = inner.stack.iter().rposition(|&id| id == token.id) {
            inner.stack.remove(pos);
        }
        inner.events.push(event);
    }
}

/// Guard returned by [`Collector::install`].
pub struct InstallGuard {
    previous: Option<Collector>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

fn with_collector<R>(f: impl FnOnce(&Collector) -> R) -> Option<R> {
    CURRENT
        .with(|c| c.borrow().as_ref().cloned())
        .map(|col| f(&col))
}

struct OpenToken {
    collector: Collector,
    id: u32,
    parent: Option<u32>,
    depth: u16,
    start_us: f64,
}

/// An in-flight span. Create with [`span`]; close explicitly with
/// [`Span::close`] or [`Span::close_ms`], or let it drop (error paths and
/// panics record the span automatically).
pub struct Span {
    start: Instant,
    name: &'static str,
    attrs: Vec<(String, AttrValue)>,
    open: Option<OpenToken>,
}

/// Open a span named `name` under the thread's ambient collector. Without
/// an installed collector the span still measures wall time (so
/// [`Span::close_ms`] works) but records nothing.
pub fn span(name: &'static str) -> Span {
    let start = Instant::now();
    let open = with_collector(|c| c.open_span(start));
    Span {
        start,
        name,
        attrs: Vec::new(),
        open,
    }
}

impl Span {
    /// Builder-style attribute attachment.
    #[must_use]
    pub fn attr(mut self, key: &str, value: impl Into<AttrValue>) -> Span {
        self.set_attr(key, value);
        self
    }

    /// Attach or update an attribute after creation (e.g. an outcome known
    /// only at the end of the spanned region).
    pub fn set_attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if self.open.is_none() {
            return; // disabled span: don't accumulate garbage
        }
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key.to_string(), value));
        }
    }

    /// Close the span, recording the event.
    pub fn close(mut self) {
        self.finish();
    }

    /// Close the span and return its wall-clock duration in milliseconds.
    /// Works (returns elapsed time) even when tracing is disabled, so
    /// legacy stage-time accounting can be derived unconditionally.
    pub fn close_ms(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        let elapsed = self.start.elapsed();
        if let Some(token) = self.open.take() {
            let event = SpanEvent {
                id: token.id,
                parent: token.parent,
                depth: token.depth,
                name: self.name.to_string(),
                start_us: token.start_us,
                dur_us: elapsed.as_secs_f64() * 1e6,
                attrs: std::mem::take(&mut self.attrs),
            };
            token.collector.close_span(&token, event);
        }
        elapsed.as_secs_f64() * 1e3
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.open.is_some() {
            self.finish();
        }
    }
}

/// Add `delta` to a counter. No-op without an installed collector.
pub fn counter_add(name: &str, delta: i64) {
    with_collector(|c| {
        let mut inner = c.inner.borrow_mut();
        *inner.metrics.counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// Set a gauge to `value`. No-op without an installed collector.
pub fn gauge_set(name: &str, value: f64) {
    with_collector(|c| {
        let mut inner = c.inner.borrow_mut();
        inner.metrics.gauges.insert(name.to_string(), value);
    });
}

/// Merge a previously captured metrics snapshot into the thread's ambient
/// collector (counters/histograms add, gauges last-write-wins). No-op
/// without a collector. This is how a nested job pool folds per-worker
/// metrics back into its parent's registry: merging in submission order
/// keeps the merged values deterministic at any worker count.
pub fn merge_metrics(other: &MetricsSnapshot) {
    if other.is_empty() {
        return;
    }
    with_collector(|c| c.inner.borrow_mut().metrics.merge(other));
}

/// Record one observation into a histogram. No-op without a collector.
pub fn observe(name: &str, value: f64) {
    with_collector(|c| {
        let mut inner = c.inner.borrow_mut();
        inner
            .metrics
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    });
}

/// Run `f` under a fresh, temporarily installed collector and return its
/// result together with everything that collector recorded. The previous
/// ambient collector (if any) is restored afterwards; `f`'s instrumentation
/// lands only in the returned [`PointData`]. This is the recording half of
/// the stage-cache protocol: a stage computes under `capture`, the capture
/// is persisted alongside the artifact, and [`replay`] splices it back into
/// whichever collector is ambient — identically whether the stage ran fresh
/// or was rehydrated from the cache.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, PointData) {
    let collector = Collector::new();
    let guard = collector.install();
    let value = f();
    drop(guard);
    (value, collector.finish())
}

/// Wall-clock microseconds since the ambient collector's epoch; `0.0` when
/// no collector is installed. Callers of [`replay`] use this as the
/// `offset_us` so spliced spans slot into the surrounding timeline.
pub fn ambient_elapsed_us() -> f64 {
    with_collector(|c| c.inner.borrow().epoch.elapsed().as_secs_f64() * 1e6).unwrap_or(0.0)
}

/// Zero every wall-clock field of a captured point, leaving only the
/// deterministic structure (ids, parents, depths, names, attrs, metric
/// values). Stage-cache payloads are stripped before hashing/storing so the
/// same computation always serializes to the same bytes.
pub fn strip_point_timing(data: &mut PointData) {
    for event in &mut data.events {
        event.start_us = 0.0;
        event.dur_us = 0.0;
    }
}

/// Splice a previously [`capture`]d point into the thread's ambient
/// collector, as if its spans had just run here: ids are rebased onto the
/// collector's id counter, root events are re-parented under the currently
/// open span (and get `root_attrs` appended), depths shift by the current
/// stack depth, and metrics merge. Because a capture's event ids are dense
/// (`finish` force-closes every opened id), replay reproduces exactly the
/// ids/parents/depths/order a native run would have recorded. `start_us`
/// values are offset by `offset_us`; durations are replayed verbatim — both
/// are outside the determinism contract. No-op without a collector.
pub fn replay(data: &PointData, offset_us: f64, root_attrs: &[(String, AttrValue)]) {
    with_collector(|c| {
        let mut inner = c.inner.borrow_mut();
        let base = inner.next_id;
        let anchor = inner.stack.last().copied();
        let extra_depth = inner.stack.len() as u16;
        for event in &data.events {
            let mut attrs = event.attrs.clone();
            let parent = match event.parent {
                Some(p) => Some(base + p),
                None => {
                    for (key, value) in root_attrs {
                        match attrs.iter_mut().find(|(k, _)| k == key) {
                            Some(slot) => slot.1 = value.clone(),
                            None => attrs.push((key.clone(), value.clone())),
                        }
                    }
                    anchor
                }
            };
            inner.events.push(SpanEvent {
                id: base + event.id,
                parent,
                depth: event.depth + extra_depth,
                name: event.name.clone(),
                start_us: event.start_us + offset_us,
                dur_us: event.dur_us,
                attrs,
            });
        }
        inner.next_id = base + data.events.len() as u32;
        inner.metrics.merge(&data.metrics);
    });
}

/// Process-global stage-cache event registry, deliberately *outside* the
/// collector metrics plane: cache hit/miss counts depend on what previous
/// runs left on disk, so folding them into per-point metrics would break
/// the cold-vs-warm byte-identity of `metrics.json`'s deterministic part.
/// They surface only through the timing-stripped side of artifacts.
static CACHE_STATS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

fn cache_stats_lock() -> std::sync::MutexGuard<'static, BTreeMap<String, u64>> {
    CACHE_STATS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Record one stage-cache event. `name` is one of the catalog literals
/// `cache.hit` / `cache.miss` / `cache.store`; `stage` is the flow stage it
/// happened for (`synth`, `pnr`, ...). Events accumulate process-wide under
/// the key `<name>.<stage>`.
pub fn cache_event(name: &str, stage: &str) {
    *cache_stats_lock()
        .entry(format!("{name}.{stage}"))
        .or_insert(0) += 1;
}

/// Sorted snapshot of every stage-cache event recorded since the last
/// [`cache_stats_reset`].
#[must_use]
pub fn cache_stats() -> Vec<(String, u64)> {
    cache_stats_lock()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clear the process-global stage-cache event registry.
pub fn cache_stats_reset() {
    cache_stats_lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_order() {
        let collector = Collector::new();
        let _guard = collector.install();
        let root = span("flow").attr("seed", "42");
        {
            let a = span("flow.pnr");
            let inner = span("route.round").attr("round", 0_i64);
            inner.close();
            a.close();
        }
        let b = span("flow.sta");
        b.close();
        root.close();
        drop(_guard);
        let data = collector.finish();
        let names: Vec<&str> = data.events.iter().map(|e| e.name.as_str()).collect();
        // Close order: innermost first.
        assert_eq!(names, ["route.round", "flow.pnr", "flow.sta", "flow"]);
        let by_name = |n: &str| data.events.iter().find(|e| e.name == n).unwrap();
        let root_ev = by_name("flow");
        assert_eq!(root_ev.depth, 0);
        assert_eq!(root_ev.parent, None);
        assert_eq!(
            root_ev.attrs,
            vec![("seed".into(), AttrValue::Str("42".into()))]
        );
        let pnr = by_name("flow.pnr");
        assert_eq!(pnr.parent, Some(root_ev.id));
        assert_eq!(pnr.depth, 1);
        let round = by_name("route.round");
        assert_eq!(round.parent, Some(pnr.id));
        assert_eq!(round.depth, 2);
        let sta = by_name("flow.sta");
        assert_eq!(sta.parent, Some(root_ev.id));
        assert!(round.dur_us <= pnr.dur_us + 1.0);
    }

    #[test]
    fn dropped_span_is_recorded() {
        let collector = Collector::new();
        let _guard = collector.install();
        {
            let _sp = span("flow.signoff").attr("errors", 3_i64);
            // early-return path: span dropped without close()
        }
        drop(_guard);
        let data = collector.finish();
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].name, "flow.signoff");
    }

    #[test]
    fn no_collector_is_a_noop_but_close_ms_still_times() {
        let sp = span("orphan");
        counter_add("c", 1);
        gauge_set("g", 1.0);
        observe("h", 1.0);
        let ms = sp.close_ms();
        assert!(ms >= 0.0);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = Collector::new();
        let inner = Collector::new();
        let _og = outer.install();
        counter_add("k", 1);
        {
            let _ig = inner.install();
            counter_add("k", 10);
        }
        counter_add("k", 100);
        drop(_og);
        counter_add("k", 1000); // no collector: dropped
        assert_eq!(outer.finish().metrics.counters["k"], 101);
        assert_eq!(inner.finish().metrics.counters["k"], 10);
    }

    #[test]
    fn set_attr_overwrites() {
        let collector = Collector::new();
        let _guard = collector.install();
        let mut sp = span("s").attr("outcome", "pending");
        sp.set_attr("outcome", "valid");
        sp.close();
        drop(_guard);
        let data = collector.finish();
        assert_eq!(
            data.events[0].attrs,
            vec![("outcome".into(), AttrValue::Str("valid".into()))]
        );
    }

    #[test]
    fn finish_force_closes_abandoned_ids() {
        let collector = Collector::new();
        let guard = collector.install();
        let sp = span("left.open");
        // Simulate a panic payload holding the span: leak it so its Drop
        // never runs, leaving the id on the collector's stack.
        std::mem::forget(sp);
        drop(guard);
        let data = collector.finish();
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].name, "<unclosed>");
    }
}
