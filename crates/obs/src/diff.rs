//! Structural trace comparison: the single implementation behind
//! `ffet trace diff` and the crash-resume differential tests.
//!
//! Two traces are *structurally equal* when they carry the same points in
//! the same order and every point has the same span tree (ids, parents,
//! depths, names, attrs — close order included) and the same metric
//! snapshot (counters, gauges, histograms). Wall-clock span timings
//! (`start_us`/`dur_us`) are explicitly outside the comparison: the
//! determinism contract (DESIGN §7) promises everything *but* them, so a
//! non-empty diff between two runs of the same config is a contract
//! violation, not noise. The `cached` span attribute (stage-cache hit/miss
//! provenance, DESIGN §14) is likewise excluded: whether a stage replayed
//! from the cache is a property of prior disk state and scheduling, not of
//! the artifact, and warm-vs-cold comparisons are exactly what this diff
//! exists for.

use crate::metrics::MetricsSnapshot;
use crate::trace::{parse_point, point_labels};
use crate::PointData;

/// Structurally compares two points. Returns one human-readable line per
/// difference, in a deterministic order (span walk first, then counters,
/// gauges, histograms); empty means structurally identical.
#[must_use]
pub fn diff_points(a: &PointData, b: &PointData) -> Vec<String> {
    let mut out = Vec::new();
    if a.events.len() != b.events.len() {
        out.push(format!(
            "span count: {} vs {}",
            a.events.len(),
            b.events.len()
        ));
    }
    for (idx, (ea, eb)) in a.events.iter().zip(b.events.iter()).enumerate() {
        if ea.name != eb.name {
            out.push(format!("span #{idx} name: {:?} vs {:?}", ea.name, eb.name));
        }
        if (ea.id, ea.parent, ea.depth) != (eb.id, eb.parent, eb.depth) {
            out.push(format!(
                "span #{idx} ({}): tree position (id {}, parent {:?}, depth {}) vs (id {}, parent {:?}, depth {})",
                ea.name, ea.id, ea.parent, ea.depth, eb.id, eb.parent, eb.depth
            ));
        }
        if !attrs_eq(&ea.attrs, &eb.attrs) {
            out.push(format!("span #{idx} ({}): attrs differ", ea.name));
        }
    }
    diff_metrics(&a.metrics, &b.metrics, &mut out);
    out
}

/// Attr-list equality modulo the `cached` provenance attribute.
fn attrs_eq(a: &[(String, crate::AttrValue)], b: &[(String, crate::AttrValue)]) -> bool {
    let significant = |attrs: &[(String, crate::AttrValue)]| -> Vec<(String, crate::AttrValue)> {
        attrs
            .iter()
            .filter(|(k, _)| k != "cached")
            .cloned()
            .collect()
    };
    significant(a) == significant(b)
}

fn diff_metrics(a: &MetricsSnapshot, b: &MetricsSnapshot, out: &mut Vec<String>) {
    for name in a.counters.keys().chain(b.counters.keys()) {
        match (a.counters.get(name), b.counters.get(name)) {
            (Some(x), Some(y)) if x != y => {
                out.push(format!("counter {name}: {x} vs {y}"));
            }
            (Some(x), None) => out.push(format!("counter {name}: {x} vs absent")),
            (None, Some(y)) => out.push(format!("counter {name}: absent vs {y}")),
            _ => {}
        }
    }
    for name in a.gauges.keys().chain(b.gauges.keys()) {
        match (a.gauges.get(name), b.gauges.get(name)) {
            (Some(x), Some(y)) if x != y => {
                out.push(format!("gauge {name}: {x} vs {y}"));
            }
            (Some(x), None) => out.push(format!("gauge {name}: {x} vs absent")),
            (None, Some(y)) => out.push(format!("gauge {name}: absent vs {y}")),
            _ => {}
        }
    }
    for name in a.histograms.keys().chain(b.histograms.keys()) {
        match (a.histograms.get(name), b.histograms.get(name)) {
            (Some(x), Some(y)) if x != y => {
                out.push(format!(
                    "histogram {name}: (count {}, sum {}) vs (count {}, sum {})",
                    x.count, x.sum, y.count, y.sum
                ));
            }
            (Some(_), None) => out.push(format!("histogram {name}: present vs absent")),
            (None, Some(_)) => out.push(format!("histogram {name}: absent vs present")),
            _ => {}
        }
    }
    // chain() visits duplicated shared keys twice, but the match arms that
    // push are asymmetric in at most one visit for missing keys and
    // identical for shared ones — dedup the adjacent repeats.
    out.dedup();
}

/// Structurally compares two whole `trace.jsonl` bodies: same point labels
/// in the same order, and every shared point structurally identical.
/// Returns `Err` only when a trace fails to parse; differences (including
/// label-set mismatches) come back as `Ok(non-empty)`.
pub fn diff_traces(a_text: &str, b_text: &str) -> Result<Vec<String>, String> {
    let a_labels = point_labels(a_text);
    let b_labels = point_labels(b_text);
    let mut out = Vec::new();
    if a_labels != b_labels {
        out.push(format!(
            "point sequences differ: {} vs {} points",
            a_labels.len(),
            b_labels.len()
        ));
        for label in a_labels.iter().filter(|l| !b_labels.contains(l)) {
            out.push(format!("point {label:?}: only in first trace"));
        }
        for label in b_labels.iter().filter(|l| !a_labels.contains(l)) {
            out.push(format!("point {label:?}: only in second trace"));
        }
    }
    for label in a_labels.iter().filter(|l| b_labels.contains(l)) {
        let a_point = parse_point(a_text, label)?;
        let b_point = parse_point(b_text, label)?;
        for line in diff_points(&a_point, &b_point) {
            out.push(format!("point {label:?}: {line}"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Collector};

    fn traced_point(extra_ripups: i64) -> PointData {
        let collector = Collector::new();
        let guard = collector.install();
        let root = span("flow");
        let child = span("flow.route").attr("layer", 2_i64);
        crate::counter_add("route.ripups", 3 + extra_ripups);
        crate::gauge_set("place.hpwl_nm", 500.0);
        crate::observe("sta.slack_ps", 12.0);
        child.close();
        root.close();
        drop(guard);
        collector.finish()
    }

    #[test]
    fn identical_points_have_no_diff() {
        assert_eq!(
            diff_points(&traced_point(0), &traced_point(0)),
            Vec::<String>::new()
        );
    }

    #[test]
    fn timing_differences_are_invisible() {
        let a = traced_point(0);
        let mut b = traced_point(0);
        for event in &mut b.events {
            event.start_us += 1000.0;
            event.dur_us *= 3.0;
        }
        assert!(diff_points(&a, &b).is_empty());
    }

    #[test]
    fn counter_and_structure_drift_is_reported() {
        let a = traced_point(0);
        let b = traced_point(2);
        let diffs = diff_points(&a, &b);
        assert!(
            diffs.iter().any(|d| d.contains("route.ripups")),
            "{diffs:?}"
        );

        let mut c = traced_point(0);
        c.events[0].name = "flow.renamed".into();
        assert!(diff_points(&a, &c).iter().any(|d| d.contains("name")));

        let mut d = traced_point(0);
        d.events.pop();
        assert!(diff_points(&a, &d).iter().any(|d| d.contains("span count")));
    }

    #[test]
    fn cached_attr_is_invisible_but_other_attrs_diff() {
        let a = traced_point(0);
        let mut b = traced_point(0);
        // A warm run marks replayed roots `cached=true`; a cold run marks
        // them `cached=false` (or not at all, inline). All invisible.
        b.events[1]
            .attrs
            .push(("cached".into(), crate::AttrValue::Bool(true)));
        assert!(diff_points(&a, &b).is_empty(), "cached attr must not diff");
        b.events[0]
            .attrs
            .push(("layer".into(), crate::AttrValue::Int(9)));
        assert!(diff_points(&a, &b)
            .iter()
            .any(|d| d.contains("attrs differ")));
    }

    #[test]
    fn trace_diff_spots_label_and_point_drift() {
        let mut a = crate::RunArtifacts::new(1);
        a.push("exp/a".into(), traced_point(0));
        a.push("exp/b".into(), traced_point(0));
        let mut b = crate::RunArtifacts::new(4);
        b.push("exp/a".into(), traced_point(0));
        b.push("exp/b".into(), traced_point(1));

        let same = diff_traces(&a.trace_jsonl(), &a.trace_jsonl()).expect("parse");
        assert!(same.is_empty(), "{same:?}");

        let drift = diff_traces(&a.trace_jsonl(), &b.trace_jsonl()).expect("parse");
        assert!(
            drift
                .iter()
                .any(|d| d.contains("exp/b") && d.contains("route.ripups")),
            "{drift:?}"
        );

        let mut c = crate::RunArtifacts::new(1);
        c.push("exp/a".into(), traced_point(0));
        let missing = diff_traces(&a.trace_jsonl(), &c.trace_jsonl()).expect("parse");
        assert!(
            missing.iter().any(|d| d.contains("only in first trace")),
            "{missing:?}"
        );
    }
}
