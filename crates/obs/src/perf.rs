//! The regression sentinel: compares ledger entries across runs and
//! renders the performance trajectory report.
//!
//! ## Matching and noise policy (DESIGN §13)
//!
//! Entries form groups keyed by `(kind, key, design)`. Within a group the
//! latest entry is compared against a baseline chosen by config
//! signature: the N-back-th earlier entry with the *same* `cfg`. When no
//! same-`cfg` baseline exists the latest earlier entry is used anyway,
//! flagged as config drift — a perturbed config (say an injected fault
//! plan) legitimately changes both `cfg` and the counters, and silently
//! skipping the comparison would let exactly the drift the sentinel
//! exists to catch pass unexamined.
//!
//! The determinism contract splits the checks:
//! - **Hard** (exit 1): counters, gauges, and the metric-snapshot digest
//!   must be *exactly* equal — these are deterministic, so any delta is a
//!   real behavior change, not noise.
//! - **Soft**: wall clock and bench-leg medians are compared against a
//!   percentage noise band; violations fail unless the caller runs in
//!   timings-report-only mode (CI on shared runners).

use crate::ledger::{Ledger, LedgerEntry};

/// How much wall-clock noise is tolerated before a timing delta is
/// reported as a band violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePolicy {
    /// Allowed relative timing drift, percent (default 25).
    pub timing_band_pct: f64,
}

impl Default for NoisePolicy {
    fn default() -> Self {
        NoisePolicy {
            timing_band_pct: 25.0,
        }
    }
}

/// The sentinel's verdict over one ledger.
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Groups that had a baseline and were actually compared.
    pub checked: usize,
    /// Determinism violations: counter/gauge/digest drift. Always fatal.
    pub hard: Vec<String>,
    /// Timing noise-band violations. Fatal unless timings-report-only.
    pub soft: Vec<String>,
    /// Informational: config-drift fallbacks, groups without baselines.
    pub notes: Vec<String>,
}

/// Relative drift of `current` vs `baseline`, in percent.
fn drift_pct(baseline: f64, current: f64) -> f64 {
    if baseline.abs() < 1e-12 {
        if current.abs() < 1e-12 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline.abs() * 100.0
    }
}

/// Compares one entry against its baseline. Returns `(hard, soft)`
/// violation messages, deterministically ordered.
#[must_use]
pub fn compare_entries(
    baseline: &LedgerEntry,
    current: &LedgerEntry,
    policy: &NoisePolicy,
) -> (Vec<String>, Vec<String>) {
    let mut hard = Vec::new();
    if baseline.digest != current.digest {
        hard.push(format!(
            "metric-snapshot digest drift: {} vs {}",
            baseline.digest, current.digest
        ));
    }
    for name in baseline.counters.keys().chain(current.counters.keys()) {
        match (baseline.counters.get(name), current.counters.get(name)) {
            (Some(b), Some(c)) if b != c => {
                hard.push(format!(
                    "counter {name}: {b} -> {c} (must be exactly equal)"
                ));
            }
            (Some(b), None) => hard.push(format!("counter {name}: {b} -> absent")),
            (None, Some(c)) => hard.push(format!("counter {name}: absent -> {c}")),
            _ => {}
        }
    }
    for name in baseline.gauges.keys().chain(current.gauges.keys()) {
        match (baseline.gauges.get(name), current.gauges.get(name)) {
            (Some(b), Some(c)) if b != c => {
                hard.push(format!("gauge {name}: {b} -> {c} (must be exactly equal)"));
            }
            (Some(b), None) => hard.push(format!("gauge {name}: {b} -> absent")),
            (None, Some(c)) => hard.push(format!("gauge {name}: absent -> {c}")),
            _ => {}
        }
    }
    hard.dedup();

    let mut soft = Vec::new();
    let mut band_check = |what: &str, b: f64, c: f64| {
        let pct = drift_pct(b, c);
        if pct.abs() > policy.timing_band_pct {
            soft.push(format!(
                "{what}: {b:.3} ms -> {c:.3} ms ({pct:+.1}% outside the ±{:.0}% band)",
                policy.timing_band_pct
            ));
        }
    };
    band_check(
        "wall clock",
        baseline.timing.wall_ms,
        current.timing.wall_ms,
    );
    for (leg, b) in &baseline.timing.bench {
        if let Some((_, c)) = current.timing.bench.iter().find(|(name, _)| name == leg) {
            band_check(&format!("bench leg {leg}"), *b, *c);
        }
    }
    (hard, soft)
}

/// Runs the sentinel over a loaded ledger: every `(kind, key, design)`
/// group's latest entry against its `n_back`-th prior same-config entry.
#[must_use]
pub fn compare_ledger(ledger: &Ledger, n_back: usize, policy: &NoisePolicy) -> CompareOutcome {
    let n_back = n_back.max(1);
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (idx, entry) in ledger.entries.iter().enumerate() {
        let key = format!("{}/{}/{}", entry.kind, entry.key, entry.design);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, indices)) => indices.push(idx),
            None => groups.push((key, vec![idx])),
        }
    }

    let mut outcome = CompareOutcome::default();
    for (group, indices) in &groups {
        let latest = indices[indices.len() - 1];
        let current = &ledger.entries[latest];
        let prior = &indices[..indices.len() - 1];
        let same_cfg: Vec<usize> = prior
            .iter()
            .copied()
            .filter(|&i| ledger.entries[i].cfg == current.cfg)
            .collect();
        let baseline_idx = if same_cfg.len() >= n_back {
            Some(same_cfg[same_cfg.len() - n_back])
        } else if let Some(&fallback) = prior.last() {
            outcome.notes.push(format!(
                "{group}: config drift — comparing against cfg {} (current {})",
                ledger.entries[fallback].cfg, current.cfg
            ));
            Some(fallback)
        } else {
            outcome
                .notes
                .push(format!("{group}: no baseline entry in ledger"));
            None
        };
        let Some(baseline_idx) = baseline_idx else {
            continue;
        };
        outcome.checked += 1;
        let (hard, soft) = compare_entries(&ledger.entries[baseline_idx], current, policy);
        outcome
            .hard
            .extend(hard.into_iter().map(|m| format!("{group}: {m}")));
        outcome
            .soft
            .extend(soft.into_iter().map(|m| format!("{group}: {m}")));
    }
    if !outcome.hard.is_empty() {
        crate::counter_add("perf.compare.drift", outcome.hard.len() as i64);
    }
    outcome
}

/// Process exit code for a sentinel run: `0` clean, `1` drift or
/// regression, `2` nothing to compare.
#[must_use]
pub fn exit_code(outcome: &CompareOutcome, timings_report_only: bool) -> i32 {
    if outcome.checked == 0 {
        2
    } else if !outcome.hard.is_empty() || (!timings_report_only && !outcome.soft.is_empty()) {
        1
    } else {
        0
    }
}

/// Renders the markdown trajectory report. A pure function of the ledger
/// bytes — re-running it over the same ledger reproduces the same report
/// byte for byte.
#[must_use]
pub fn render_report(ledger: &Ledger) -> String {
    let mut out = String::new();
    out.push_str("# Performance report\n\n");
    out.push_str(&format!(
        "Ledger schema v1 · {} entries ({} torn, {} corrupt lines skipped). \
         Generated by `ffet perf report`; counters and digests are \
         deterministic, wall-clock columns are host-dependent.\n\n",
        ledger.entries.len(),
        ledger.torn,
        ledger.corrupt
    ));

    out.push_str("## Trajectory\n\n");
    out.push_str(
        "| run | kind | key | design | cfg | digest | counters | jobs | host cores | wall ms | cache |\n",
    );
    out.push_str(
        "|----:|------|-----|--------|-----|--------|---------:|-----:|-----------:|--------:|------:|\n",
    );
    for (idx, e) in ledger.entries.iter().enumerate() {
        let short = |s: &str| s.chars().take(8).collect::<String>();
        // Aggregate stage-cache hit-rate recorded by the repro driver as a
        // `cache_hit_rate` pair inside `timing.stages` (DESIGN §14);
        // entries predating the stage cache simply show `-`.
        let cache = e
            .timing
            .stages
            .iter()
            .find(|(name, _)| name == "cache_hit_rate")
            .map_or_else(
                || "-".to_owned(),
                |&(_, rate)| format!("{:.0}%", rate * 100.0),
            );
        out.push_str(&format!(
            "| {} | {} | {} | {} | `{}` | `{}` | {} | {} | {} | {:.1} | {} |\n",
            idx,
            e.kind,
            e.key,
            if e.design.is_empty() { "-" } else { &e.design },
            short(&e.cfg),
            short(&e.digest),
            e.counters.len(),
            e.timing.jobs,
            e.timing.host_cores,
            e.timing.wall_ms,
            cache,
        ));
    }
    out.push('\n');

    // Latest bench legs, one table per bench key.
    let mut latest_bench: Vec<(usize, &LedgerEntry)> = Vec::new();
    for (idx, e) in ledger.entries.iter().enumerate() {
        if e.kind != "bench" || e.timing.bench.is_empty() {
            continue;
        }
        match latest_bench.iter_mut().find(|(_, prev)| prev.key == e.key) {
            Some(slot) => *slot = (idx, e),
            None => latest_bench.push((idx, e)),
        }
    }
    if !latest_bench.is_empty() {
        out.push_str("## Latest bench legs\n\n");
        out.push_str("| bench | leg | median ms | run |\n");
        out.push_str("|-------|-----|----------:|----:|\n");
        for (idx, e) in &latest_bench {
            for (leg, med) in &e.timing.bench {
                out.push_str(&format!("| {} | {leg} | {med:.3} | {idx} |\n", e.key));
            }
        }
        out.push('\n');
    }

    out.push_str("## Derived figures\n\n");
    out.push_str(&derive_route_speedup(ledger));
    out
}

/// The windowed-vs-reference routing speedup, derived from the latest
/// ledger entry carrying both maze legs — the artifact-backed number the
/// prose claims must match (DESIGN §10).
fn derive_route_speedup(ledger: &Ledger) -> String {
    let leg = |e: &LedgerEntry, suffix: &str| {
        e.timing
            .bench
            .iter()
            .find(|(name, _)| name.ends_with(suffix))
            .map(|&(_, ms)| ms)
    };
    let latest = ledger.entries.iter().enumerate().rev().find_map(|(i, e)| {
        match (leg(e, "maze_reference"), leg(e, "maze_windowed")) {
            (Some(reference), Some(windowed)) if windowed > 0.0 => {
                Some((i, e, reference, windowed))
            }
            _ => None,
        }
    });
    match latest {
        Some((idx, e, reference, windowed)) => format!(
            "- windowed-vs-reference routing speedup: **{:.2}×** \
             (run {idx}, legs {:.3} ms / {:.3} ms on {} host cores; \
             wall-clock, host-dependent — see DESIGN §10).\n",
            reference / windowed,
            reference,
            windowed,
            e.timing.host_cores
        ),
        None => "- windowed-vs-reference routing speedup: not yet recorded in this \
                 ledger (run `cargo bench --bench route_kernel`).\n"
            .to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerTiming;

    fn entry(key: &str, cfg: &str, ripups: i64, wall_ms: f64) -> LedgerEntry {
        let mut e = LedgerEntry {
            kind: "repro".into(),
            key: key.into(),
            design: "CounterSmall".into(),
            cfg: cfg.into(),
            digest: format!("digest-of-{ripups}"),
            ..LedgerEntry::default()
        };
        e.counters.insert("route.ripups".into(), ripups);
        e.timing = LedgerTiming {
            jobs: 1,
            route_jobs: 1,
            host_cores: 1,
            wall_ms,
            stages: Vec::new(),
            bench: Vec::new(),
        };
        e
    }

    fn ledger_of(entries: Vec<LedgerEntry>) -> Ledger {
        Ledger {
            entries,
            torn: 0,
            corrupt: 0,
        }
    }

    #[test]
    fn identical_runs_compare_clean() {
        let ledger = ledger_of(vec![
            entry("all", "cfgA", 7, 100.0),
            entry("all", "cfgA", 7, 110.0),
        ]);
        let outcome = compare_ledger(&ledger, 1, &NoisePolicy::default());
        assert_eq!(outcome.checked, 1);
        assert!(outcome.hard.is_empty(), "{:?}", outcome.hard);
        assert!(outcome.soft.is_empty(), "{:?}", outcome.soft);
        assert_eq!(exit_code(&outcome, false), 0);
    }

    #[test]
    fn counter_drift_is_hard_failure() {
        let ledger = ledger_of(vec![
            entry("all", "cfgA", 7, 100.0),
            entry("all", "cfgA", 8, 100.0),
        ]);
        let outcome = compare_ledger(&ledger, 1, &NoisePolicy::default());
        assert!(outcome.hard.iter().any(|m| m.contains("route.ripups")));
        // Hard failures stay fatal even in timings-report-only mode.
        assert_eq!(exit_code(&outcome, true), 1);
    }

    #[test]
    fn config_drift_falls_back_with_note_and_still_checks_counters() {
        // A fault-perturbed run changes both cfg and counters; the
        // sentinel must flag it, not skip it for lack of a cfg match.
        let ledger = ledger_of(vec![
            entry("all", "cfgA", 7, 100.0),
            entry("all", "cfgB", 9, 100.0),
        ]);
        let outcome = compare_ledger(&ledger, 1, &NoisePolicy::default());
        assert!(outcome.notes.iter().any(|n| n.contains("config drift")));
        assert!(outcome.hard.iter().any(|m| m.contains("route.ripups")));
        assert_eq!(exit_code(&outcome, false), 1);
    }

    #[test]
    fn timing_band_is_soft_and_report_only_mode_passes_it() {
        let ledger = ledger_of(vec![
            entry("all", "cfgA", 7, 100.0),
            entry("all", "cfgA", 7, 200.0),
        ]);
        let outcome = compare_ledger(&ledger, 1, &NoisePolicy::default());
        assert!(outcome.hard.is_empty());
        assert!(outcome.soft.iter().any(|m| m.contains("wall clock")));
        assert_eq!(exit_code(&outcome, false), 1);
        assert_eq!(exit_code(&outcome, true), 0);
    }

    #[test]
    fn n_back_selects_older_same_cfg_baseline() {
        let ledger = ledger_of(vec![
            entry("all", "cfgA", 5, 100.0),
            entry("all", "cfgA", 7, 100.0),
            entry("all", "cfgA", 7, 100.0),
        ]);
        // 2-back reaches the ripups=5 entry: hard drift.
        let outcome = compare_ledger(&ledger, 2, &NoisePolicy::default());
        assert!(outcome.hard.iter().any(|m| m.contains("5 -> 7")));
        // 1-back compares the identical neighbors: clean.
        let outcome = compare_ledger(&ledger, 1, &NoisePolicy::default());
        assert!(outcome.hard.is_empty());
    }

    #[test]
    fn empty_and_single_entry_ledgers_exit_2() {
        let outcome = compare_ledger(&ledger_of(vec![]), 1, &NoisePolicy::default());
        assert_eq!(exit_code(&outcome, false), 2);
        let outcome = compare_ledger(
            &ledger_of(vec![entry("all", "cfgA", 7, 100.0)]),
            1,
            &NoisePolicy::default(),
        );
        assert_eq!(outcome.checked, 0);
        assert!(outcome.notes.iter().any(|n| n.contains("no baseline")));
        assert_eq!(exit_code(&outcome, false), 2);
    }

    #[test]
    fn report_is_deterministic_and_derives_speedup() {
        let mut bench = LedgerEntry {
            kind: "bench".into(),
            key: "route_kernel".into(),
            cfg: "b".into(),
            digest: "d".into(),
            ..LedgerEntry::default()
        };
        bench.timing.host_cores = 4;
        bench.timing.bench = vec![
            ("route_kernel/maze_reference".into(), 15.0),
            ("route_kernel/maze_windowed".into(), 2.0),
        ];
        let mut warm = entry("all", "cfgA", 7, 80.0);
        warm.timing.stages = vec![
            ("cache_hit_rate_synth".into(), 1.0),
            ("cache_hit_rate".into(), 0.75),
        ];
        let ledger = ledger_of(vec![entry("all", "cfgA", 7, 100.0), warm, bench]);
        let report = render_report(&ledger);
        assert_eq!(report, render_report(&ledger), "report must be pure");
        assert!(report.contains("**7.50×**"), "{report}");
        assert!(report.contains("| 0 | repro | all |"));
        assert!(report.contains("route_kernel/maze_windowed"));
        // The cache column renders the aggregate hit-rate pair when the
        // driver recorded one and `-` otherwise.
        assert!(report.contains("| 100.0 | - |"), "{report}");
        assert!(report.contains("| 80.0 | 75% |"), "{report}");

        let empty = render_report(&ledger_of(vec![]));
        assert!(empty.contains("not yet recorded"));
    }
}
