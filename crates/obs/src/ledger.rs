//! Cross-run performance ledger: an append-only, schema-versioned record of
//! every `repro`/bench invocation.
//!
//! `results/metrics.json` and `results/BENCH_*.json` are overwritten in
//! place on every run, so on their own they carry no performance
//! *trajectory*. The ledger fixes that: each invocation appends exactly one
//! checksummed record to `results/ledger/ledger.jsonl`, and nothing ever
//! rewrites or truncates it, so the file is the repo's durable
//! machine-readable performance history (the substrate `ffet perf
//! compare`/`report` and a future `ffet serve` stream from).
//!
//! ## Record format
//!
//! One record per line, in the same envelope as the checkpoint journal
//! (DESIGN §12.2):
//!
//! ```text
//! v1 <crc16hex> {"v":1,"kind":…,"key":…,"design":…,"cfg":…,"digest":…,
//!                "counters":{…},"gauges":{…},"timing":{…}}\n
//! ```
//!
//! The checksum is [`fnv1a64`] over the JSON body. Unlike the journal —
//! whose records form a replay *order*, so a corrupt line invalidates its
//! whole suffix — ledger entries are independent observations: a torn or
//! corrupt line is skipped (and counted) and every later valid line is
//! kept. Loading never rewrites the file.
//!
//! ## Determinism contract (DESIGN §13)
//!
//! Everything outside the `timing` key is deterministic for a given config
//! signature: two runs of the same sweep at any `FFET_JOBS` ×
//! `FFET_ROUTE_JOBS` produce entries whose [`LedgerEntry::deterministic_body`]
//! renderings are byte-identical. Pool widths, host parallelism, wall/stage
//! times and bench-leg medians all live under `timing`.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::json::{parse_json, Json};
use crate::metrics::MetricsSnapshot;

/// Ledger schema version; bumped on any incompatible record change.
pub const LEDGER_VERSION: i64 = 1;

/// Version tag prefixing every record line (shared with the ckpt journal).
pub const LEDGER_LINE_TAG: &str = "v1";

/// Default ledger file, relative to the run's working directory.
pub const LEDGER_PATH: &str = "results/ledger/ledger.jsonl";

/// FNV-1a 64-bit hash — the workspace's content-addressing and record
/// checksum primitive. Stable across platforms and releases by
/// construction (pure integer arithmetic over bytes). `ffet_core::ckpt`
/// re-exports this as its journal/store hash.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 16-digit zero-padded lowercase hex rendering of a hash.
#[must_use]
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// The wall-clock (non-deterministic) section of a ledger entry. Everything
/// in here varies run to run and is excluded from the byte-identity
/// contract and from `ffet perf compare`'s strict checks; timings are
/// compared against a percentage noise band instead.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerTiming {
    /// DoE pool width the run used.
    pub jobs: i64,
    /// Intra-point routing pool width.
    pub route_jobs: i64,
    /// Host parallelism (`available_parallelism`) — the denominator any
    /// speedup claim is only meaningful against.
    pub host_cores: i64,
    /// Total wall clock of the invocation, ms.
    pub wall_ms: f64,
    /// Aggregate per-stage wall times (name → ms), in insertion order.
    pub stages: Vec<(String, f64)>,
    /// Bench-leg medians (leg name → ms), in bench order. Empty for
    /// `repro` entries.
    pub bench: Vec<(String, f64)>,
}

/// One ledger record: the invocation's identity, its deterministic metric
/// snapshot, and its wall-clock telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerEntry {
    /// Invocation family: `repro` or `bench`.
    pub kind: String,
    /// Invocation key within the family (`all`, `fig9`, `route_kernel`, …).
    pub key: String,
    /// Design the flow ran (`Rv32`, `CounterSmall`); empty for pure-kernel
    /// bench entries.
    pub design: String,
    /// Config-signature hash (`ffet_core::ckpt::config_signature`): records
    /// match for comparison only when their signatures match (DESIGN §13).
    pub cfg: String,
    /// `fnv1a64` digest of the timing-stripped metric snapshot the run
    /// produced (for `repro`: `strip_timing(metrics.json)`), so drift in
    /// any per-point value — not just the merged counters below — is
    /// detectable.
    pub digest: String,
    /// Merged counters of the run (deterministic; compared exactly).
    pub counters: BTreeMap<String, i64>,
    /// Merged gauges of the run (deterministic; compared exactly).
    pub gauges: BTreeMap<String, f64>,
    /// Wall-clock telemetry (outside the determinism contract).
    pub timing: LedgerTiming,
}

impl LedgerEntry {
    /// Builds the deterministic half of an entry from a merged metrics
    /// snapshot (histograms participate through `digest`, not inline).
    #[must_use]
    pub fn from_metrics(
        kind: &str,
        key: &str,
        design: &str,
        cfg: &str,
        digest: &str,
        metrics: &MetricsSnapshot,
    ) -> LedgerEntry {
        LedgerEntry {
            kind: kind.to_owned(),
            key: key.to_owned(),
            design: design.to_owned(),
            cfg: cfg.to_owned(),
            digest: digest.to_owned(),
            counters: metrics.counters.clone(),
            gauges: metrics.gauges.clone(),
            timing: LedgerTiming::default(),
        }
    }

    fn timing_json(&self) -> Json {
        let pairs = |v: &[(String, f64)]| {
            Json::Obj(v.iter().map(|(k, x)| (k.clone(), Json::Num(*x))).collect())
        };
        Json::Obj(vec![
            ("jobs".into(), Json::Int(self.timing.jobs)),
            ("route_jobs".into(), Json::Int(self.timing.route_jobs)),
            ("host_cores".into(), Json::Int(self.timing.host_cores)),
            ("wall_ms".into(), Json::Num(self.timing.wall_ms)),
            ("stages".into(), pairs(&self.timing.stages)),
            ("bench".into(), pairs(&self.timing.bench)),
        ])
    }

    fn fields(&self, with_timing: bool) -> Json {
        let mut fields = vec![
            ("v".to_owned(), Json::Int(LEDGER_VERSION)),
            ("kind".to_owned(), Json::Str(self.kind.clone())),
            ("key".to_owned(), Json::Str(self.key.clone())),
            ("design".to_owned(), Json::Str(self.design.clone())),
            ("cfg".to_owned(), Json::Str(self.cfg.clone())),
            ("digest".to_owned(), Json::Str(self.digest.clone())),
            (
                "counters".to_owned(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ];
        if with_timing {
            fields.push(("timing".to_owned(), self.timing_json()));
        }
        Json::Obj(fields)
    }

    /// The full single-line JSON body of the record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        self.fields(true)
    }

    /// The record body with the `timing` key removed — the part under the
    /// byte-identity contract (identical at any pool width; DESIGN §13).
    #[must_use]
    pub fn deterministic_body(&self) -> String {
        self.fields(false).render()
    }

    /// Parses a record body; any schema mismatch is an error (the caller
    /// counts it as corrupt and skips the line).
    pub fn from_json(json: &Json) -> Result<LedgerEntry, String> {
        if json.get("v").and_then(Json::as_i64) != Some(LEDGER_VERSION) {
            return Err(format!(
                "ledger entry is not schema v{LEDGER_VERSION}: {}",
                json.render()
            ));
        }
        let text = |name: &str| -> Result<String, String> {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("ledger entry missing string {name:?}"))
        };
        let mut entry = LedgerEntry {
            kind: text("kind")?,
            key: text("key")?,
            design: text("design")?,
            cfg: text("cfg")?,
            digest: text("digest")?,
            ..LedgerEntry::default()
        };
        match json.get("counters") {
            Some(Json::Obj(fields)) => {
                for (k, v) in fields {
                    let value = v
                        .as_i64()
                        .ok_or_else(|| format!("counter {k:?} is not an integer"))?;
                    entry.counters.insert(k.clone(), value);
                }
            }
            _ => return Err("ledger entry missing object \"counters\"".into()),
        }
        match json.get("gauges") {
            Some(Json::Obj(fields)) => {
                for (k, v) in fields {
                    let value = v
                        .as_f64()
                        .ok_or_else(|| format!("gauge {k:?} is not a number"))?;
                    entry.gauges.insert(k.clone(), value);
                }
            }
            _ => return Err("ledger entry missing object \"gauges\"".into()),
        }
        let timing = json
            .get("timing")
            .ok_or_else(|| "ledger entry missing object \"timing\"".to_owned())?;
        let int = |name: &str| -> Result<i64, String> {
            timing
                .get(name)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("timing missing integer {name:?}"))
        };
        entry.timing.jobs = int("jobs")?;
        entry.timing.route_jobs = int("route_jobs")?;
        entry.timing.host_cores = int("host_cores")?;
        entry.timing.wall_ms = timing
            .get("wall_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| "timing missing number \"wall_ms\"".to_owned())?;
        let pairs = |name: &str| -> Result<Vec<(String, f64)>, String> {
            match timing.get(name) {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|x| (k.clone(), x))
                            .ok_or_else(|| format!("timing {name}.{k} is not a number"))
                    })
                    .collect(),
                _ => Err(format!("timing missing object {name:?}")),
            }
        };
        entry.timing.stages = pairs("stages")?;
        entry.timing.bench = pairs("bench")?;
        Ok(entry)
    }

    /// Renders the full record line, checksum envelope and trailing
    /// newline included.
    #[must_use]
    pub fn render_line(&self) -> String {
        let body = self.to_json().render();
        let crc = hash_hex(fnv1a64(body.as_bytes()));
        format!("{LEDGER_LINE_TAG} {crc} {body}\n")
    }

    /// Parses one newline-stripped record line, validating the version tag
    /// and checksum.
    pub fn parse_line(line: &str) -> Result<LedgerEntry, String> {
        let rest = line
            .strip_prefix(LEDGER_LINE_TAG)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| format!("not a {LEDGER_LINE_TAG} record: {line:?}"))?;
        let (crc, body) = rest
            .split_once(' ')
            .ok_or_else(|| "record has no checksum separator".to_owned())?;
        if hash_hex(fnv1a64(body.as_bytes())) != crc {
            return Err("record checksum mismatch".into());
        }
        LedgerEntry::from_json(&parse_json(body)?)
    }
}

/// The loaded ledger: every valid entry in file order, plus counts of what
/// loading skipped.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Valid entries, in append order (oldest first).
    pub entries: Vec<LedgerEntry>,
    /// Trailing chunk with no newline (a torn append), skipped.
    pub torn: usize,
    /// Complete lines that failed version/checksum/schema validation,
    /// skipped.
    pub corrupt: usize,
}

impl Ledger {
    /// Loads the ledger at `path`. A missing file loads as empty. Invalid
    /// lines are *skipped*, never repaired in place: ledger entries are
    /// independent observations (unlike journal records, which form a
    /// replay order), so one bad line must not discard the history after
    /// it — and an observability artifact should never rewrite itself.
    pub fn load(path: &Path) -> std::io::Result<Ledger> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut ledger = Ledger::default();
        let mut rest = text.as_str();
        while !rest.is_empty() {
            let Some(nl) = rest.find('\n') else {
                ledger.torn += 1;
                crate::counter_add("ledger.torn", 1);
                break;
            };
            match LedgerEntry::parse_line(&rest[..nl]) {
                Ok(entry) => ledger.entries.push(entry),
                Err(_) => {
                    ledger.corrupt += 1;
                    crate::counter_add("ledger.corrupt", 1);
                }
            }
            rest = &rest[nl + 1..];
        }
        Ok(ledger)
    }

    /// Appends one record to the ledger at `path`, creating parents as
    /// needed. The append is a single `write_all` of one line — the same
    /// posture as the checkpoint journal: a mid-append kill leaves at
    /// worst a torn final line, which [`Ledger::load`] skips.
    pub fn append(path: &Path, entry: &LedgerEntry) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let line = entry.render_line();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(line.as_bytes())?;
        crate::counter_add("ledger.appends", 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffet-ledger-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn sample_entry() -> LedgerEntry {
        let mut entry = LedgerEntry {
            kind: "repro".into(),
            key: "all".into(),
            design: "CounterSmall".into(),
            cfg: "00ff00ff00ff00ff".into(),
            digest: "0123456789abcdef".into(),
            ..LedgerEntry::default()
        };
        entry.counters.insert("route.ripups".into(), 42);
        entry.counters.insert("flow.runs".into(), 7);
        entry.gauges.insert("place.hpwl_nm".into(), 1234.5);
        entry.timing = LedgerTiming {
            jobs: 4,
            route_jobs: 2,
            host_cores: 8,
            wall_ms: 98.25,
            stages: vec![("synth_ms".into(), 1.5), ("pnr_ms".into(), 80.0)],
            bench: vec![("maze_windowed".into(), 1.47)],
        };
        entry
    }

    #[test]
    fn fnv_matches_ckpt_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_hex(fnv1a64(b"a")), "af63dc4c8601ec8c");
    }

    #[test]
    fn entry_round_trips_byte_exactly_and_order_preserving() {
        let entry = sample_entry();
        let line = entry.render_line();
        let parsed = LedgerEntry::parse_line(line.trim_end()).expect("parse");
        assert_eq!(parsed, entry);
        // Re-rendering the parsed entry reproduces the exact bytes: field
        // order is schema-fixed, map keys are BTreeMap-sorted, and the
        // ordered stage/bench vectors survive the round trip in order.
        assert_eq!(parsed.render_line(), line);
        assert_eq!(parsed.timing.stages, entry.timing.stages);
    }

    #[test]
    fn deterministic_body_excludes_only_timing() {
        let entry = sample_entry();
        let mut other = entry.clone();
        other.timing = LedgerTiming {
            jobs: 1,
            route_jobs: 1,
            host_cores: 1,
            wall_ms: 1e6,
            stages: Vec::new(),
            bench: Vec::new(),
        };
        assert_eq!(entry.deterministic_body(), other.deterministic_body());
        assert!(!entry.deterministic_body().contains("timing"));
        assert!(entry.deterministic_body().contains("route.ripups"));
        // But a deterministic field difference shows.
        other.counters.insert("route.ripups".into(), 43);
        assert_ne!(entry.deterministic_body(), other.deterministic_body());
    }

    #[test]
    fn append_load_round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("ledger.jsonl");
        let a = sample_entry();
        let mut b = sample_entry();
        b.key = "fig9".into();
        Ledger::append(&path, &a).expect("append a");
        Ledger::append(&path, &b).expect("append b");
        let ledger = Ledger::load(&path).expect("load");
        assert_eq!(ledger.entries, vec![a, b]);
        assert_eq!(ledger.torn, 0);
        assert_eq!(ledger.corrupt, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_skips_corrupt_lines_without_discarding_suffix() {
        let dir = scratch("corrupt");
        let path = dir.join("ledger.jsonl");
        let a = sample_entry();
        let mut b = sample_entry();
        b.key = "fig11".into();
        Ledger::append(&path, &a).expect("append a");
        // A complete line with a bad checksum, then a valid entry, then a
        // torn (newline-less) tail.
        let mut text = fs::read_to_string(&path).expect("read");
        text.push_str("v1 0000000000000000 {\"v\":1}\n");
        text.push_str(&b.render_line());
        text.push_str("v1 deadbeef");
        fs::write(&path, &text).expect("tamper");
        let ledger = Ledger::load(&path).expect("load");
        assert_eq!(ledger.entries, vec![a, b]);
        assert_eq!(ledger.corrupt, 1);
        assert_eq!(ledger.torn, 1);
        // Loading never rewrites the file.
        assert_eq!(fs::read_to_string(&path).expect("reread"), text);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_ledger_loads_empty() {
        let dir = scratch("missing");
        let ledger = Ledger::load(&dir.join("nope.jsonl")).expect("load");
        assert!(ledger.entries.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_mismatches_are_corrupt() {
        assert!(LedgerEntry::parse_line("v2 0 {}").is_err());
        let body = r#"{"v":2,"kind":"x","key":"y","design":"","cfg":"","digest":"","counters":{},"gauges":{},"timing":{"jobs":1,"route_jobs":1,"host_cores":1,"wall_ms":0.0,"stages":{},"bench":{}}}"#;
        let line = format!("v1 {} {body}", hash_hex(fnv1a64(body.as_bytes())));
        assert!(LedgerEntry::parse_line(&line).is_err());
    }
}
