//! `ffet-analyze` — zero-dependency determinism & robustness source
//! analyzer gating the workspace's byte-identity contract.
//!
//! The repo's core guarantee is that every sweep CSV and timing-stripped
//! `metrics.json` is byte-identical at any `--jobs` width. Golden-file
//! tests catch violations *after* they ship; this crate makes the
//! underlying discipline a checked property of the source itself:
//!
//! - **D001** no default-hasher `HashMap`/`HashSet` in pipeline crates;
//! - **D002** no unsorted hash-map iteration in artifact-producing crates;
//! - **D003** no wall-clock reads outside the timing modules;
//! - **D004** no thread spawning outside the `ffet-pool` work-stealing pool;
//! - **R001** no `unwrap()`/`expect()`/`panic!` outside tests (existing
//!   debt frozen in a checked-in baseline, see [`baseline`]);
//! - **M001** metric/span names in code ⇆ the DESIGN §9 catalog.
//!
//! Violations are waived inline with
//! `// ffet-analyze: allow(CODE) -- justification` (justification
//! mandatory, see [`waivers`]). The `ffet-analyze` binary walks
//! `crates/*/src`, prints a deterministic `path:line: CODE message`
//! report, and exits non-zero on any non-waived finding — the CI gate.

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod waivers;

use baseline::Baseline;
use report::{Analysis, Finding};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Relative path of the metric/span catalog document.
pub const DESIGN_MD: &str = "DESIGN.md";

/// Default relative path of the R001 baseline file.
pub const BASELINE_PATH: &str = "crates/analyze/r001.baseline";

/// The analyzer's own crate directory — excluded from the walk (it is the
/// measuring instrument, not the measured pipeline, and its fixtures and
/// rule tables would self-trip every rule).
const SELF_CRATE: &str = "analyze";

/// One workspace analysis: the gate result plus the per-file R001 counts
/// that `--bless-baseline` freezes.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Findings, stats, and renderers.
    pub analysis: Analysis,
    /// Post-waiver R001 occurrences per file (input to the baseline).
    pub r001_counts: BTreeMap<String, u32>,
}

/// Scans one source file (already read) through the full per-file pipeline:
/// lex → waiver collection → test stripping → rules → waiver application.
/// Returns (findings, metric uses, findings waived).
#[must_use]
pub fn scan_source(relpath: &str, source: &str) -> (Vec<Finding>, Vec<rules::MetricUse>, usize) {
    let lexed = lexer::lex(source);
    let (mut file_waivers, mut findings) = waivers::collect(relpath, &lexed.comments, &lexed.toks);
    let toks = lexer::strip_test_regions(lexed.toks);
    let (rule_findings, uses) = rules::scan_tokens(relpath, &toks);
    findings.extend(rule_findings);
    let waived = waivers::apply(relpath, &mut file_waivers, &mut findings);
    (findings, uses, waived)
}

/// Analyzes the workspace rooted at `root` against `baseline`.
///
/// # Errors
///
/// Returns a message when the tree cannot be read (missing `crates/` or
/// `DESIGN.md`, unreadable file) — I/O problems are operator errors, not
/// findings.
pub fn analyze_workspace(root: &Path, baseline: &Baseline) -> Result<Workspace, String> {
    let mut ws = Workspace::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut uses: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();

    for file in workspace_sources(root)? {
        let text =
            std::fs::read_to_string(root.join(&file)).map_err(|e| format!("read {file}: {e}"))?;
        let (file_findings, file_uses, waived) = scan_source(&file, &text);
        ws.analysis.files_scanned += 1;
        ws.analysis.waived += waived;
        for u in file_uses {
            uses.entry(u.name).or_default().push((file.clone(), u.line));
        }
        findings.extend(file_findings);
    }

    // M001: reconcile recorded names against the DESIGN §9 catalog.
    let design = std::fs::read_to_string(root.join(DESIGN_MD))
        .map_err(|e| format!("read {DESIGN_MD}: {e}"))?;
    rules::m001(
        DESIGN_MD,
        &rules::Catalog::parse(&design),
        &uses,
        &mut findings,
    );

    // R001: apply the frozen-debt baseline.
    for f in findings.iter().filter(|f| f.code == "R001") {
        *ws.r001_counts.entry(f.file.clone()).or_default() += 1;
    }
    for f in &mut findings {
        if f.code == "R001" {
            let have = ws.r001_counts.get(&f.file).copied().unwrap_or(0);
            let frozen = baseline.allowance(&f.file);
            if have > frozen {
                f.message.push_str(&format!(
                    " (file has {have} non-waived, baseline allows {frozen})"
                ));
            }
        }
    }
    let counts = &ws.r001_counts;
    findings.retain(|f| {
        f.code != "R001" || counts.get(&f.file).copied().unwrap_or(0) > baseline.allowance(&f.file)
    });
    ws.analysis.baselined = baseline.reconcile(BASELINE_PATH, counts, &mut findings);

    ws.analysis.findings = findings;
    ws.analysis.sort();
    Ok(ws)
}

/// Every `.rs` file under `crates/*/src`, workspace-relative with `/`
/// separators, sorted — the deterministic scan order the report inherits.
///
/// # Errors
///
/// Returns a message when `crates/` cannot be enumerated.
pub fn workspace_sources(root: &Path) -> Result<Vec<String>, String> {
    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n != SELF_CRATE)
        .collect();
    crate_names.sort();

    let mut files = Vec::new();
    for name in crate_names {
        let src = crates_dir.join(&name).join("src");
        if src.is_dir() {
            collect_rs(&src, &format!("crates/{name}/src"), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<(String, PathBuf)> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok().map(|n| (n, e.path())))
        .collect();
    entries.sort();
    for (name, path) in entries {
        if path.is_dir() {
            collect_rs(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push(format!("{rel}/{name}"));
        }
    }
    Ok(())
}
