//! The `ffet-analyze` CLI — the CI gate.
//!
//! ```text
//! ffet-analyze [--check] [--root <dir>] [--baseline <path>]
//!              [--json <path|->] [--bless-baseline]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#![allow(
    clippy::print_stdout,
    clippy::print_stderr,
    reason = "the analyzer CLI reports to the terminal by design"
)]

use ffet_analyze::baseline::Baseline;
use ffet_analyze::{analyze_workspace, Workspace, BASELINE_PATH};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: Option<String>,
    bless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        json: None,
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {} // the default (and only) mode; accepted for clarity
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--json" => args.json = Some(it.next().ok_or("--json needs a value")?),
            "--bless-baseline" => args.bless = true,
            "--help" | "-h" => {
                return Err(
                    "usage: ffet-analyze [--check] [--root <dir>] [--baseline <path>] \
                     [--json <path|->] [--bless-baseline]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join(BASELINE_PATH));

    if args.bless {
        // Bless against an empty baseline: every current R001 count is the
        // new frozen debt.
        let ws: Workspace = analyze_workspace(&args.root, &Baseline::default())?;
        let text = Baseline::render(&ws.r001_counts);
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        println!(
            "ffet-analyze: blessed {} file(s) of R001 debt into {}",
            ws.r001_counts.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
        }
        // No baseline yet: run with zero allowance everywhere.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("read {}: {e}", baseline_path.display())),
    };

    let ws = analyze_workspace(&args.root, &baseline)?;
    print!("{}", ws.analysis.render_text());
    if let Some(json) = &args.json {
        let body = ws.analysis.render_json();
        if json == "-" {
            print!("{body}");
        } else {
            std::fs::write(json, body).map_err(|e| format!("write {json}: {e}"))?;
        }
    }
    Ok(ws.analysis.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ffet-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
