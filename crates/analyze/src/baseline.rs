//! The checked-in R001 baseline: existing `unwrap()`/`expect()`/`panic!`
//! debt is frozen per file, so new debt fails CI while old debt is paid
//! down deliberately. The ratchet is two-sided: a file whose debt *shrinks*
//! (or disappears) makes its baseline entry stale, which is also a gate
//! failure (`B001`) — the baseline can never drift above reality.

use crate::report::{Finding, CODE_STALE_BASELINE};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed baseline: per-file frozen R001 counts, plus each entry's line in
/// the baseline file (for precise `B001` findings).
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<String, (u32, u32)>, // path -> (count, baseline-file line)
}

impl Baseline {
    /// Parses the baseline text. Lines are `R001 <count> <path>`; blank
    /// lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (code, count, path) = (parts.next(), parts.next(), parts.next());
            match (code, count.and_then(|c| c.parse::<u32>().ok()), path) {
                (Some("R001"), Some(n), Some(p)) if parts.next().is_none() && n > 0 => {
                    if entries.insert(p.to_owned(), (n, i as u32 + 1)).is_some() {
                        return Err(format!("line {}: duplicate entry for {p}", i + 1));
                    }
                }
                _ => {
                    return Err(format!(
                        "line {}: expected `R001 <count> <path>`, got `{line}`",
                        i + 1
                    ))
                }
            }
        }
        Ok(Baseline { entries })
    }

    /// Renders the canonical baseline text for the given per-file counts
    /// (zero-count files are omitted).
    #[must_use]
    pub fn render(counts: &BTreeMap<String, u32>) -> String {
        let mut out = String::from(
            "# ffet-analyze R001 baseline: frozen unwrap()/expect()/panic! debt per file.\n\
             # New debt fails the gate; paying debt down makes the entry stale (B001),\n\
             # so re-bless with: cargo run -p ffet-analyze -- --bless-baseline\n",
        );
        for (path, n) in counts {
            if *n > 0 {
                let _ = writeln!(out, "R001 {n} {path}");
            }
        }
        out
    }

    /// Frozen count for `path` (0 when absent).
    #[must_use]
    pub fn allowance(&self, path: &str) -> u32 {
        self.entries.get(path).map_or(0, |&(n, _)| n)
    }

    /// Reconciles actual per-file R001 counts against the baseline.
    ///
    /// - `actual > frozen`: the file's R001 findings stay in the report
    ///   (handled by the caller via [`Baseline::allowance`]).
    /// - `actual < frozen` or file missing: emits a `B001` stale-entry
    ///   finding pointing at the baseline file line.
    ///
    /// Returns the number of findings suppressed as baselined.
    pub fn reconcile(
        &self,
        baseline_path: &str,
        actual: &BTreeMap<String, u32>,
        findings: &mut Vec<Finding>,
    ) -> usize {
        let mut baselined = 0usize;
        for (path, &(frozen, bline)) in &self.entries {
            let have = actual.get(path).copied().unwrap_or(0);
            if have < frozen {
                findings.push(Finding::new(
                    baseline_path,
                    bline,
                    CODE_STALE_BASELINE,
                    format!(
                        "stale baseline: {path} records {frozen} R001 finding(s) but source has \
                         {have} — re-bless with --bless-baseline to ratchet down"
                    ),
                ));
                baselined += have as usize;
            } else if have == frozen {
                baselined += frozen as usize;
            }
            // have > frozen: nothing baselined — the caller keeps every
            // R001 finding for the file in the report.
        }
        baselined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/lib.rs".to_owned(), 3u32);
        counts.insert("crates/b/src/x.rs".to_owned(), 0u32);
        let text = Baseline::render(&counts);
        let b = Baseline::parse(&text).expect("canonical text parses");
        assert_eq!(b.allowance("crates/a/src/lib.rs"), 3);
        assert_eq!(b.allowance("crates/b/src/x.rs"), 0, "zero entries omitted");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("R001 x crates/a.rs").is_err());
        assert!(Baseline::parse("D001 2 crates/a.rs").is_err());
        assert!(Baseline::parse("R001 2").is_err());
        assert!(Baseline::parse("R001 0 crates/a.rs").is_err(), "zero count");
        assert!(Baseline::parse("R001 1 a.rs\nR001 2 a.rs").is_err(), "dup");
        assert!(Baseline::parse("# comment\n\nR001 2 crates/a.rs\n").is_ok());
    }

    #[test]
    fn stale_entries_reported_with_baseline_line() {
        let b = Baseline::parse("R001 5 crates/a.rs\nR001 2 crates/gone.rs").expect("parses");
        let mut actual = BTreeMap::new();
        actual.insert("crates/a.rs".to_owned(), 3u32); // paid down 2
        let mut findings = Vec::new();
        let baselined = b.reconcile("r001.baseline", &actual, &mut findings);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.code == CODE_STALE_BASELINE));
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
        assert_eq!(baselined, 3, "the 3 remaining findings stay suppressed");
    }

    #[test]
    fn within_budget_counts_as_baselined() {
        let b = Baseline::parse("R001 4 crates/a.rs").expect("parses");
        let mut actual = BTreeMap::new();
        actual.insert("crates/a.rs".to_owned(), 4u32);
        let mut findings = Vec::new();
        assert_eq!(b.reconcile("r001.baseline", &actual, &mut findings), 4);
        assert!(findings.is_empty());
    }
}
