//! A hand-rolled Rust lexer, in the spirit of the workspace's other
//! zero-dependency infrastructure (`Rng64`, `ffet-obs`): just enough of the
//! language to walk token streams reliably — idents, punctuation, string /
//! char / numeric literals, nested block comments, raw strings, lifetimes —
//! without a syntax tree. Rules pattern-match the token stream; comments are
//! captured separately so waiver tags can be resolved against code lines.

/// One lexed token. Comments are not tokens — see [`Lexed::comments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// Token payload. Literal *contents* are kept only for strings (rule M001
/// matches metric names); other literals collapse to markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` is two `:` tokens).
    Punct(char),
    /// String literal (plain, raw, or byte) with its uninterpreted body.
    Str(String),
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

impl Tok {
    /// True if this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(i) if i == name)
    }

    /// True if this token is the punctuation `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The identifier text, if this token is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(i) => Some(i),
            _ => None,
        }
    }
}

/// One `//` comment, kept for waiver-tag resolution.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the `//` (including any further `/` or `!`).
    pub text: String,
}

/// Lexer output: the code token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order (block comments are discarded — the
    /// waiver syntax is line-comment only, so it cannot hide in `/* */`).
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unrecognized bytes are skipped, an unterminated
/// literal runs to end of input. The analyzer scans code that `rustc` has
/// already accepted, so graceful degradation beats diagnostics here.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Counts newlines in b[from..to] into `line`.
    let count_lines = |from: usize, to: usize, line: &mut u32| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let end = b[start..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map_or(b.len(), |p| start + p);
                out.comments.push(Comment {
                    line,
                    text: src[start..end].to_owned(),
                });
                i = end; // the `\n` is handled by the match arm above
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                count_lines(start, i, &mut line);
            }
            b'"' => {
                let (end, body) = lex_string(src, i + 1, /* raw= */ false);
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Str(body),
                });
                count_lines(i, end, &mut line);
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'` + ident with
                // no closing quote; a char literal always closes.
                let is_char = match b.get(i + 1) {
                    Some(b'\\') => true,
                    Some(&n) if n == b'_' || n.is_ascii_alphanumeric() => {
                        // `'a'` is a char, `'a` (next non-ident char != `'`)
                        // is a lifetime.
                        let mut j = i + 1;
                        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                            j += 1;
                        }
                        b.get(j) == Some(&b'\'')
                    }
                    Some(_) => true, // `'('`, `' '`, …
                    None => false,
                };
                if is_char {
                    i = lex_char_body(b, i + 1);
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Char,
                    });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Lifetime,
                    });
                    i = j;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw / byte string prefixes: r" r#" b" br" rb" b'.
                let next = b.get(i).copied();
                let is_str_prefix = matches!(ident, "r" | "b" | "br" | "rb");
                if is_str_prefix && (next == Some(b'"') || next == Some(b'#')) {
                    let raw = ident.contains('r');
                    let lstart = i;
                    let mut hashes = 0usize;
                    if raw {
                        while b.get(i) == Some(&b'#') {
                            hashes += 1;
                            i += 1;
                        }
                    }
                    if b.get(i) == Some(&b'"') {
                        let (end, body) = if raw {
                            lex_raw_string(src, i + 1, hashes)
                        } else {
                            lex_string(src, i + 1, false)
                        };
                        out.toks.push(Tok {
                            line,
                            kind: TokKind::Str(body),
                        });
                        count_lines(lstart, end, &mut line);
                        i = end;
                    } else {
                        // `r#raw_ident` — keep the ident, drop the `#`s.
                        out.toks.push(Tok {
                            line,
                            kind: TokKind::Ident(ident.to_owned()),
                        });
                    }
                } else if ident == "b" && next == Some(b'\'') {
                    i = lex_char_body(b, i + 1);
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Char,
                    });
                } else {
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Ident(ident.to_owned()),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    // Exponent sign: `1e-6`, `2E+3`.
                    if (b[i] == b'e' || b[i] == b'E')
                        && matches!(b.get(i + 1), Some(b'+' | b'-'))
                        && matches!(b.get(i + 2), Some(d) if d.is_ascii_digit())
                    {
                        i += 2;
                    }
                    i += 1;
                }
                // Fractional part — but not the `..` of a range.
                if b.get(i) == Some(&b'.') && matches!(b.get(i + 1), Some(d) if d.is_ascii_digit())
                {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        if (b[i] == b'e' || b[i] == b'E')
                            && matches!(b.get(i + 1), Some(b'+' | b'-'))
                            && matches!(b.get(i + 2), Some(d) if d.is_ascii_digit())
                        {
                            i += 2;
                        }
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Num,
                });
            }
            c if c.is_ascii() => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c as char),
                });
                i += 1;
            }
            // Non-ASCII outside strings/comments: not produced by this
            // workspace's code; skip rather than guess.
            _ => i += 1,
        }
    }
    out
}

/// Consumes a (non-raw) string body starting after the opening `"`.
/// Returns (index past the closing quote, body text).
fn lex_string(src: &str, start: usize, _raw: bool) -> (usize, String) {
    let b = src.as_bytes();
    let mut i = start;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, src[start..i].to_owned()),
            _ => i += 1,
        }
    }
    (b.len(), src[start.min(b.len())..].to_owned())
}

/// Consumes a raw string body (`r##"…"##`) starting after the opening `"`.
fn lex_raw_string(src: &str, start: usize, hashes: usize) -> (usize, String) {
    let b = src.as_bytes();
    let mut i = start;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return (i + 1 + hashes, src[start..i].to_owned());
        }
        i += 1;
    }
    (b.len(), src[start.min(b.len())..].to_owned())
}

/// Consumes a char/byte-char body starting after the opening `'`.
/// Returns the index past the closing quote.
fn lex_char_body(b: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Strips test-only regions from a token stream: any item annotated
/// `#[cfg(test)]` or `#[test]` (the module body, function, or `use` it
/// guards) is removed, so rules only see code compiled into the shipping
/// pipeline. Handles attribute stacks (`#[cfg(test)] #[allow(…)] fn …`).
#[must_use]
pub fn strip_test_regions(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_punct('[')) {
            // Scan the attribute's bracket group.
            let (attr_end, is_test) = scan_attr(&toks, i + 1);
            if is_test {
                // Consume any further attributes on the same item…
                let mut j = attr_end;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && matches!(toks.get(j + 1), Some(t) if t.is_punct('['))
                {
                    let (e, _) = scan_attr(&toks, j + 1);
                    j = e;
                }
                // …then the item itself: up to a top-level `;` or through
                // a top-level balanced `{ … }`.
                let mut depth = 0i32;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('(' | '[') => depth += 1,
                        TokKind::Punct(')' | ']') => depth -= 1,
                        TokKind::Punct(';') if depth == 0 => {
                            j += 1;
                            break;
                        }
                        TokKind::Punct('{') if depth == 0 => {
                            j = skip_braces(&toks, j);
                            break;
                        }
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            // Non-test attribute: keep its tokens.
            out.extend(toks[i..attr_end].iter().cloned());
            i = attr_end;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Scans an attribute bracket group starting at the `[` index. Returns
/// (index past the closing `]`, whether it is exactly `[test]`,
/// `[cfg(test)]`, or a `cfg_attr(test, …)`).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let inner = &toks[open + 1..j.saturating_sub(1).max(open + 1)];
    // `[test]`
    let bare_test = inner.len() == 1 && inner[0].is_ident("test");
    // `[cfg(test)]` — exactly, so `cfg(not(test))` keeps its code visible.
    let cfg_test = inner.len() == 4
        && inner[0].is_ident("cfg")
        && inner[1].is_punct('(')
        && inner[2].is_ident("test")
        && inner[3].is_punct(')');
    (j, bare_test || cfg_test)
}

/// Given the index of a `{` token, returns the index past its matching `}`.
fn skip_braces(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a /* nested */ block */
            let s = "HashMap<String, u32>";
            let r = r#"HashMap"#;
            let real = FxHashMap::default();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_owned()));
        assert!(ids.contains(&"FxHashMap".to_owned()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } const B: u8 = b'F'; const Q: char = '\\'';";
        let lexed = lex(src);
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(chars, 3, "'x', b'F', '\\''");
        assert_eq!(lifetimes, 2, "<'a> and &'a");
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb\n\"str\nacross\"\nc";
        let lexed = lex(src);
        let line_of = |name: &str| lexed.toks.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(4));
        assert_eq!(line_of("c"), Some(7));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "for i in 0..100 { let x = 1.5e-3; }";
        let lexed = lex(src);
        let dots = lexed.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the two dots of `..`");
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Num).count(),
            3,
            "0, 100, 1.5e-3"
        );
    }

    #[test]
    fn strip_removes_cfg_test_modules_and_test_fns() {
        let src = "
            fn keep() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn gone() { b.unwrap(); }
            }
            #[test]
            fn also_gone() { c.unwrap(); }
            #[cfg(test)]
            use std::collections::HashMap;
            fn keep2() {}
        ";
        let toks = strip_test_regions(lex(src).toks);
        let ids: Vec<&str> = toks.iter().filter_map(Tok::ident).collect();
        assert!(ids.contains(&"keep"));
        assert!(ids.contains(&"keep2"));
        assert!(ids.contains(&"a"));
        assert!(!ids.contains(&"gone"));
        assert!(!ids.contains(&"also_gone"));
        assert!(!ids.contains(&"HashMap"));
    }

    #[test]
    fn strip_keeps_cfg_not_test() {
        let src = "#[cfg(not(test))] fn prod() { x.unwrap(); } fn after() {}";
        let toks = strip_test_regions(lex(src).toks);
        let ids: Vec<&str> = toks.iter().filter_map(Tok::ident).collect();
        assert!(ids.contains(&"prod"));
        assert!(ids.contains(&"after"));
    }

    #[test]
    fn strip_handles_attribute_stacks() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn gone() {}\nfn kept() {}";
        let toks = strip_test_regions(lex(src).toks);
        let ids: Vec<&str> = toks.iter().filter_map(Tok::ident).collect();
        assert!(!ids.contains(&"gone"));
        assert!(ids.contains(&"kept"));
    }
}
