//! Inline waiver tags.
//!
//! A finding is waived by a line comment of the form
//!
//! ```text
//! // ffet-analyze: allow(D002) -- union-find result is order-independent
//! // ffet-analyze: allow(D001, D002) -- justification covering both codes
//! ```
//!
//! A trailing waiver covers findings on its own line; a waiver on a line of
//! its own covers the next line that holds any code. The justification after
//! `--` is **mandatory**: a tag without one is itself reported (`W001`) and
//! waives nothing, and a tag that matched no finding is reported as unused
//! (`W002`) so stale waivers cannot accumulate.

use crate::lexer::{Comment, Tok};
use crate::report::{Finding, CODE_MALFORMED_WAIVER, CODE_UNUSED_WAIVER};

/// The comment marker that introduces a waiver tag.
pub const MARKER: &str = "ffet-analyze:";

/// A parsed, line-resolved waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Source line whose findings this waiver covers.
    pub covers_line: u32,
    /// Rule codes the waiver allows.
    pub codes: Vec<String>,
    /// Whether any finding was actually waived (for `W002`).
    pub used: bool,
}

/// Extracts waivers from a file's comments, resolving which source line each
/// covers. Malformed tags (bad syntax, missing `-- justification`) are
/// returned as findings instead of waivers.
pub fn collect(path: &str, comments: &[Comment], toks: &[Tok]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[pos + MARKER.len()..].trim();
        match parse_tag(body) {
            Ok(codes) => {
                // Trailing tag (code earlier on the same line) covers its own
                // line; a standalone tag covers the next line holding code.
                let has_code_on_line = toks.iter().any(|t| t.line == c.line);
                let covers_line = if has_code_on_line {
                    c.line
                } else {
                    toks.iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                waivers.push(Waiver {
                    line: c.line,
                    covers_line,
                    codes,
                    used: false,
                });
            }
            Err(why) => findings.push(Finding::new(
                path,
                c.line,
                CODE_MALFORMED_WAIVER,
                format!("malformed waiver tag ({why}); findings on this line are NOT waived"),
            )),
        }
    }
    (waivers, findings)
}

/// Parses the tag body after the marker: `allow(CODE[, CODE…]) -- why`.
fn parse_tag(body: &str) -> Result<Vec<String>, String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(CODE, …)`".to_owned())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(`".to_owned())?;
    let codes: Vec<String> = rest[..close]
        .split(',')
        .map(|c| c.trim().to_owned())
        .filter(|c| !c.is_empty())
        .collect();
    if codes.is_empty() {
        return Err("empty code list".to_owned());
    }
    for code in &codes {
        if !code
            .chars()
            .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
        {
            return Err(format!("invalid rule code `{code}`"));
        }
    }
    let after = rest[close + 1..].trim();
    let justification = after
        .strip_prefix("--")
        .map(str::trim)
        .ok_or_else(|| "missing `-- <justification>`".to_owned())?;
    if justification.is_empty() {
        return Err("empty justification after `--`".to_owned());
    }
    Ok(codes)
}

/// Applies waivers to `findings`: removes covered findings (marking their
/// waivers used), then reports any waiver that covered nothing as `W002`.
/// Returns the number of findings waived.
pub fn apply(path: &str, waivers: &mut [Waiver], findings: &mut Vec<Finding>) -> usize {
    let before = findings.len();
    findings.retain(|f| {
        // W001/W002 are never waivable — the waiver machinery must not be
        // able to silence its own integrity checks.
        if f.code == CODE_MALFORMED_WAIVER || f.code == CODE_UNUSED_WAIVER {
            return true;
        }
        let covered = waivers
            .iter_mut()
            .find(|w| w.covers_line == f.line && w.codes.iter().any(|c| c == &f.code));
        match covered {
            Some(w) => {
                w.used = true;
                false
            }
            None => true,
        }
    });
    let waived = before - findings.len();
    for w in waivers.iter().filter(|w| !w.used) {
        findings.push(Finding::new(
            path,
            w.line,
            CODE_UNUSED_WAIVER,
            format!(
                "unused waiver for {}: no matching finding on line {}",
                w.codes.join(", "),
                w.covers_line
            ),
        ));
    }
    waived
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> (Vec<Waiver>, Vec<Finding>) {
        let lexed = lex(src);
        collect("t.rs", &lexed.comments, &lexed.toks)
    }

    #[test]
    fn trailing_tag_covers_its_own_line() {
        let (w, f) = scan("let x = 1; // ffet-analyze: allow(D001) -- reason\n");
        assert!(f.is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].covers_line, 1);
        assert_eq!(w[0].codes, vec!["D001"]);
    }

    #[test]
    fn standalone_tag_covers_next_code_line() {
        let (w, f) = scan("// ffet-analyze: allow(D002) -- reason\n\n// other\nlet x = 1;\n");
        assert!(f.is_empty());
        assert_eq!(w[0].covers_line, 4);
    }

    #[test]
    fn missing_justification_is_a_finding_not_a_waiver() {
        let (w, f) = scan("// ffet-analyze: allow(D001)\nlet x = 1;\n");
        assert!(w.is_empty());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, CODE_MALFORMED_WAIVER);
    }

    #[test]
    fn empty_justification_is_malformed() {
        let (w, f) = scan("// ffet-analyze: allow(D001) --   \nlet x = 1;\n");
        assert!(w.is_empty());
        assert_eq!(f[0].code, CODE_MALFORMED_WAIVER);
    }

    #[test]
    fn multi_code_tags_parse() {
        let (w, _) = scan("// ffet-analyze: allow(D001, D002) -- both\nlet x = 1;\n");
        assert_eq!(w[0].codes, vec!["D001", "D002"]);
    }

    #[test]
    fn unused_waiver_reported() {
        let (mut w, mut f) = scan("let x = 1; // ffet-analyze: allow(D001) -- reason\n");
        let waived = apply("t.rs", &mut w, &mut f);
        assert_eq!(waived, 0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, CODE_UNUSED_WAIVER);
    }

    #[test]
    fn waiver_consumes_matching_finding() {
        let (mut w, mut f) = scan("let x = 1; // ffet-analyze: allow(D001) -- reason\n");
        f.push(Finding::new(
            "t.rs",
            1,
            "D001",
            "default-hasher map".to_owned(),
        ));
        let waived = apply("t.rs", &mut w, &mut f);
        assert_eq!(waived, 1);
        assert!(f.is_empty());
    }
}
