//! The rule catalog.
//!
//! | code | protects | rule |
//! |------|----------|------|
//! | D001 | determinism | no default-hasher `HashMap`/`HashSet` in pipeline crates |
//! | D002 | determinism | no unsorted iteration over hash maps in artifact-producing crates |
//! | D003 | determinism | no `Instant::now`/`SystemTime` outside the timing modules |
//! | D004 | determinism | no thread spawning outside the `ffet-pool` work-stealing pool |
//! | R001 | robustness  | no `unwrap()`/`expect()`/`panic!` outside tests (baseline-frozen) |
//! | R002 | robustness  | no direct `fs::write`/`File::create` — artifacts go through `ckpt::atomic_write` |
//! | M001 | observability | metric/span names ⇆ DESIGN §9 catalog, both directions |
//!
//! Every rule is a pattern walk over the lexed token stream with tests-
//! stripped regions removed — no type information. D002 is therefore a
//! *heuristic*: it tracks `let`-bound locals whose initializer or type
//! annotation names a hash-map type, and flags direct `for … in` iteration
//! and unsorted iterator-method chains on them. The waiver syntax exists
//! precisely for the cases the heuristic cannot prove safe.

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose on-disk artifacts (CSV, DEF, SPEF, JSON) must be
/// byte-identical at any pool width: D002 applies here.
const ARTIFACT_CRATES: &[&str] = &["lefdef", "sta", "rcx", "verify", "core", "obs"];

/// Crates exempt from the pipeline rules (D001, R001): the bench/CLI
/// harness. The analyzer itself is excluded from the walk entirely.
const NON_PIPELINE_CRATES: &[&str] = &["bench"];

/// Crates allowed to read wall clocks (D003): the observability crate and
/// the bench harness — timing is their purpose.
const TIMING_CRATES: &[&str] = &["obs", "bench"];

/// Files allowed to read wall clocks and spawn threads: the shared
/// work-stealing pool and its historical home in the DoE runner.
const RUNNER_FILES: &[&str] = &["crates/core/src/runner.rs", "crates/pool/src/lib.rs"];

/// Hash-map/-set type names for D001/D002 tracking.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iterator-producing methods on maps/sets whose order is insertion/hash
/// dependent.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain members that make hash-order iteration harmless: ordered
/// re-collection or order-insensitive reductions.
const ORDER_SAFE: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "product",
    "count",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "all",
    "any",
];

/// Functions whose first string-literal argument is a metric/span name
/// (the `ffet_obs` recording API).
const METRIC_FNS: &[&str] = &["span", "counter_add", "gauge_set", "observe"];

/// A metric/span name literal found at a recording call site.
#[derive(Debug, Clone)]
pub struct MetricUse {
    /// The literal name.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// Extracts the crate name from a workspace-relative path
/// (`crates/<name>/src/…`).
#[must_use]
pub fn crate_of(relpath: &str) -> Option<&str> {
    let rest = relpath.strip_prefix("crates/")?;
    let name = rest.split('/').next()?;
    rest.strip_prefix(name)?.strip_prefix("/src/")?;
    Some(name)
}

/// Runs every token-stream rule over one file. `toks` must already be
/// test-stripped. Returns raw (pre-waiver) findings plus M001 name uses.
#[must_use]
pub fn scan_tokens(relpath: &str, toks: &[Tok]) -> (Vec<Finding>, Vec<MetricUse>) {
    let mut findings = Vec::new();
    let mut uses = Vec::new();
    let Some(krate) = crate_of(relpath) else {
        return (findings, uses);
    };
    let pipeline = !NON_PIPELINE_CRATES.contains(&krate);
    let artifact = ARTIFACT_CRATES.contains(&krate);
    let timing_ok = TIMING_CRATES.contains(&krate) || RUNNER_FILES.contains(&relpath);
    let spawn_ok = RUNNER_FILES.contains(&relpath);

    if pipeline {
        d001(relpath, toks, &mut findings);
        r001(relpath, toks, &mut findings);
    }
    if artifact {
        d002(relpath, toks, &mut findings);
    }
    if !timing_ok {
        d003(relpath, toks, &mut findings);
    }
    if !spawn_ok {
        d004(relpath, toks, &mut findings);
    }
    r002(relpath, toks, &mut findings);
    collect_metric_uses(toks, &mut uses);
    (findings, uses)
}

/// D001: any mention of the default-hasher types in pipeline code.
fn d001(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if let TokKind::Ident(id) = &t.kind {
            if id == "HashMap" || id == "HashSet" {
                out.push(Finding::new(
                    path,
                    t.line,
                    "D001",
                    format!(
                        "default-hasher `{id}` in pipeline crate: use \
                         `ffet_geom::Fx{id}` (deterministic) or `BTree{}` (ordered)",
                        id.strip_prefix("Hash").unwrap_or(id)
                    ),
                ));
            }
        }
    }
}

/// D002: unsorted iteration over hash-typed locals in artifact crates.
fn d002(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let bound = hash_bound_locals(toks);
    if bound.is_empty() {
        return;
    }

    // Direct `for pat in <expr>` where <expr> mentions a bound local but no
    // iterator method (method chains are handled below, with sanctions).
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("for") {
            if let Some((head_start, head_end)) = for_head(toks, i) {
                let head = &toks[head_start..head_end];
                let has_chain = head
                    .iter()
                    .any(|t| matches!(t.ident(), Some(id) if ITER_METHODS.contains(&id)));
                let hit = head
                    .iter()
                    .find(|t| matches!(t.ident(), Some(id) if bound.contains(id)));
                if let (Some(hit), false) = (hit, has_chain) {
                    let safe = head
                        .iter()
                        .any(|t| matches!(t.ident(), Some(id) if ORDER_SAFE.contains(&id)));
                    if !safe {
                        out.push(Finding::new(
                            path,
                            toks[i].line,
                            "D002",
                            format!(
                                "iteration over hash map/set `{}` in artifact-producing crate: \
                                 hash order must not reach artifacts — sort first, use a \
                                 BTreeMap, or waive with a determinism argument",
                                hit.ident().unwrap_or("?")
                            ),
                        ));
                    }
                }
                i = head_end;
                continue;
            }
        }
        i += 1;
    }

    // Iterator-method chains on bound locals: `m.keys()…`, `m.iter()…`.
    let mut i = 0usize;
    while i + 2 < toks.len() {
        let chain_hit = matches!(toks[i].ident(), Some(id) if bound.contains(id))
            && toks[i + 1].is_punct('.')
            && matches!(toks[i + 2].ident(), Some(id) if ITER_METHODS.contains(&id));
        if !chain_hit {
            i += 1;
            continue;
        }
        let (end, members) = walk_chain(toks, i + 1);
        // Sanctioned by the chain itself (turbofish / reduction), or by an
        // ordered type annotation earlier in the same statement
        // (`let x: BTreeMap<…> = m.iter().collect();`).
        let safe = members.iter().any(|m| ORDER_SAFE.contains(&m.as_str()))
            || statement_prefix_sanctions(toks, i);
        if !safe {
            out.push(Finding::new(
                path,
                toks[i].line,
                "D002",
                format!(
                    "unsorted `{}.{}()` chain in artifact-producing crate: collect into an \
                     ordered container, reduce order-insensitively, or waive with a \
                     determinism argument",
                    toks[i].ident().unwrap_or("?"),
                    toks[i + 2].ident().unwrap_or("?"),
                ),
            ));
        }
        i = end;
    }
}

/// True when the statement containing token `i` names an ordered container
/// before `i` (e.g. a `BTreeMap` type annotation on the binding).
fn statement_prefix_sanctions(toks: &[Tok], i: usize) -> bool {
    for t in toks[..i].iter().rev() {
        match &t.kind {
            TokKind::Punct(';' | '{' | '}') => return false,
            TokKind::Ident(id) if ORDER_SAFE.contains(&id.as_str()) => return true,
            _ => {}
        }
    }
    false
}

/// Collects `let`-bound local names whose declaration statement mentions a
/// hash-map/-set type (annotation or initializer).
fn hash_bound_locals(toks: &[Tok]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(name) = toks.get(j).and_then(Tok::ident) else {
            i = j;
            continue;
        };
        // Scan the statement to its top-level `;`, looking for hash types.
        let mut depth = 0i32;
        let mut k = j + 1;
        let mut is_hash = false;
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => depth -= 1,
                TokKind::Punct(';') if depth == 0 => break,
                TokKind::Ident(id) if HASH_TYPES.contains(&id.as_str()) => is_hash = true,
                _ => {}
            }
            k += 1;
        }
        if is_hash {
            bound.insert(name.to_owned());
        }
        // Resume right after the binding so nested `let`s are still seen.
        i = j + 1;
    }
    bound
}

/// For a `for` at index `i`, returns the token range of the iterable
/// expression (between top-level `in` and the body `{`), or `None` when
/// this is not a `for … in` loop (e.g. `impl Trait for Type`).
fn for_head(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    let start = loop {
        match &toks.get(j)?.kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => return None,
            TokKind::Ident(id) if depth == 0 && id == "in" => break j + 1,
            _ => {}
        }
        j += 1;
    };
    let mut depth = 0i32;
    let mut j = start;
    loop {
        match &toks.get(j)?.kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => return Some((start, j)),
            _ => {}
        }
        j += 1;
    }
}

/// Walks a postfix method chain starting at the `.` token index. Returns
/// (index past the chain, method/turbofish identifiers seen).
fn walk_chain(toks: &[Tok], dot: usize) -> (usize, Vec<String>) {
    let mut members = Vec::new();
    let mut i = dot;
    while i + 1 < toks.len() && toks[i].is_punct('.') {
        let Some(m) = toks[i + 1].ident() else { break };
        members.push(m.to_owned());
        i += 2;
        // Turbofish: `::<…>` — collect type idents (BTreeMap sanctions).
        if i + 1 < toks.len() && toks[i].is_punct(':') && toks[i + 1].is_punct(':') {
            i += 2;
            if i < toks.len() && toks[i].is_punct('<') {
                let mut angle = 0i32;
                while i < toks.len() {
                    match &toks[i].kind {
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => {
                            angle -= 1;
                            if angle == 0 {
                                i += 1;
                                break;
                            }
                        }
                        TokKind::Ident(id) => members.push(id.clone()),
                        _ => {}
                    }
                    i += 1;
                }
            }
        }
        // Call arguments: skip balanced parens (argument internals — e.g.
        // closure bodies — do not sanction the chain).
        if i < toks.len() && toks[i].is_punct('(') {
            let mut depth = 0i32;
            while i < toks.len() {
                match &toks[i].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    (i, members)
}

/// D003: wall-clock reads outside the timing modules.
fn d003(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let instant_now = t.is_ident("Instant")
            && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 3), Some(t) if t.is_ident("now"));
        if instant_now || t.is_ident("SystemTime") {
            let what = if instant_now {
                "Instant::now"
            } else {
                "SystemTime"
            };
            out.push(Finding::new(
                path,
                t.line,
                "D003",
                format!(
                    "wall-clock read (`{what}`) outside the timing modules (obs, runner, \
                     bench): artifacts must not depend on time"
                ),
            ));
        }
    }
}

/// D004: thread spawning outside the `ffet-pool` work-stealing pool.
fn d004(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("thread")
            && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(
                toks.get(i + 3),
                Some(t) if t.is_ident("spawn") || t.is_ident("scope") || t.is_ident("Builder")
            )
        {
            let m = toks[i + 3].ident().unwrap_or("spawn");
            out.push(Finding::new(
                path,
                t.line,
                "D004",
                format!(
                    "`thread::{m}` outside ffet-pool: all parallelism goes through \
                     the deterministic work-stealing pool"
                ),
            ));
        }
    }
}

/// R001: panic-family calls in pipeline code (baseline-frozen debt).
fn r001(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let method = t.is_punct('.')
            && matches!(
                toks.get(i + 1),
                Some(t) if t.is_ident("unwrap") || t.is_ident("expect")
            )
            && matches!(toks.get(i + 2), Some(t) if t.is_punct('('));
        if method {
            let m = toks[i + 1].ident().unwrap_or("unwrap");
            out.push(Finding::new(
                path,
                toks[i + 1].line,
                "R001",
                format!("`.{m}()` in pipeline code outside tests: return a typed error instead"),
            ));
        }
        if t.is_ident("panic") && matches!(toks.get(i + 1), Some(t) if t.is_punct('!')) {
            out.push(Finding::new(
                path,
                t.line,
                "R001",
                "`panic!` in pipeline code outside tests: return a typed error instead".to_owned(),
            ));
        }
    }
}

/// R002: direct non-atomic file creation. A kill between `create` and the
/// final `write` leaves a torn artifact that downstream tooling reads as
/// complete; every artifact write must go through
/// `ffet_core::ckpt::atomic_write` (sibling tmp file + `rename`), which is
/// itself the one waived call site. Applies to every scanned crate — the
/// bench/CLI harness writes most of the artifacts.
fn r002(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let path_call = |target: &str, method: &str| {
            t.is_ident(target)
                && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
                && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
                && matches!(toks.get(i + 3), Some(t) if t.is_ident(method))
                && matches!(toks.get(i + 4), Some(t) if t.is_punct('('))
        };
        if path_call("fs", "write") {
            out.push(Finding::new(
                path,
                t.line,
                "R002",
                "direct `fs::write`: a mid-write kill leaves a torn artifact — publish \
                 through `ffet_core::ckpt::atomic_write` (tmp + rename), or waive with a \
                 crash-safety argument"
                    .to_owned(),
            ));
        }
        if path_call("File", "create") {
            out.push(Finding::new(
                path,
                t.line,
                "R002",
                "direct `File::create`: a mid-write kill leaves a torn artifact — publish \
                 through `ffet_core::ckpt::atomic_write` (tmp + rename), or waive with a \
                 crash-safety argument"
                    .to_owned(),
            ));
        }
    }
}

/// M001 collection: string-literal names at `ffet_obs` recording calls.
fn collect_metric_uses(toks: &[Tok], out: &mut Vec<MetricUse>) {
    for (i, t) in toks.iter().enumerate() {
        let is_metric_fn = matches!(t.ident(), Some(id) if METRIC_FNS.contains(&id));
        if is_metric_fn
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('('))
            && matches!(toks.get(i + 2), Some(t) if matches!(t.kind, TokKind::Str(_)))
        {
            if let Some(Tok {
                kind: TokKind::Str(s),
                line,
            }) = toks.get(i + 2)
            {
                out.push(MetricUse {
                    name: s.clone(),
                    line: *line,
                });
            }
        }
    }
}

/// The DESIGN §9 name catalog, parsed from fenced ```` ```metrics ````
/// blocks.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Exact names (brace alternations pre-expanded) → line in DESIGN.md.
    pub exact: BTreeMap<String, u32>,
    /// Dynamic entries (containing `<placeholder>`) — documented but not
    /// checkable against literals.
    pub dynamic: Vec<(String, u32)>,
}

impl Catalog {
    /// Parses every ```` ```metrics ```` fenced block in `text`.
    #[must_use]
    pub fn parse(text: &str) -> Catalog {
        let mut cat = Catalog::default();
        let mut in_block = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if let Some(info) = line.strip_prefix("```") {
                in_block = !in_block && info.trim() == "metrics";
                continue;
            }
            if !in_block || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = i as u32 + 1;
            if line.contains('<') {
                cat.dynamic.push((line.to_owned(), lineno));
            } else {
                for name in expand_braces(line) {
                    cat.exact.insert(name, lineno);
                }
            }
        }
        cat
    }
}

/// Expands one level-agnostic brace alternation set:
/// `route.overflow.{front,back}.{h,v}` → the four concrete names.
#[must_use]
pub fn expand_braces(s: &str) -> Vec<String> {
    let Some(open) = s.find('{') else {
        return vec![s.to_owned()];
    };
    let Some(close) = s[open..].find('}').map(|p| open + p) else {
        return vec![s.to_owned()];
    };
    let mut out = Vec::new();
    for alt in s[open + 1..close].split(',') {
        let expanded = format!("{}{}{}", &s[..open], alt.trim(), &s[close + 1..]);
        out.extend(expand_braces(&expanded));
    }
    out
}

/// M001 reconciliation: code uses ⇆ catalog, both directions.
pub fn m001(
    design_path: &str,
    catalog: &Catalog,
    uses: &BTreeMap<String, Vec<(String, u32)>>, // name -> [(file, line)]
    out: &mut Vec<Finding>,
) {
    for (name, sites) in uses {
        if !catalog.exact.contains_key(name) {
            for (file, line) in sites {
                out.push(Finding::new(
                    file,
                    *line,
                    "M001",
                    format!(
                        "metric/span name `{name}` is not in the DESIGN §9 catalog: add it to \
                         the ```metrics block (or fix the name)"
                    ),
                ));
            }
        }
    }
    for (name, line) in &catalog.exact {
        if !uses.contains_key(name) {
            out.push(Finding::new(
                design_path,
                *line,
                "M001",
                format!(
                    "catalog entry `{name}` has no recording call site in the workspace: \
                     remove it from DESIGN §9 or restore the instrumentation"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_regions};

    /// Fixture helper: full per-file pipeline (lex → strip → rules).
    fn scan(path: &str, src: &str) -> Vec<Finding> {
        let toks = strip_test_regions(lex(src).toks);
        scan_tokens(path, &toks).0
    }

    fn codes(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/pnr/src/route.rs"), Some("pnr"));
        assert_eq!(crate_of("crates/bench/src/bin/repro.rs"), Some("bench"));
        assert_eq!(crate_of("crates/pnr/tests/x.rs"), None);
        assert_eq!(crate_of("DESIGN.md"), None);
    }

    // ---- D001 ----------------------------------------------------------

    #[test]
    fn d001_flags_default_hasher_types() {
        let f = scan(
            "crates/pnr/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(codes(&f), vec!["D001", "D001", "D001"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d001_ignores_fx_types_bench_and_tests() {
        assert!(scan(
            "crates/pnr/src/x.rs",
            "fn f() { let m = ffet_geom::FxHashMap::<u32, u32>::default(); }",
        )
        .is_empty());
        assert!(scan("crates/bench/src/x.rs", "use std::collections::HashMap;").is_empty());
        assert!(scan(
            "crates/pnr/src/x.rs",
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; }",
        )
        .is_empty());
    }

    // ---- D002 ----------------------------------------------------------

    #[test]
    fn d002_flags_direct_for_iteration() {
        let f = scan(
            "crates/verify/src/x.rs",
            "fn f() { let m = FxHashMap::default(); for (k, v) in m { use_it(k, v); } }",
        );
        assert_eq!(codes(&f), vec!["D002"]);
    }

    #[test]
    fn d002_flags_unsorted_keys_chain() {
        let f = scan(
            "crates/verify/src/x.rs",
            "fn f() { let m = FxHashMap::default(); let v: Vec<_> = m.keys().copied().collect(); }",
        );
        assert_eq!(codes(&f), vec!["D002"]);
    }

    #[test]
    fn d002_accepts_ordered_or_reduced_chains() {
        let src = "fn f() {\n\
             let m = FxHashMap::default();\n\
             let total: usize = m.values().sum();\n\
             let sorted: std::collections::BTreeMap<_, _> = m.iter().collect::<BTreeMap<_, _>>();\n\
             let n = m.keys().count();\n\
         }";
        assert!(scan("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d002_only_in_artifact_crates() {
        let src = "fn f() { let m = FxHashMap::default(); for k in m { go(k); } }";
        assert!(scan("crates/pnr/src/x.rs", src).is_empty(), "pnr exempt");
        assert_eq!(codes(&scan("crates/obs/src/x.rs", src)), vec!["D002"]);
    }

    #[test]
    fn d002_lookups_are_fine() {
        let src = "fn f() { let m = FxHashMap::default(); let x = m.get(&1); m.insert(1, 2); }";
        assert!(scan("crates/verify/src/x.rs", src).is_empty());
    }

    // ---- D003 ----------------------------------------------------------

    #[test]
    fn d003_flags_wall_clock_outside_timing_modules() {
        let f = scan(
            "crates/pnr/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(codes(&f), vec!["D003"]);
        let f = scan("crates/sta/src/x.rs", "use std::time::SystemTime;");
        assert_eq!(codes(&f), vec!["D003"]);
    }

    #[test]
    fn d003_allows_obs_bench_and_runner() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(scan("crates/obs/src/x.rs", src).is_empty());
        assert!(scan("crates/bench/src/x.rs", src).is_empty());
        assert!(scan("crates/core/src/runner.rs", src).is_empty());
        assert_eq!(codes(&scan("crates/core/src/flow.rs", src)), vec!["D003"]);
    }

    // ---- D004 ----------------------------------------------------------

    #[test]
    fn d004_flags_thread_spawning() {
        let f = scan(
            "crates/rcx/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(codes(&f), vec!["D004"]);
        let f = scan("crates/rcx/src/x.rs", "fn f() { thread::scope(|s| {}); }");
        assert_eq!(codes(&f), vec!["D004"]);
    }

    #[test]
    fn d004_allows_runner() {
        assert!(scan(
            "crates/core/src/runner.rs",
            "fn f() { std::thread::scope(|s| {}); }",
        )
        .is_empty());
        assert!(scan(
            "crates/pool/src/lib.rs",
            "fn f() { std::thread::scope(|s| {}); }",
        )
        .is_empty());
    }

    // ---- R001 ----------------------------------------------------------

    #[test]
    fn r001_flags_panic_family() {
        let f = scan(
            "crates/sta/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"boom\"); }",
        );
        assert_eq!(codes(&f), vec!["R001", "R001", "R001"]);
    }

    #[test]
    fn r001_ignores_tests_and_lookalikes() {
        assert!(scan(
            "crates/sta/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); panic!(); } }",
        )
        .is_empty());
        assert!(scan(
            "crates/sta/src/x.rs",
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.expect_err(\"e\"); }",
        )
        .is_empty());
    }

    // ---- R002 ----------------------------------------------------------

    #[test]
    fn r002_flags_direct_writes_everywhere() {
        let src = "fn f() { std::fs::write(\"results/a.csv\", b).ok(); }";
        assert_eq!(codes(&scan("crates/bench/src/x.rs", src)), vec!["R002"]);
        assert_eq!(codes(&scan("crates/core/src/x.rs", src)), vec!["R002"]);
        let f = scan(
            "crates/lefdef/src/x.rs",
            "fn f() { let out = std::fs::File::create(path)?; }",
        );
        assert_eq!(codes(&f), vec!["R002"]);
    }

    #[test]
    fn r002_ignores_tests_reads_and_lookalikes() {
        assert!(scan(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { std::fs::write(\"x\", \"y\").unwrap(); } }",
        )
        .is_empty());
        assert!(scan(
            "crates/core/src/x.rs",
            "fn f() { let t = std::fs::read_to_string(p)?; fs::create_dir_all(d)?; \
             let f = File::open(p)?; my_fs::write(p, b)?; }",
        )
        .is_empty());
    }

    // ---- M001 ----------------------------------------------------------

    fn catalog(entries: &str) -> Catalog {
        Catalog::parse(&format!("```metrics\n{entries}\n```\n"))
    }

    #[test]
    fn m001_both_directions() {
        let cat = catalog("route.rounds\nroute.vias.{front,back}\nsignoff.<rule>\nghost.metric");
        let toks = strip_test_regions(
            lex("fn f() { ffet_obs::counter_add(\"route.rounds\", 1); \
                 ffet_obs::gauge_set(\"route.vias.front\", 1.0); \
                 ffet_obs::span(\"rogue.name\"); }")
            .toks,
        );
        let (_, uses) = scan_tokens("crates/pnr/src/x.rs", &toks);
        let mut by_name: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
        for u in uses {
            by_name
                .entry(u.name)
                .or_default()
                .push(("crates/pnr/src/x.rs".to_owned(), u.line));
        }
        let mut findings = Vec::new();
        m001("DESIGN.md", &cat, &by_name, &mut findings);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`rogue.name`")));
        assert!(msgs.iter().any(|m| m.contains("`ghost.metric`")));
        assert!(
            msgs.iter().any(|m| m.contains("`route.vias.back`")),
            "unused expansion arm is reported"
        );
        assert!(
            !msgs.iter().any(|m| m.contains("signoff")),
            "dynamic entries are exempt"
        );
    }

    #[test]
    fn brace_expansion() {
        let mut v = expand_braces("route.overflow.{front,back}.{h,v}");
        v.sort();
        assert_eq!(
            v,
            vec![
                "route.overflow.back.h",
                "route.overflow.back.v",
                "route.overflow.front.h",
                "route.overflow.front.v",
            ]
        );
        assert_eq!(expand_braces("plain.name"), vec!["plain.name"]);
    }

    #[test]
    fn metric_literal_via_format_is_skipped() {
        let toks = lex("fn f() { ffet_obs::counter_add(&format!(\"signoff.{rule}\"), 1); }").toks;
        let (_, uses) = scan_tokens("crates/verify/src/x.rs", &toks);
        assert!(uses.is_empty());
    }
}
