//! Findings and the deterministic report renderers.
//!
//! Everything here is sorted and byte-stable: the same workspace state
//! produces the same text and JSON reports on every run, on every machine —
//! the analyzer gates a byte-identity contract, so its own output honors one.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Malformed waiver tag (bad syntax or missing justification).
pub const CODE_MALFORMED_WAIVER: &str = "W001";
/// Waiver tag that matched no finding.
pub const CODE_UNUSED_WAIVER: &str = "W002";
/// Stale R001 baseline entry (debt paid down or file gone — re-bless).
pub const CODE_STALE_BASELINE: &str = "B001";

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule code (`D001`…`M001`, `W00x`, `B001`).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Convenience constructor.
    pub fn new(file: &str, line: u32, code: &str, message: String) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            code: code.to_owned(),
            message,
        }
    }

    /// Sort key: file, then line, then code, then message.
    fn key(&self) -> (&str, u32, &str, &str) {
        (&self.file, self.line, &self.code, &self.message)
    }
}

/// The complete result of one analyzer run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Non-waived, non-baselined findings (sorted; non-empty ⇒ gate fails).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by a justified waiver.
    pub waived: usize,
    /// R001 findings frozen by the checked-in baseline.
    pub baselined: usize,
}

impl Analysis {
    /// Sorts findings into the canonical report order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| a.key().cmp(&b.key()));
    }

    /// True when the gate passes.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the rustc-style text report (trailing newline included).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.code, f.message);
        }
        if self.is_clean() {
            let _ = writeln!(
                out,
                "ffet-analyze: clean ({} files scanned, {} waived, {} baselined)",
                self.files_scanned, self.waived, self.baselined
            );
        } else {
            let mut by_code: BTreeMap<&str, usize> = BTreeMap::new();
            for f in &self.findings {
                *by_code.entry(&f.code).or_default() += 1;
            }
            let summary: Vec<String> = by_code
                .iter()
                .map(|(code, n)| format!("{code}×{n}"))
                .collect();
            let _ = writeln!(
                out,
                "ffet-analyze: {} finding(s) [{}] across {} files ({} waived, {} baselined)",
                self.findings.len(),
                summary.join(", "),
                self.files_scanned,
                self.waived,
                self.baselined
            );
        }
        out
    }

    /// Renders the JSON report (schema v1, keys and findings in fixed order).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"v\":1,\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        let _ = write!(
            out,
            ",\"files_scanned\":{},\"waived\":{},\"baselined\":{},\"findings\":[",
            self.files_scanned, self.waived, self.baselined
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"line\":{},\"code\":{},\"message\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.code),
                json_str(&f.message)
            );
        }
        out.push_str("]}\n");
        out
    }
}

/// Minimal JSON string escaping (the only JSON writer this crate needs).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_sorted_and_stable() {
        let mut a = Analysis {
            findings: vec![
                Finding::new("b.rs", 2, "D001", "x".into()),
                Finding::new("a.rs", 9, "R001", "y".into()),
                Finding::new("a.rs", 9, "D002", "z".into()),
            ],
            files_scanned: 3,
            waived: 1,
            baselined: 0,
        };
        a.sort();
        let text = a.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.rs:9: D002 z");
        assert_eq!(lines[1], "a.rs:9: R001 y");
        assert_eq!(lines[2], "b.rs:2: D001 x");
        assert!(lines[3].contains("3 finding(s) [D001×1, D002×1, R001×1]"));
        // Rendering twice is byte-identical.
        assert_eq!(a.render_text(), text);
        assert_eq!(a.render_json(), a.render_json());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
