//! The analyzer analyzing its own workspace: the tree must be clean, the
//! report must be byte-stable, and an injected violation must fail the gate.

use ffet_analyze::baseline::Baseline;
use ffet_analyze::{analyze_workspace, BASELINE_PATH};
use std::path::{Path, PathBuf};

/// The real workspace root (two levels above this crate).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the root")
        .to_path_buf()
}

fn load_baseline(root: &Path) -> Baseline {
    let text = std::fs::read_to_string(root.join(BASELINE_PATH)).expect("baseline is checked in");
    Baseline::parse(&text).expect("checked-in baseline parses")
}

#[test]
fn workspace_is_clean_under_its_own_gate() {
    let root = workspace_root();
    let ws = analyze_workspace(&root, &load_baseline(&root)).expect("workspace analyzes");
    assert!(
        ws.analysis.is_clean(),
        "the workspace must pass its own gate:\n{}",
        ws.analysis.render_text()
    );
    assert!(ws.analysis.files_scanned > 50, "the walk found the tree");
}

#[test]
fn report_is_byte_identical_across_runs() {
    let root = workspace_root();
    let baseline = load_baseline(&root);
    let a = analyze_workspace(&root, &baseline).expect("first run");
    let b = analyze_workspace(&root, &baseline).expect("second run");
    assert_eq!(a.analysis.render_text(), b.analysis.render_text());
    assert_eq!(a.analysis.render_json(), b.analysis.render_json());
    assert_eq!(a.r001_counts, b.r001_counts);
}

#[test]
fn blessed_baseline_matches_reality() {
    // The checked-in baseline must be exactly what --bless-baseline would
    // write today — neither understating debt (gate failure) nor
    // overstating it (stale entries).
    let root = workspace_root();
    let ws = analyze_workspace(&root, &Baseline::default()).expect("workspace analyzes");
    let checked_in =
        std::fs::read_to_string(root.join(BASELINE_PATH)).expect("baseline is checked in");
    assert_eq!(
        Baseline::render(&ws.r001_counts),
        checked_in,
        "r001.baseline is stale — re-bless with: cargo run -p ffet-analyze -- --bless-baseline"
    );
}

#[test]
fn injected_violations_fail_the_gate() {
    // A synthetic workspace with one hazard of each kind; the gate must
    // report every one and exit dirty.
    let dir = std::env::temp_dir().join(format!("ffet-analyze-selfcheck-{}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("temp tree");
    std::fs::write(
        dir.join("DESIGN.md"),
        "# doc\n\n```metrics\ndemo.known\n```\n",
    )
    .expect("write DESIGN.md");
    std::fs::write(
        src.join("lib.rs"),
        r#"
use std::collections::HashMap;
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let v = m.get(&1).unwrap();
    let t = std::time::Instant::now();
    std::thread::spawn(|| {});
    ffet_obs::counter_add("demo.unknown", 1);
    ffet_obs::counter_add("demo.known", 1);
}
"#,
    )
    .expect("write lib.rs");

    let ws = analyze_workspace(&dir, &Baseline::default()).expect("synthetic tree analyzes");
    let codes: Vec<&str> = ws
        .analysis
        .findings
        .iter()
        .map(|f| f.code.as_str())
        .collect();
    for expected in ["D001", "R001", "D003", "D004", "M001"] {
        assert!(
            codes.contains(&expected),
            "expected {expected} among {codes:?}"
        );
    }
    assert!(!ws.analysis.is_clean());
    std::fs::remove_dir_all(&dir).ok();
}
