//! Netlist lint: structural checks on the final netlist, independent of
//! any physical data.

use crate::{Severity, Violation};
use ffet_cells::{Library, PinDirection};
use ffet_netlist::{Netlist, PortDirection};

/// Maximum sink count per non-clock net before a fanout warning. Clock
/// nets are exempt: their fanout is managed by CTS buffering.
pub const MAX_FANOUT: usize = 64;

/// Lints a netlist: driver rules, floating pins, fanout, and
/// combinational loops (reported with the full cycle path).
#[must_use]
pub fn lint_netlist(netlist: &Netlist, library: &Library) -> Vec<Violation> {
    let mut out = Vec::new();
    let nets = netlist.nets();

    // Per-net port counts (ports drive or load nets without instances).
    let mut input_ports = vec![0usize; nets.len()];
    let mut output_ports = vec![0usize; nets.len()];
    for port in netlist.ports() {
        match port.direction {
            PortDirection::Input => input_ports[port.net.0 as usize] += 1,
            PortDirection::Output => output_ports[port.net.0 as usize] += 1,
        }
    }

    for (ni, net) in nets.iter().enumerate() {
        let drivers = usize::from(net.driver.is_some()) + input_ports[ni];
        let loads = net.sinks.len() + output_ports[ni];
        if drivers == 0 && loads > 0 {
            out.push(Violation {
                rule: "lint.undriven",
                severity: Severity::Error,
                subject: net.name.clone(),
                location: None,
                message: format!("net has {loads} load(s) but no driver"),
            });
        }
        if drivers > 1 {
            out.push(Violation {
                rule: "lint.multi-driven",
                severity: Severity::Error,
                subject: net.name.clone(),
                location: None,
                message: format!(
                    "net has {drivers} drivers ({} instance, {} input port)",
                    usize::from(net.driver.is_some()),
                    input_ports[ni]
                ),
            });
        }
        if drivers == 1 && loads == 0 {
            out.push(Violation {
                rule: "lint.dangling-output",
                severity: Severity::Warning,
                subject: net.name.clone(),
                location: None,
                message: "driven net has no sink and no output port".to_owned(),
            });
        }
        if !net.is_clock && loads > MAX_FANOUT {
            out.push(Violation {
                rule: "lint.fanout",
                severity: Severity::Warning,
                subject: net.name.clone(),
                location: None,
                message: format!("fanout {loads} exceeds limit {MAX_FANOUT}"),
            });
        }
    }

    // Floating instance pins: every library pin must be connected.
    for inst in netlist.instances() {
        let cell = library.cell(inst.cell);
        for (pi, pin) in cell.pins.iter().enumerate() {
            if inst.conns.get(pi).copied().flatten().is_some() {
                continue;
            }
            let (rule, severity) = match pin.direction {
                PinDirection::Input => ("lint.floating-input", Severity::Error),
                PinDirection::Output => ("lint.unconnected-output", Severity::Warning),
            };
            out.push(Violation {
                rule,
                severity,
                subject: format!("{}/{}", inst.name, pin.name),
                location: None,
                message: format!("{} pin of {} is unconnected", pin.name, cell.name),
            });
        }
    }

    out.extend(find_comb_loops(netlist, library));
    out
}

/// Finds combinational cycles by DFS over the comb-instance graph
/// (sequential cells break edges, as in levelization) and reports each
/// back edge with the full instance path around the loop.
fn find_comb_loops(netlist: &Netlist, library: &Library) -> Vec<Violation> {
    let n = netlist.instances().len();
    let is_comb: Vec<bool> = netlist
        .instances()
        .iter()
        .map(|inst| {
            let f = library.cell(inst.cell).kind.function;
            !f.is_sequential() && f.has_output() && f.input_count() > 0
        })
        .collect();

    // successors[i] = comb instances driven by comb instance i.
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, inst) in netlist.instances().iter().enumerate() {
        if !is_comb[i] {
            continue;
        }
        let cell = library.cell(inst.cell);
        let Some(out_pin) = cell.output_pin() else {
            continue;
        };
        let Some(out_net) = inst.conns.get(out_pin).copied().flatten() else {
            continue;
        };
        for sink in &netlist.net(out_net).sinks {
            let si = sink.inst.0 as usize;
            if is_comb[si] {
                successors[i].push(si);
            }
        }
    }

    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut out = Vec::new();

    for root in 0..n {
        if !is_comb[root] || color[root] != WHITE {
            continue;
        }
        // Iterative DFS; `path` mirrors the gray stack for cycle recovery.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut path: Vec<usize> = vec![root];
        color[root] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < successors[node].len() {
                let succ = successors[node][*next];
                *next += 1;
                match color[succ] {
                    WHITE => {
                        color[succ] = GRAY;
                        stack.push((succ, 0));
                        path.push(succ);
                    }
                    GRAY => {
                        let start = path
                            .iter()
                            .position(|&p| p == succ)
                            .expect("gray node is on the DFS path");
                        let names: Vec<&str> = path[start..]
                            .iter()
                            .chain(std::iter::once(&succ))
                            .map(|&p| netlist.instances()[p].name.as_str())
                            .collect();
                        out.push(Violation {
                            rule: "lint.comb-loop",
                            severity: Severity::Error,
                            subject: netlist.instances()[succ].name.clone(),
                            location: None,
                            message: format!("combinational loop: {}", names.join(" -> ")),
                        });
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
                path.pop();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_cells::{CellFunction, CellKind, DriveStrength};
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_design_has_no_findings() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "clean");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and2(x, y);
        b.output("z", z);
        let nl = b.finish();
        assert!(lint_netlist(&nl, &lib).is_empty());
    }

    #[test]
    fn undriven_and_floating_detected() {
        let lib = Library::new(Technology::ffet_3p5t());
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a"); // never driven
        let b = nl.add_net("b");
        // INV pins are [A (in), Y (out)]: input driven by undriven `a`.
        nl.add_instance(&lib, "u1", inv, &[Some(a), Some(b)]);
        // Floating input: no connection at all.
        nl.add_instance(&lib, "u2", inv, &[None, None]);
        nl.add_port("b", PortDirection::Output, b);
        let v = lint_netlist(&nl, &lib);
        let r = rules(&v);
        assert!(r.contains(&"lint.undriven"), "{v:?}");
        assert!(r.contains(&"lint.floating-input"), "{v:?}");
        assert!(r.contains(&"lint.unconnected-output"), "{v:?}");
    }

    #[test]
    fn multi_driven_via_port_detected() {
        let lib = Library::new(Technology::ffet_3p5t());
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_instance(&lib, "u1", inv, &[Some(a), Some(b)]);
        nl.add_port("a", PortDirection::Input, a);
        nl.add_port("b", PortDirection::Input, b); // fights the INV output
        nl.add_port("bo", PortDirection::Output, b);
        let v = lint_netlist(&nl, &lib);
        assert!(rules(&v).contains(&"lint.multi-driven"), "{v:?}");
    }

    #[test]
    fn comb_loop_reports_full_path() {
        let lib = Library::new(Technology::ffet_3p5t());
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("loop");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_instance(&lib, "u1", inv, &[Some(a), Some(b)]);
        nl.add_instance(&lib, "u2", inv, &[Some(b), Some(a)]);
        let v = lint_netlist(&nl, &lib);
        let loops: Vec<_> = v.iter().filter(|x| x.rule == "lint.comb-loop").collect();
        assert_eq!(loops.len(), 1, "{v:?}");
        let msg = &loops[0].message;
        assert!(msg.contains("u1") && msg.contains("u2"), "{msg}");
    }

    #[test]
    fn dff_feedback_is_not_a_loop() {
        let lib = Library::new(Technology::ffet_3p5t());
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let dff = lib
            .id(CellKind::new(CellFunction::Dff, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("toggle");
        let clk = nl.add_net("clk");
        nl.mark_clock(clk);
        let q = nl.add_net("q");
        let qb = nl.add_net("qb");
        nl.add_instance(&lib, "u_inv", inv, &[Some(q), Some(qb)]);
        nl.add_instance(&lib, "u_dff", dff, &[Some(qb), Some(clk), Some(q)]);
        nl.add_port("clk", PortDirection::Input, clk);
        nl.add_port("q", PortDirection::Output, q);
        let v = lint_netlist(&nl, &lib);
        assert!(!rules(&v).contains(&"lint.comb-loop"), "{v:?}");
    }

    #[test]
    fn fanout_limit_warns_but_not_for_clocks() {
        let lib = Library::new(Technology::ffet_3p5t());
        let inv = lib
            .id(CellKind::new(CellFunction::Inv, DriveStrength::D1))
            .unwrap();
        let mut nl = Netlist::new("fan");
        let src = nl.add_net("src");
        nl.add_port("src", PortDirection::Input, src);
        for i in 0..=MAX_FANOUT {
            let o = nl.add_net(format!("o{i}"));
            nl.add_instance(&lib, format!("u{i}"), inv, &[Some(src), Some(o)]);
            nl.add_port(format!("o{i}"), PortDirection::Output, o);
        }
        let v = lint_netlist(&nl, &lib);
        assert!(rules(&v).contains(&"lint.fanout"), "{v:?}");
        nl.mark_clock(src);
        let v = lint_netlist(&nl, &lib);
        assert!(!rules(&v).contains(&"lint.fanout"), "{v:?}");
    }
}
