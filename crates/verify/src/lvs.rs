//! LVS-lite: the merged dual-sided DEF (layout) must match the source
//! netlist (schematic) — every component and connection present exactly
//! once, and nothing else. Power Tap Cells are the only components the
//! layout may add.

use crate::{Severity, Violation};
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_lefdef::Def;
use ffet_netlist::{Netlist, PortDirection};
use ffet_pnr::PnrResult;
use std::collections::{BTreeMap, BTreeSet};

/// Compares the merged DEF against the netlist it implements.
#[must_use]
pub fn compare_def_netlist(
    netlist: &Netlist,
    library: &Library,
    pnr: &PnrResult,
    merged: &Def,
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_components(netlist, library, pnr, merged, &mut out);
    check_nets(netlist, library, merged, &mut out);
    out
}

fn lvs_error(rule: &'static str, subject: String, message: String) -> Violation {
    Violation {
        rule,
        severity: Severity::Error,
        subject,
        location: None,
        message,
    }
}

fn check_components(
    netlist: &Netlist,
    library: &Library,
    pnr: &PnrResult,
    merged: &Def,
    out: &mut Vec<Violation>,
) {
    let tap_macro = library
        .cell_by_kind(CellKind::new(CellFunction::PowerTap, DriveStrength::D1))
        .map_or_else(|| "PWRTAP".to_owned(), |c| c.name.clone());

    // Ordered map: the leftovers loop below reports extra components in
    // name order, never hash order.
    let mut seen: BTreeMap<&str, &str> = BTreeMap::new(); // name -> macro
    for c in &merged.components {
        if seen.insert(&c.name, &c.macro_name).is_some() {
            out.push(lvs_error(
                "lvs.duplicate-component",
                c.name.clone(),
                "component appears more than once in the merged DEF".to_owned(),
            ));
        }
    }

    for inst in netlist.instances() {
        let want = &library.cell(inst.cell).name;
        match seen.remove(inst.name.as_str()) {
            None => out.push(lvs_error(
                "lvs.missing-component",
                inst.name.clone(),
                format!("instance ({want}) is absent from the merged DEF"),
            )),
            Some(got) if got != want => out.push(lvs_error(
                "lvs.macro-mismatch",
                inst.name.clone(),
                format!("DEF macro {got}, netlist cell {want}"),
            )),
            Some(_) => {}
        }
    }

    // What remains must be exactly the powerplan's Power Tap Cells.
    let tap_count = pnr.powerplan.taps.len();
    for (name, macro_name) in seen {
        let is_tap = name
            .strip_prefix("pwrtap_")
            .and_then(|i| i.parse::<usize>().ok())
            .is_some_and(|i| i < tap_count);
        if !is_tap {
            out.push(lvs_error(
                "lvs.extra-component",
                name.to_owned(),
                format!("component ({macro_name}) has no netlist counterpart"),
            ));
        } else if macro_name != tap_macro {
            out.push(lvs_error(
                "lvs.macro-mismatch",
                name.to_owned(),
                format!("DEF macro {macro_name}, expected Power Tap macro {tap_macro}"),
            ));
        }
    }
}

fn check_nets(netlist: &Netlist, library: &Library, merged: &Def, out: &mut Vec<Violation>) {
    // A net reaches the DEF iff Algorithm 1 routes it: it has a source
    // (instance driver or input port) and at least one load (instance
    // sink or output port). Top-level ports never appear as connections.
    let mut port_drivers = vec![0usize; netlist.nets().len()];
    let mut port_loads = vec![0usize; netlist.nets().len()];
    for port in netlist.ports() {
        match port.direction {
            PortDirection::Input => port_drivers[port.net.0 as usize] += 1,
            PortDirection::Output => port_loads[port.net.0 as usize] += 1,
        }
    }

    // Ordered map: the extra-net loop below reports leftovers in name
    // order, never hash order.
    let mut def_nets: BTreeMap<&str, &ffet_lefdef::DefNet> = BTreeMap::new();
    for n in &merged.nets {
        if def_nets.insert(&n.name, n).is_some() {
            out.push(lvs_error(
                "lvs.duplicate-net",
                n.name.clone(),
                "net appears more than once in the merged DEF".to_owned(),
            ));
        }
    }

    for (ni, net) in netlist.nets().iter().enumerate() {
        let has_source = net.driver.is_some() || port_drivers[ni] > 0;
        let has_load = !net.sinks.is_empty() || port_loads[ni] > 0;
        let Some(def_net) = def_nets.remove(net.name.as_str()) else {
            if has_source && has_load {
                out.push(lvs_error(
                    "lvs.missing-net",
                    net.name.clone(),
                    "routable net is absent from the merged DEF".to_owned(),
                ));
            }
            continue;
        };

        let pin_name = |p: ffet_netlist::PinRef| {
            let inst = &netlist.instances()[p.inst.0 as usize];
            let cell = library.cell(inst.cell);
            (inst.name.clone(), cell.pins[p.pin].name.clone())
        };
        let want: BTreeSet<(String, String)> = net
            .driver
            .iter()
            .chain(net.sinks.iter())
            .map(|&p| pin_name(p))
            .collect();
        let got: BTreeSet<(String, String)> = def_net
            .connections
            .iter()
            .map(|c| (c.instance.clone(), c.pin.clone()))
            .collect();
        for (inst, pin) in want.difference(&got) {
            out.push(lvs_error(
                "lvs.missing-connection",
                net.name.clone(),
                format!("DEF net lacks connection {inst}/{pin}"),
            ));
        }
        for (inst, pin) in got.difference(&want) {
            out.push(lvs_error(
                "lvs.extra-connection",
                net.name.clone(),
                format!("DEF net has spurious connection {inst}/{pin}"),
            ));
        }
    }

    for name in def_nets.keys() {
        out.push(lvs_error(
            "lvs.extra-net",
            (*name).to_owned(),
            "DEF net has no netlist counterpart".to_owned(),
        ));
    }
}
