//! Static physical signoff for completed FFET/CFET implementations.
//!
//! The flow of the paper ends with signoff: after routing and DEF merge,
//! the result is checked *statically* — no stage is re-run — against three
//! families of rules:
//!
//! * **netlist lint** ([`lint_netlist`]): undriven and multiply-driven
//!   nets, floating inputs, dangling outputs, fanout limits, and
//!   combinational loops (reported with the full cycle path),
//! * **route & placement DRC** ([`check_routing`], [`check_placement`]):
//!   per-layer direction rules, off-track geometry, GCell capacity
//!   overflow (shorts), open nets per wafer side, layer-range validity
//!   against the active [`RoutingPattern`], die containment, and
//!   placement legality (off-site, off-row, overlaps, Power Tap
//!   blockages, core-boundary containment),
//! * **LVS-lite** ([`compare_def_netlist`]): the merged dual-sided DEF
//!   must contain every netlist component and connection exactly once,
//!   and nothing else (Power Tap cells excepted).
//!
//! Every check emits a uniform [`Violation`]; [`run_signoff`] aggregates
//! them into a [`SignoffReport`]. [`Severity::Error`] marks structural
//! breakage and fails the flow; [`Severity::Warning`] marks
//! congestion/legality overflow — the class of violations the paper's
//! "valid iff total DRV < 10" rule counts.

mod drc;
mod lint;
mod lvs;

pub use drc::{check_placement, check_routing};
pub use lint::{lint_netlist, MAX_FANOUT};
pub use lvs::compare_def_netlist;

use ffet_cells::Library;
use ffet_geom::Point;
use ffet_lefdef::Def;
use ffet_netlist::Netlist;
use ffet_pnr::PnrResult;
use ffet_tech::RoutingPattern;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How bad a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Counts toward the design-rule-violation total (the paper's
    /// validity proxy) but does not structurally invalidate the result.
    Warning,
    /// Structural breakage — opens, shorts against the source netlist,
    /// illegal layers. Fails signoff.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One signoff finding, uniform across all check families.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable rule identifier, e.g. `drc.open` or `lint.undriven`.
    pub rule: &'static str,
    /// Whether this fails signoff or only counts toward the DRV proxy.
    pub severity: Severity,
    /// What the violation is on: a net, instance, component or GCell.
    pub subject: String,
    /// Die location, when the rule is geometric.
    pub location: Option<Point>,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} {}", self.severity, self.rule, self.subject)?;
        if let Some(p) = self.location {
            write!(f, " @({},{})", p.x, p.y)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Aggregated signoff result: every violation plus per-rule summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SignoffReport {
    /// All violations, errors first, then by rule name.
    pub violations: Vec<Violation>,
}

impl SignoffReport {
    /// Builds a report, sorting errors first and then by rule/subject so
    /// output is deterministic.
    #[must_use]
    pub fn from_violations(mut violations: Vec<Violation>) -> SignoffReport {
        violations.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.cmp(b.rule))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        SignoffReport { violations }
    }

    /// Number of [`Severity::Error`] violations.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Number of [`Severity::Warning`] violations.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.violations.len() - self.error_count()
    }

    /// Whether signoff passes (no errors; warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `PASS`/`FAIL` verdict string for experiment tables.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if self.is_clean() {
            "PASS"
        } else {
            "FAIL"
        }
    }

    /// The warning total as the signoff contribution to the paper's DRV
    /// validity proxy (`drv < 10` ⇒ valid run).
    #[must_use]
    pub fn drv_warnings(&self) -> u32 {
        u32::try_from(self.warning_count()).unwrap_or(u32::MAX)
    }

    /// Violation count per `(rule, severity)`, alphabetical by rule.
    #[must_use]
    pub fn rule_counts(&self) -> Vec<(&'static str, Severity, usize)> {
        let mut counts: BTreeMap<(&'static str, Severity), usize> = BTreeMap::new();
        for v in &self.violations {
            *counts.entry((v.rule, v.severity)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|((rule, sev), n)| (rule, sev, n))
            .collect()
    }

    /// Violations for one rule.
    #[must_use]
    pub fn by_rule(&self, rule: &str) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.rule == rule).collect()
    }

    /// Fixed-width per-rule summary table, ending in the verdict line.
    #[must_use]
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<24} {:<8} {:>6}", "rule", "severity", "count");
        for (rule, sev, n) in self.rule_counts() {
            let _ = writeln!(out, "{rule:<24} {sev:<8} {n:>6}");
        }
        let _ = writeln!(
            out,
            "signoff: {} — {} errors, {} warnings",
            self.verdict(),
            self.error_count(),
            self.warning_count()
        );
        out
    }

    /// Full violation list as CSV (`rule,severity,subject,x,y,message`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rule,severity,subject,x,y,message\n");
        for v in &self.violations {
            let (x, y) = v.location.map_or((String::new(), String::new()), |p| {
                (p.x.to_string(), p.y.to_string())
            });
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                v.rule,
                v.severity,
                csv_escape(&v.subject),
                x,
                y,
                csv_escape(&v.message)
            );
        }
        out
    }
}

/// Every error-severity rule the signoff can emit, one per failure mode.
///
/// This is the coverage contract of the fault-injection matrix in
/// `ffet-core`: each rule here must be provably triggerable by at least one
/// injected fault. Warning-severity rules (congestion, legality overflow,
/// fanout…) feed the DRV validity proxy instead and are not listed.
pub const ERROR_RULES: &[&str] = &[
    "drc.decompose",
    "drc.extra-routing",
    "drc.layer-range",
    "drc.non-manhattan",
    "drc.off-die",
    "drc.open",
    "drc.wrong-direction",
    "lint.comb-loop",
    "lint.floating-input",
    "lint.multi-driven",
    "lint.undriven",
    "lvs.duplicate-component",
    "lvs.duplicate-net",
    "lvs.extra-component",
    "lvs.extra-connection",
    "lvs.extra-net",
    "lvs.macro-mismatch",
    "lvs.missing-component",
    "lvs.missing-connection",
    "lvs.missing-net",
    "place.count",
];

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Runs the full static signoff over a completed implementation.
///
/// `netlist` must be the final (post-synthesis, post-CTS) netlist the
/// P&R result was produced from, and `merged` the merged dual-sided DEF.
/// Nothing is re-run: every check works from the artifacts alone.
#[must_use]
pub fn run_signoff(
    netlist: &Netlist,
    library: &Library,
    pattern: RoutingPattern,
    pnr: &PnrResult,
    merged: &Def,
) -> SignoffReport {
    let mut violations = lint_netlist(netlist, library);
    violations.extend(check_routing(netlist, library, pattern, pnr));
    violations.extend(check_placement(netlist, library, pnr));
    violations.extend(compare_def_netlist(netlist, library, pnr, merged));
    let report = SignoffReport::from_violations(violations);
    for (rule, _, count) in report.rule_counts() {
        ffet_obs::counter_add(&format!("signoff.{rule}"), count as i64);
    }
    ffet_obs::gauge_set("signoff.errors", report.error_count() as f64);
    ffet_obs::gauge_set("signoff.warnings", report.warning_count() as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, severity: Severity) -> Violation {
        Violation {
            rule,
            severity,
            subject: "x".to_owned(),
            location: None,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn report_sorts_errors_first_and_counts() {
        let r = SignoffReport::from_violations(vec![
            violation("drc.gcell-capacity", Severity::Warning),
            violation("drc.open", Severity::Error),
            violation("drc.gcell-capacity", Severity::Warning),
        ]);
        assert_eq!(r.violations[0].rule, "drc.open");
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 2);
        assert_eq!(r.drv_warnings(), 2);
        assert!(!r.is_clean());
        assert_eq!(r.verdict(), "FAIL");
        assert_eq!(
            r.rule_counts(),
            vec![
                ("drc.gcell-capacity", Severity::Warning, 2),
                ("drc.open", Severity::Error, 1),
            ]
        );
    }

    #[test]
    fn error_rules_are_sorted_and_unique() {
        let mut sorted = ERROR_RULES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, ERROR_RULES, "ERROR_RULES must be sorted and unique");
    }

    #[test]
    fn empty_report_passes() {
        let r = SignoffReport::default();
        assert!(r.is_clean());
        assert_eq!(r.verdict(), "PASS");
        assert!(r.text_table().contains("PASS"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut v = violation("lint.undriven", Severity::Error);
        v.message = "a, \"b\"".to_owned();
        let r = SignoffReport::from_violations(vec![v]);
        assert!(r.to_csv().contains("\"a, \"\"b\"\"\""));
    }

    #[test]
    fn violation_display_includes_location() {
        let mut v = violation("drc.off-die", Severity::Error);
        v.location = Some(Point::new(3, 4));
        assert_eq!(v.to_string(), "[error] drc.off-die x @(3,4): m");
    }
}
