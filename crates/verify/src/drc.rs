//! Route and placement DRC: geometric checks over a completed P&R
//! result, recomputed from the artifacts alone (no router state).

use crate::{Severity, Violation};
use ffet_cells::{Library, PinSides};
use ffet_geom::{Axis, Point, Rect};
use ffet_geom::{FxHashMap, FxHashSet};
use ffet_lefdef::{DefVia, DefWire};
use ffet_netlist::{InstId, Netlist, PinRef};
use ffet_pnr::{
    calib, check_legality, decompose_nets, pin_position, pin_sides, GCell, LegalityViolation,
    PnrResult, RoutingGrid, SideNet,
};
use ffet_tech::{RoutingPattern, Side, Technology};

/// Per-side routing context derived from the pattern and layer stack.
struct SideRules {
    max_index: u8,
    has_h: bool,
    has_v: bool,
}

impl SideRules {
    fn new(tech: &Technology, pattern: RoutingPattern, side: Side) -> SideRules {
        let max_index = match side {
            Side::Front => pattern.front_layers(),
            Side::Back => pattern.back_layers(),
        };
        let layers = tech.stack().routing_layers(side, max_index);
        SideRules {
            max_index,
            has_h: layers.iter().any(|l| l.id.axis() == Axis::Horizontal),
            has_v: layers.iter().any(|l| l.id.axis() == Axis::Vertical),
        }
    }

    fn has_axis(&self, axis: Axis) -> bool {
        match axis {
            Axis::Horizontal => self.has_h,
            Axis::Vertical => self.has_v,
        }
    }
}

/// Checks the routed geometry of a P&R result: layer legality, preferred
/// directions, track discipline, die containment, GCell capacity
/// (shorts), and per-side open nets (the routed topology must connect
/// every decomposed pin, front and back independently).
#[must_use]
pub fn check_routing(
    netlist: &Netlist,
    library: &Library,
    pattern: RoutingPattern,
    pnr: &PnrResult,
) -> Vec<Violation> {
    let tech = library.tech();
    let die = pnr.floorplan.die;
    let mut out = Vec::new();

    // The same Algorithm 1 decomposition the router consumed: it is pure
    // analysis over netlist + placement, so recomputing it here gives the
    // reference topology without re-running any flow stage.
    let side_nets = match decompose_nets(netlist, library, &pnr.placement, pattern) {
        Ok(s) => s,
        Err(e) => {
            out.push(Violation {
                rule: "drc.decompose",
                severity: Severity::Error,
                subject: netlist.name().to_owned(),
                location: None,
                message: format!("net decomposition failed: {e}"),
            });
            return out;
        }
    };

    let rules = [
        SideRules::new(tech, pattern, Side::Front),
        SideRules::new(tech, pattern, Side::Back),
    ];
    let side_rules = |side: Side| match side {
        Side::Front => &rules[0],
        Side::Back => &rules[1],
    };

    // Track-discipline anchors: routed geometry may only sit on GCell
    // center lines or on actual pin coordinates (wire ends and bends).
    let grid = RoutingGrid::new(tech, die, pattern);
    // The grid is quantized upward from the die, so legal GCell centers in
    // the last row/column may sit past the die edge: containment is
    // checked against the grid extent, not the raw die.
    let bounds = die.union(&Rect::new(
        die.lo.x,
        die.lo.y,
        grid.cols as i64 * grid.gcell_w,
        grid.rows as i64 * grid.gcell_h,
    ));
    let mut on_track_x: FxHashSet<i64> = (0..grid.cols)
        .map(|gx| gx as i64 * grid.gcell_w + grid.gcell_w / 2)
        .collect();
    let mut on_track_y: FxHashSet<i64> = (0..grid.rows)
        .map(|gy| gy as i64 * grid.gcell_h + grid.gcell_h / 2)
        .collect();
    for sn in &side_nets {
        for p in &sn.pins {
            on_track_x.insert(p.x);
            on_track_y.insert(p.y);
        }
    }

    // Independent congestion model for the capacity (short) check,
    // seeded exactly as the router's grid was.
    let mut demand = RoutingGrid::new(tech, die, pattern);
    seed_pin_demand(netlist, library, pnr, &mut demand, pattern);

    let mut routed_keys: FxHashSet<(u32, Side)> = FxHashSet::default();
    for routed in &pnr.routing.nets {
        let name = netlist.net(routed.net).name.clone();
        let side = routed.side;
        let sr = side_rules(side);
        routed_keys.insert((routed.net.0, side));

        for wire in &routed.wires {
            check_wire(
                &mut out,
                &name,
                side,
                sr,
                tech,
                bounds,
                &on_track_x,
                &on_track_y,
                wire,
            );
            add_wire_demand(&mut demand, side, wire);
        }
        for via in &routed.vias {
            check_via(&mut out, &name, side, sr, bounds, via);
        }
    }

    // Open nets: every decomposed side-net with two or more pins must be
    // connected by the routed geometry of its (net, side).
    let routed_by_key: FxHashMap<(u32, Side), usize> = pnr
        .routing
        .nets
        .iter()
        .enumerate()
        .map(|(i, r)| ((r.net.0, r.side), i))
        .collect();
    for sn in &side_nets {
        let name = &netlist.net(sn.net).name;
        let wires: &[DefWire] = routed_by_key
            .get(&(sn.net.0, sn.side))
            .map_or(&[], |&i| &pnr.routing.nets[i].wires);
        if let Some(message) = open_net_message(sn, wires) {
            out.push(Violation {
                rule: "drc.open",
                severity: Severity::Error,
                subject: format!("{name}/{}", sn.side),
                location: Some(sn.pins[0]),
                message,
            });
        }
    }
    // Routed geometry with no decomposed counterpart is extra topology.
    for routed in &pnr.routing.nets {
        let known = side_nets
            .iter()
            .any(|sn| sn.net == routed.net && sn.side == routed.side);
        if !known {
            out.push(Violation {
                rule: "drc.extra-routing",
                severity: Severity::Error,
                subject: format!("{}/{}", netlist.net(routed.net).name, routed.side),
                location: None,
                message: "routed geometry for a net the decomposition does not produce".to_owned(),
            });
        }
    }

    // GCell capacity: demand above the Table II track capacity is a short
    // the detailed router could not have fixed (the DRV proxy).
    for side in Side::BOTH {
        for gy in 0..demand.rows {
            for gx in 0..demand.cols {
                let g = GCell {
                    x: gx as u16,
                    y: gy as u16,
                };
                if demand.is_overflowed(side, g) {
                    out.push(Violation {
                        rule: "drc.gcell-capacity",
                        severity: Severity::Warning,
                        subject: format!("gcell({gx},{gy})/{side}"),
                        location: Some(demand.center(g)),
                        message: "routing demand exceeds track capacity".to_owned(),
                    });
                }
            }
        }
    }

    out
}

#[allow(clippy::too_many_arguments)]
fn check_wire(
    out: &mut Vec<Violation>,
    net: &str,
    side: Side,
    rules: &SideRules,
    tech: &Technology,
    bounds: Rect,
    on_track_x: &FxHashSet<i64>,
    on_track_y: &FxHashSet<i64>,
    wire: &DefWire,
) {
    let subject = format!("{net}/{}", wire.layer);
    if wire.from.x != wire.to.x && wire.from.y != wire.to.y {
        out.push(Violation {
            rule: "drc.non-manhattan",
            severity: Severity::Error,
            subject,
            location: Some(wire.from),
            message: format!(
                "wire ({},{})→({},{}) is not axis-aligned",
                wire.from.x, wire.from.y, wire.to.x, wire.to.y
            ),
        });
        return;
    }
    for p in [wire.from, wire.to] {
        if !bounds.contains(p) {
            out.push(Violation {
                rule: "drc.off-die",
                severity: Severity::Error,
                subject: subject.clone(),
                location: Some(p),
                message: "wire endpoint outside the routable area".to_owned(),
            });
        }
    }

    // Layer-range validity against the active routing pattern.
    let id = wire.layer;
    if id.side != side {
        out.push(Violation {
            rule: "drc.layer-range",
            severity: Severity::Error,
            subject: subject.clone(),
            location: Some(wire.from),
            message: format!("{side}side net routed on {id}"),
        });
        return;
    }
    let layer = tech.stack().layer(id);
    let routable = layer.is_some_and(ffet_tech::Layer::is_signal_routable);
    if id.index == 0 || id.index > rules.max_index || !routable {
        out.push(Violation {
            rule: "drc.layer-range",
            severity: Severity::Error,
            subject: subject.clone(),
            location: Some(wire.from),
            message: format!(
                "{id} is outside the routable range (max index {})",
                rules.max_index
            ),
        });
        return;
    }

    if wire.from == wire.to {
        return; // degenerate stub: no direction or track to check
    }
    let axis = if wire.from.y == wire.to.y {
        Axis::Horizontal
    } else {
        Axis::Vertical
    };
    if axis != id.axis() {
        // Wrong-way routing is an error only when the side actually has a
        // layer of the needed axis; otherwise the router legitimately fell
        // back (e.g. a one-layer backside pattern has a single direction).
        let severity = if rules.has_axis(axis) {
            Severity::Error
        } else {
            Severity::Warning
        };
        out.push(Violation {
            rule: "drc.wrong-direction",
            severity,
            subject: subject.clone(),
            location: Some(wire.from),
            message: format!("{axis} wire on {id} (preferred {})", id.axis()),
        });
    }
    let on_track = match axis {
        Axis::Horizontal => on_track_y.contains(&wire.from.y),
        Axis::Vertical => on_track_x.contains(&wire.from.x),
    };
    if !on_track {
        out.push(Violation {
            rule: "drc.off-track",
            severity: Severity::Warning,
            subject,
            location: Some(wire.from),
            message: "wire is on neither a GCell center line nor a pin track".to_owned(),
        });
    }
}

fn check_via(
    out: &mut Vec<Violation>,
    net: &str,
    side: Side,
    rules: &SideRules,
    bounds: Rect,
    via: &DefVia,
) {
    let subject = format!("{net}/{}-{}", via.from_layer, via.to_layer);
    if !bounds.contains(via.at) {
        out.push(Violation {
            rule: "drc.off-die",
            severity: Severity::Error,
            subject: subject.clone(),
            location: Some(via.at),
            message: "via outside the routable area".to_owned(),
        });
    }
    for id in [via.from_layer, via.to_layer] {
        // Via stacks may start at the intra-cell M0 (pin access), so
        // index 0 is legal here, unlike for wires.
        if id.side != side || id.index > rules.max_index {
            out.push(Violation {
                rule: "drc.layer-range",
                severity: Severity::Error,
                subject: subject.clone(),
                location: Some(via.at),
                message: format!(
                    "via touches {id}, outside the {side}side routable range (max index {})",
                    rules.max_index
                ),
            });
        }
    }
}

/// Replicates the router's pin-access and blockage seeding using the same
/// calibration constants, so the capacity check sees the grid the router
/// saw before committing wires.
fn seed_pin_demand(
    netlist: &Netlist,
    library: &Library,
    pnr: &PnrResult,
    grid: &mut RoutingGrid,
    pattern: RoutingPattern,
) {
    let tech = library.tech();
    let side_has_layers = |side: Side| match side {
        Side::Front => pattern.front_layers() > 0,
        Side::Back => pattern.back_layers() > 0,
    };
    if tech.kind() == ffet_tech::TechKind::Cfet4t {
        for (i, inst) in netlist.instances().iter().enumerate() {
            let cell = library.cell(inst.cell);
            let w = cell.width_cpp * tech.cpp();
            let at = pnr.placement.center(i, w, tech.cell_height());
            grid.add_blockage(Side::Front, at, calib::CFET_SUPERVIA_BLOCKAGE);
        }
    }
    for (i, inst) in netlist.instances().iter().enumerate() {
        for (pi, conn) in inst.conns.iter().enumerate() {
            if conn.is_none() {
                continue;
            }
            let pin = PinRef::new(InstId(i as u32), pi);
            let pos = pin_position(netlist, library, &pnr.placement, pin);
            match pin_sides(netlist, library, pin) {
                PinSides::One(side) => {
                    if side_has_layers(side) {
                        grid.add_pin(side, pos);
                    }
                }
                PinSides::Both => {
                    for side in Side::BOTH {
                        if side_has_layers(side) {
                            grid.add_pin(side, pos);
                        }
                    }
                }
            }
        }
    }
}

/// Adds one wire's demand to the congestion model, stepping GCell by
/// GCell exactly as the router commits paths.
fn add_wire_demand(grid: &mut RoutingGrid, side: Side, wire: &DefWire) {
    let share = 0.5 * calib::STEINER_SHARING;
    let from = grid.gcell_at(wire.from);
    let to = grid.gcell_at(wire.to);
    let axis = if from.y == to.y {
        Axis::Horizontal
    } else {
        Axis::Vertical
    };
    let mut g = from;
    while g != to {
        let next = GCell {
            x: step_toward(g.x, to.x),
            y: step_toward(g.y, to.y),
        };
        grid.add_demand(side, g, axis, share);
        grid.add_demand(side, next, axis, share);
        g = next;
    }
}

fn step_toward(from: u16, to: u16) -> u16 {
    match from.cmp(&to) {
        std::cmp::Ordering::Less => from + 1,
        std::cmp::Ordering::Equal => from,
        std::cmp::Ordering::Greater => from - 1,
    }
}

/// Checks one decomposed side-net against its routed wires; returns a
/// description of the open if the geometry does not connect all pins.
///
/// Connectivity is 2D per side: any point lying *on* a wire segment joins
/// that wire's component (bends and merged collinear trunks put pins and
/// T-junctions mid-segment, not only at endpoints). Via stacks never span
/// nets, so layers can be ignored.
fn open_net_message(sn: &SideNet, wires: &[DefWire]) -> Option<String> {
    let distinct_pins: FxHashSet<Point> = sn.pins.iter().copied().collect();
    if distinct_pins.len() < 2 {
        return None; // a lone (or fully coincident) pin set needs no wire
    }
    if wires.is_empty() {
        return Some(format!("{} pins but no routed wires", sn.pins.len()));
    }

    let mut ids: FxHashMap<Point, usize> = FxHashMap::default();
    let mut parent: Vec<usize> = Vec::new();
    for p in wires
        .iter()
        .flat_map(|w| [w.from, w.to])
        .chain(sn.pins.iter().copied())
    {
        ids.entry(p).or_insert_with(|| {
            parent.push(parent.len());
            parent.len() - 1
        });
    }
    // ffet-analyze: allow(D002) -- union-find reduction: every on-segment
    // point is unioned into the same component regardless of visit order,
    // so the key order cannot reach the verdict (or any artifact).
    let all_points: Vec<Point> = ids.keys().copied().collect();
    for w in wires {
        let a = ids[&w.from];
        for &p in &all_points {
            if on_segment(p, w) {
                union(&mut parent, a, ids[&p]);
            }
        }
    }

    let source = find(&mut parent, ids[&sn.pins[0]]);
    let unreached = sn
        .pins
        .iter()
        .filter(|p| find(&mut parent, ids[p]) != source)
        .count();
    (unreached > 0).then(|| {
        format!(
            "{unreached} of {} pins not connected to the source",
            sn.pins.len()
        )
    })
}

fn on_segment(p: Point, w: &DefWire) -> bool {
    let (lo_x, hi_x) = (w.from.x.min(w.to.x), w.from.x.max(w.to.x));
    let (lo_y, hi_y) = (w.from.y.min(w.to.y), w.from.y.max(w.to.y));
    (lo_x..=hi_x).contains(&p.x) && (lo_y..=hi_y).contains(&p.y)
}

fn find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        parent[ra] = rb;
    }
}

/// Checks placement legality statically: site/row alignment, overlaps,
/// Power Tap blockages (all via the shared legalizer checker) plus
/// core-boundary containment.
#[must_use]
pub fn check_placement(netlist: &Netlist, library: &Library, pnr: &PnrResult) -> Vec<Violation> {
    let mut out = Vec::new();
    let tech = library.tech();

    if pnr.placement.origins.len() != netlist.instances().len() {
        out.push(Violation {
            rule: "place.count",
            severity: Severity::Error,
            subject: netlist.name().to_owned(),
            location: None,
            message: format!(
                "placement has {} origins for {} instances",
                pnr.placement.origins.len(),
                netlist.instances().len()
            ),
        });
        return out;
    }

    for v in check_legality(
        netlist,
        library,
        &pnr.floorplan,
        &pnr.powerplan,
        &pnr.placement,
    ) {
        let (rule, subject, message) = match v {
            LegalityViolation::OffGrid { instance } => (
                "place.off-site",
                instance,
                "origin is not on a placement site".to_owned(),
            ),
            LegalityViolation::OutOfRow { instance } => (
                "place.off-row",
                instance,
                "cell extends outside its row".to_owned(),
            ),
            LegalityViolation::Overlap { a, b } => {
                ("place.overlap", a, format!("overlaps instance {b}"))
            }
            LegalityViolation::TapOverlap { instance } => (
                "place.tap-overlap",
                instance,
                "overlaps a Power Tap Cell blockage".to_owned(),
            ),
        };
        out.push(Violation {
            rule,
            severity: Severity::Warning,
            subject,
            location: None,
            message,
        });
    }

    for (i, inst) in netlist.instances().iter().enumerate() {
        let cell = library.cell(inst.cell);
        let origin = pnr.placement.origins[i];
        let rect = Rect::from_origin_size(origin, cell.width_cpp * tech.cpp(), tech.cell_height());
        if !pnr.floorplan.core.contains_rect(&rect) {
            out.push(Violation {
                rule: "place.boundary",
                severity: Severity::Warning,
                subject: inst.name.clone(),
                location: Some(origin),
                message: "cell is not fully inside the core area".to_owned(),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_geom::Point;
    use ffet_netlist::NetId;
    use ffet_tech::LayerId;

    fn wire(layer: LayerId, from: (i64, i64), to: (i64, i64)) -> DefWire {
        DefWire {
            layer,
            from: Point::new(from.0, from.1),
            to: Point::new(to.0, to.1),
        }
    }

    #[test]
    fn open_check_accepts_t_junctions_and_through_pins() {
        let fm2 = LayerId::new(Side::Front, 2);
        let fm1 = LayerId::new(Side::Front, 1);
        // Trunk passes *through* pin B; branch T-joins mid-trunk to pin C.
        let sn = SideNet {
            net: NetId(0),
            side: Side::Front,
            pins: vec![Point::new(0, 0), Point::new(50, 0), Point::new(70, 40)],
            is_clock: false,
        };
        let wires = vec![wire(fm2, (0, 0), (100, 0)), wire(fm1, (70, 0), (70, 40))];
        assert_eq!(open_net_message(&sn, &wires), None);
    }

    #[test]
    fn open_check_flags_disconnected_pin() {
        let fm2 = LayerId::new(Side::Front, 2);
        let sn = SideNet {
            net: NetId(0),
            side: Side::Front,
            pins: vec![Point::new(0, 0), Point::new(100, 0), Point::new(500, 500)],
            is_clock: false,
        };
        let wires = vec![wire(fm2, (0, 0), (100, 0))];
        let msg = open_net_message(&sn, &wires).expect("pin (500,500) is open");
        assert!(msg.contains("1 of 3"), "{msg}");
    }

    #[test]
    fn open_check_flags_unrouted_multi_pin_net() {
        let sn = SideNet {
            net: NetId(0),
            side: Side::Back,
            pins: vec![Point::new(0, 0), Point::new(9, 9)],
            is_clock: false,
        };
        assert!(open_net_message(&sn, &[]).is_some());
        // A single-pin side net needs no geometry.
        let lone = SideNet {
            net: NetId(0),
            side: Side::Back,
            pins: vec![Point::new(0, 0)],
            is_clock: false,
        };
        assert_eq!(open_net_message(&lone, &[]), None);
    }
}
