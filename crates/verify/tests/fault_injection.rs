//! Signoff must pass a clean implementation and catch seeded defects:
//! deleted route segments (opens), duplicated track demand (capacity
//! shorts), illegal layers, LVS edits and placement corruption.

use ffet_cells::Library;
use ffet_geom::Point;
use ffet_lefdef::{merge_defs, Def, DefWire};
use ffet_netlist::{Netlist, NetlistBuilder};
use ffet_pnr::{run_pnr, PnrConfig, PnrResult};
use ffet_tech::{LayerId, RoutingPattern, Side, TechKind, Technology};
use ffet_verify::{run_signoff, Severity};

struct Impl {
    netlist: Netlist,
    library: Library,
    pattern: RoutingPattern,
    pnr: PnrResult,
    merged: Def,
}

/// Places and routes a small mixed-gate block end to end.
fn build(kind: TechKind, pattern: RoutingPattern, back_pin_ratio: f64) -> Impl {
    let tech = match kind {
        TechKind::Ffet3p5t => Technology::ffet_3p5t(),
        TechKind::Cfet4t => Technology::cfet_4t(),
    };
    let mut library = Library::new(tech);
    if back_pin_ratio > 0.0 {
        library
            .redistribute_input_pins(back_pin_ratio, 42)
            .expect("ratio valid for tech");
    }
    let mut b = NetlistBuilder::new(&library, "fault_block");
    let x = b.input("x");
    let y = b.input("y");
    let mut v = x;
    let mut w = y;
    for i in 0..48 {
        let t = match i % 4 {
            0 => b.nand2(v, w),
            1 => b.nor2(v, w),
            2 => b.xor2(v, w),
            _ => b.and2(v, w),
        };
        w = v;
        v = t;
    }
    b.output("z", v);
    let mut netlist = b.finish();

    let config = PnrConfig {
        utilization: 0.6,
        aspect_ratio: 1.0,
        pattern,
        seed: 42,
        bridging_min_nm: None,
        extra_reroute_rounds: 0,
        route_jobs: 1,
        route_panic: false,
        cancel: ffet_pnr::CancelToken::none(),
    };
    let pnr = run_pnr(&mut netlist, &library, &config).expect("small block implements");
    let merged = merge_defs(&pnr.front_def, &pnr.back_def).expect("sides merge");
    Impl {
        netlist,
        library,
        pattern,
        pnr,
        merged,
    }
}

fn ffet() -> Impl {
    build(
        TechKind::Ffet3p5t,
        RoutingPattern::new(6, 6).expect("static"),
        0.5,
    )
}

fn signoff(i: &Impl) -> ffet_verify::SignoffReport {
    run_signoff(&i.netlist, &i.library, i.pattern, &i.pnr, &i.merged)
}

#[test]
fn clean_ffet_dual_sided_run_has_zero_errors() {
    let i = ffet();
    let report = signoff(&i);
    assert_eq!(
        report.error_count(),
        0,
        "unexpected errors:\n{}",
        report.text_table()
    );
    assert_eq!(report.verdict(), "PASS");
    assert!(report.text_table().contains("PASS"));
}

#[test]
fn clean_cfet_run_has_zero_errors() {
    let i = build(
        TechKind::Cfet4t,
        RoutingPattern::new(12, 0).expect("static"),
        0.0,
    );
    let report = signoff(&i);
    assert_eq!(
        report.error_count(),
        0,
        "unexpected errors:\n{}",
        report.text_table()
    );
}

#[test]
fn deleted_route_segments_are_reported_open() {
    let mut i = ffet();
    let victim = i
        .pnr
        .routing
        .nets
        .iter()
        .position(|r| !r.wires.is_empty())
        .expect("some net has wires");
    i.pnr.routing.nets[victim].wires.clear();
    i.pnr.routing.nets[victim].vias.clear();
    let report = signoff(&i);
    let opens = report.by_rule("drc.open");
    assert!(!opens.is_empty(), "{}", report.text_table());
    assert!(opens.iter().all(|v| v.severity == Severity::Error));
}

#[test]
fn duplicated_track_demand_is_a_capacity_short() {
    let mut i = ffet();
    // Claim the same tracks over and over: a full-width FM2 trunk through
    // the middle of the die, repeated far past the layer capacity.
    let die = i.pnr.floorplan.die;
    let trunk = DefWire {
        layer: LayerId::new(Side::Front, 2),
        from: Point::new(die.lo.x, die.center().y),
        to: Point::new(die.hi.x - 1, die.center().y),
    };
    let victim = i
        .pnr
        .routing
        .nets
        .iter()
        .position(|r| r.side == Side::Front)
        .expect("a frontside net exists");
    for _ in 0..4000 {
        i.pnr.routing.nets[victim].wires.push(trunk);
    }
    let report = signoff(&i);
    assert!(
        !report.by_rule("drc.gcell-capacity").is_empty(),
        "{}",
        report.text_table()
    );
}

#[test]
fn illegal_layer_and_wrong_direction_are_errors() {
    let mut i = ffet();
    let die = i.pnr.floorplan.die;
    let victim = i
        .pnr
        .routing
        .nets
        .iter()
        .position(|r| r.side == Side::Front)
        .expect("a frontside net exists");
    // FM7 is outside the FM6BM6 pattern.
    i.pnr.routing.nets[victim].wires.push(DefWire {
        layer: LayerId::new(Side::Front, 7),
        from: Point::new(die.lo.x, die.lo.y),
        to: Point::new(die.lo.x + 100, die.lo.y),
    });
    // A horizontal run on the vertical FM1, while FM2 (horizontal) exists.
    i.pnr.routing.nets[victim].wires.push(DefWire {
        layer: LayerId::new(Side::Front, 1),
        from: Point::new(die.lo.x, die.lo.y),
        to: Point::new(die.lo.x + 100, die.lo.y),
    });
    let report = signoff(&i);
    assert!(
        !report.by_rule("drc.layer-range").is_empty(),
        "{}",
        report.text_table()
    );
    let wrong: Vec<_> = report.by_rule("drc.wrong-direction");
    assert!(
        wrong.iter().any(|v| v.severity == Severity::Error),
        "{}",
        report.text_table()
    );
}

#[test]
fn lvs_catches_component_and_connection_edits() {
    let mut i = ffet();
    // Drop one real component, add a bogus one, and strip a connection.
    let dropped = i
        .merged
        .components
        .iter()
        .position(|c| !c.name.starts_with("pwrtap_"))
        .expect("instances exist");
    let mut bogus = i.merged.components[dropped].clone();
    i.merged.components.remove(dropped);
    bogus.name = "u_phantom".to_owned();
    i.merged.components.push(bogus);
    let edited_net = i
        .merged
        .nets
        .iter()
        .position(|n| n.connections.len() >= 2)
        .expect("a multi-pin net exists");
    i.merged.nets[edited_net].connections.pop();

    let report = signoff(&i);
    for rule in [
        "lvs.missing-component",
        "lvs.extra-component",
        "lvs.missing-connection",
    ] {
        assert!(
            !report.by_rule(rule).is_empty(),
            "{rule}:\n{}",
            report.text_table()
        );
    }
    assert_eq!(report.verdict(), "FAIL");
}

#[test]
fn corrupted_placement_is_flagged() {
    let mut i = ffet();
    i.pnr.placement.origins[0].y += 7; // off any row
    let report = signoff(&i);
    assert!(
        !report.by_rule("place.off-site").is_empty(),
        "{}",
        report.text_table()
    );
}

#[test]
fn disconnecting_a_pin_is_a_lint_error() {
    let mut i = ffet();
    let victim = i
        .netlist
        .instances()
        .iter()
        .position(|inst| inst.conns.iter().flatten().count() >= 2)
        .expect("a connected instance exists");
    let inst_id = ffet_netlist::InstId(victim as u32);
    let pin = i
        .netlist
        .instance(inst_id)
        .conns
        .iter()
        .position(Option::is_some)
        .expect("pin");
    let net = i.netlist.instance(inst_id).conns[pin].expect("connected");
    // Detach the pin from its net on the netlist side only.
    let inst = i.netlist.instance_mut(inst_id);
    inst.conns[pin] = None;
    let net = i.netlist.net_mut(net);
    net.sinks.retain(|s| !(s.inst == inst_id && s.pin == pin));
    if net
        .driver
        .is_some_and(|d| d.inst == inst_id && d.pin == pin)
    {
        net.driver = None;
    }
    let report = signoff(&i);
    assert!(
        report
            .violations
            .iter()
            .any(|v| { v.rule == "lint.floating-input" || v.rule == "lint.unconnected-output" }),
        "{}",
        report.text_table()
    );
}
