//! Property tests of the global router's public invariants.

use ffet_geom::Point;
use ffet_netlist::NetId;
use ffet_pnr::{route_nets, RoutingGrid, SideNet};
use ffet_tech::{RoutingPattern, Side, Technology};
use proptest::prelude::*;

fn arb_side_net(idx: u32, die: i64) -> impl Strategy<Value = SideNet> {
    let point = move || (100..die - 100, 100..die - 100).prop_map(|(x, y)| Point::new(x, y));
    (
        proptest::collection::vec(point(), 2..6),
        proptest::bool::ANY,
    )
        .prop_map(move |(pins, back)| SideNet {
            net: NetId(idx),
            side: if back { Side::Back } else { Side::Front },
            pins,
            is_clock: false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every net gets connected geometry at least as long as its MST lower
    /// bound, on its own side only, and routing is deterministic.
    #[test]
    fn routed_geometry_is_sound(seed_nets in proptest::collection::vec(proptest::bits::u8::ANY, 4..12)) {
        let die = 30_000i64;
        let tech = Technology::ffet_3p5t();
        let pattern = RoutingPattern::new(6, 6).expect("legal");

        // Deterministic pseudo-random pins derived from the seed bytes.
        let side_nets: Vec<SideNet> = seed_nets
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let k = 2 + (b % 3) as usize;
                let pins: Vec<Point> = (0..k)
                    .map(|j| {
                        let h = (b as i64 * 2654435761 + i as i64 * 40503 + j as i64 * 9176) as i64;
                        Point::new(
                            500 + h.rem_euclid(die - 1_000),
                            500 + (h / 7).rem_euclid(die - 1_000),
                        )
                    })
                    .collect();
                SideNet {
                    net: NetId(i as u32),
                    side: if b & 1 == 0 { Side::Front } else { Side::Back },
                    pins,
                    is_clock: false,
                }
            })
            .collect();

        let mut grid = RoutingGrid::new(&tech, ffet_geom::Rect::new(0, 0, die, die), pattern);
        let r1 = route_nets(&tech, &mut grid, &side_nets, pattern);
        let mut grid2 = RoutingGrid::new(&tech, ffet_geom::Rect::new(0, 0, die, die), pattern);
        let r2 = route_nets(&tech, &mut grid2, &side_nets, pattern);
        // Determinism.
        prop_assert_eq!(r1.wirelength_nm, r2.wirelength_nm);
        prop_assert_eq!(r1.drv_count, r2.drv_count);

        for (sn, routed) in side_nets.iter().zip(&r1.nets) {
            // MST lower bound: wirelength at least the span of the pins.
            let bb = ffet_geom::Rect::bounding(sn.pins.iter().copied()).expect("pins");
            let wl: i64 = routed.wires.iter().map(|w| w.length()).sum();
            prop_assert!(
                wl >= bb.half_perimeter() / 2,
                "net wl {} below half the bbox {}",
                wl,
                bb.half_perimeter()
            );
            // Geometry stays on the declared side.
            prop_assert!(routed.wires.iter().all(|w| w.layer.side == sn.side));
            prop_assert!(routed
                .vias
                .iter()
                .all(|v| v.from_layer.side == sn.side && v.to_layer.side == sn.side));
        }
    }
}

/// Arbitrary-strategy version kept exercised (documents the generator).
#[test]
fn arb_side_net_generates() {
    use proptest::strategy::ValueTree;
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strategy = arb_side_net(0, 10_000);
    for _ in 0..8 {
        let net = strategy.new_tree(&mut runner).unwrap().current();
        assert!(net.pins.len() >= 2);
    }
}
