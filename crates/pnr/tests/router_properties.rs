//! Property tests of the global router's public invariants, driven by the
//! workspace's deterministic PRNG.

use ffet_geom::{Point, Rng64};
use ffet_netlist::NetId;
use ffet_pnr::{route_nets, RoutingGrid, SideNet};
use ffet_tech::{RoutingPattern, Side, Technology};

fn random_side_net(rng: &mut Rng64, idx: u32, die: i64) -> SideNet {
    let k = rng.range_usize(2, 6);
    let pins: Vec<Point> = (0..k)
        .map(|_| Point::new(rng.range_i64(100, die - 100), rng.range_i64(100, die - 100)))
        .collect();
    SideNet {
        net: NetId(idx),
        side: if rng.next_u64() & 1 == 0 {
            Side::Front
        } else {
            Side::Back
        },
        pins,
        is_clock: false,
    }
}

/// Every net gets connected geometry at least as long as its MST lower
/// bound, on its own side only, and routing is deterministic.
#[test]
fn routed_geometry_is_sound() {
    let die = 30_000i64;
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(6, 6).expect("legal");
    let mut rng = Rng64::new(0x5027e);

    for _case in 0..12 {
        let n_nets = rng.range_usize(4, 12);
        let side_nets: Vec<SideNet> = (0..n_nets)
            .map(|i| random_side_net(&mut rng, i as u32, die))
            .collect();

        let mut grid = RoutingGrid::new(&tech, ffet_geom::Rect::new(0, 0, die, die), pattern);
        let r1 = route_nets(&tech, &mut grid, &side_nets, pattern);
        let mut grid2 = RoutingGrid::new(&tech, ffet_geom::Rect::new(0, 0, die, die), pattern);
        let r2 = route_nets(&tech, &mut grid2, &side_nets, pattern);
        // Determinism.
        assert_eq!(r1.wirelength_nm, r2.wirelength_nm);
        assert_eq!(r1.drv_count, r2.drv_count);

        for (sn, routed) in side_nets.iter().zip(&r1.nets) {
            // MST lower bound: wirelength at least the span of the pins.
            let bb = ffet_geom::Rect::bounding(sn.pins.iter().copied()).expect("pins");
            let wl: i64 = routed.wires.iter().map(ffet_lefdef::DefWire::length).sum();
            assert!(
                wl >= bb.half_perimeter() / 2,
                "net wl {} below half the bbox {}",
                wl,
                bb.half_perimeter()
            );
            // Geometry stays on the declared side.
            assert!(routed.wires.iter().all(|w| w.layer.side == sn.side));
            assert!(routed
                .vias
                .iter()
                .all(|v| v.from_layer.side == sn.side && v.to_layer.side == sn.side));
        }
    }
}

/// The generator itself produces structurally valid nets (documents the
/// generator contract used above).
#[test]
fn random_side_net_generates() {
    let mut rng = Rng64::new(0);
    for i in 0..8 {
        let net = random_side_net(&mut rng, i, 10_000);
        assert!(net.pins.len() >= 2);
        assert!(net
            .pins
            .iter()
            .all(|p| (100..9_900).contains(&p.x) && (100..9_900).contains(&p.y)));
    }
}
