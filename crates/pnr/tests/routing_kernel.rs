//! Equivalence tests of the routing hot-path rewrite.
//!
//! The zero-allocation kernels (epoch-stamped scratch, windowed A*,
//! incremental candidate costing, dirty-set rip-up) are all claimed to be
//! *bit-identical* to the straightforward implementations they replaced —
//! not approximations. These tests pin that claim against the retained
//! reference kernel on seeded random congestion landscapes, and check the
//! dirty-set bookkeeping through the observability counters.

use ffet_geom::{Axis, Point, Rect, Rng64};
use ffet_netlist::NetId;
use ffet_pnr::maze::{self, MazeScratch};
use ffet_pnr::{pattern_path, route_nets, RoutingGrid, SideNet};
use ffet_tech::{RoutingPattern, Side, Technology};

/// A grid over a `die`-nm square with seeded random demand sprinkled on
/// both sides: some smooth background load plus a few saturated hotspot
/// cells that force maze detours.
fn random_grid(rng: &mut Rng64, die: i64) -> RoutingGrid {
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(6, 6).expect("legal");
    let mut grid = RoutingGrid::new(&tech, Rect::new(0, 0, die, die), pattern);
    for _ in 0..200 {
        let at = Point::new(rng.range_i64(0, die - 1), rng.range_i64(0, die - 1));
        let side = if rng.next_u64() & 1 == 0 {
            Side::Front
        } else {
            Side::Back
        };
        let g = grid.gcell_at(at);
        let axis = if rng.next_u64() & 1 == 0 {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        // Mostly light demand, occasionally enough to saturate the cell.
        let amount = if rng.next_u64().is_multiple_of(5) {
            40.0
        } else {
            3.0
        };
        grid.add_demand(side, g, axis, amount);
    }
    for _ in 0..40 {
        let at = Point::new(rng.range_i64(0, die - 1), rng.range_i64(0, die - 1));
        grid.add_pin(Side::Front, at);
    }
    grid
}

/// Windowed + scratch-backed searches return exactly the reference kernel's
/// path (same cells, same cost) on random congestion landscapes, and the
/// scratch behaves identically whether fresh or reused across calls.
#[test]
fn maze_kernels_match_reference_on_random_grids() {
    let die = 60_000i64;
    let mut rng = Rng64::new(0x3a2e);
    let mut reused = MazeScratch::new();
    for case in 0..20 {
        let grid = random_grid(&mut rng, die);
        for pair in 0..8 {
            let from = Point::new(rng.range_i64(0, die - 1), rng.range_i64(0, die - 1));
            let to = Point::new(rng.range_i64(0, die - 1), rng.range_i64(0, die - 1));
            let side = if rng.next_u64() & 1 == 0 {
                Side::Front
            } else {
                Side::Back
            };
            let reference = maze::reference_path(&grid, side, from, to);
            let mut fresh = MazeScratch::new();
            let full = maze::maze_path_full(&grid, side, from, to, &mut fresh);
            let windowed = maze::maze_path(&grid, side, from, to, &mut reused);
            assert_eq!(
                full, reference,
                "scratch full-grid diverged (case {case}, pair {pair})"
            );
            assert_eq!(
                windowed, reference,
                "windowed search diverged (case {case}, pair {pair})"
            );
            if let (Some(w), Some(r)) = (&windowed, &reference) {
                let wc = maze::path_cost(&grid, side, w);
                let rc = maze::path_cost(&grid, side, r);
                assert_eq!(
                    wc.to_bits(),
                    rc.to_bits(),
                    "windowed cost not bit-identical (case {case}, pair {pair})"
                );
            }
        }
    }
}

/// The incremental (run-cost accumulator) pattern router picks the same
/// path as summing materialized candidates would: its winner's cost equals
/// `path_cost` of itself, and no maze detour beats it on an uncongested
/// grid (where pattern candidates are optimal).
#[test]
fn pattern_path_agrees_with_path_cost_and_maze_on_empty_grid() {
    let die = 40_000i64;
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(6, 6).expect("legal");
    let grid = RoutingGrid::new(&tech, Rect::new(0, 0, die, die), pattern);
    let mut rng = Rng64::new(0xface);
    let mut scratch = MazeScratch::new();
    for _ in 0..50 {
        let from = Point::new(rng.range_i64(0, die - 1), rng.range_i64(0, die - 1));
        let to = Point::new(rng.range_i64(0, die - 1), rng.range_i64(0, die - 1));
        let p = pattern_path(&grid, Side::Front, from, to);
        assert!(!p.is_empty());
        let pc = maze::path_cost(&grid, Side::Front, &p);
        let m = maze::maze_path(&grid, Side::Front, from, to, &mut scratch).expect("reachable");
        let mc = maze::path_cost(&grid, Side::Front, &m);
        // On a uniform-cost grid every monotone path is optimal, so the
        // pattern winner must tie the maze optimum exactly.
        assert_eq!(pc.to_bits(), mc.to_bits(), "pattern beat/lost to maze");
    }
}

/// A congestion-free routing run never enters a rip-up round: the dirty-set
/// counters are absent from the collected metrics.
#[test]
fn congestion_free_run_visits_no_connections() {
    let collector = ffet_obs::Collector::new();
    let guard = collector.install();
    let die = 30_000i64;
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(6, 6).expect("legal");
    let mut grid = RoutingGrid::new(&tech, Rect::new(0, 0, die, die), pattern);
    let side_nets = vec![SideNet {
        net: NetId(0),
        side: Side::Front,
        pins: vec![Point::new(1_000, 1_000), Point::new(20_000, 18_000)],
        is_clock: false,
    }];
    let result = route_nets(&tech, &mut grid, &side_nets, pattern);
    drop(guard);
    assert_eq!(result.drv_count, 0, "single net must route cleanly");
    let data = collector.finish();
    assert!(
        !data.metrics.counters.contains_key("route.dirty.visited"),
        "no rip-up round should have run: {:?}",
        data.metrics.counters
    );
    assert!(!data.metrics.counters.contains_key("route.ripups"));
}

/// Overflow that no connection's path crosses (pin-access demand in a far
/// corner) forces rip-up rounds to run, but the dirty-set worklist stays
/// empty: the inverted index proves no connection is affected without
/// scanning any paths.
#[test]
fn unrelated_overflow_keeps_dirty_set_empty() {
    let collector = ffet_obs::Collector::new();
    let guard = collector.install();
    let die = 30_000i64;
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(6, 6).expect("legal");
    let mut grid = RoutingGrid::new(&tech, Rect::new(0, 0, die, die), pattern);
    // Saturate a far-corner GCell with pin demand no route will touch.
    let corner = Point::new(die - 200, die - 200);
    for _ in 0..100 {
        grid.add_pin(Side::Front, corner);
    }
    assert!(grid.total_overflow() > 0.0, "corner must overflow");
    let side_nets = vec![SideNet {
        net: NetId(0),
        side: Side::Front,
        pins: vec![Point::new(500, 500), Point::new(4_000, 3_000)],
        is_clock: false,
    }];
    let _ = route_nets(&tech, &mut grid, &side_nets, pattern);
    drop(guard);
    let data = collector.finish();
    assert!(
        data.metrics.counters["route.rounds"] > 0,
        "overflow must trigger rounds"
    );
    assert_eq!(
        data.metrics.counters["route.dirty.visited"], 0,
        "no connection crosses the hotspot, so the worklist must stay empty"
    );
    assert_eq!(data.metrics.counters["route.ripups"], 0);
}
