//! Placement-quality diagnostics on the real RV32 benchmark: the router's
//! congestion (and with it every Fig. 8–13 shape) depends on the placer
//! producing substantially better-than-random wirelength.

use ffet_cells::Library;
use ffet_pnr::{floorplan, place, powerplan};
use ffet_rv32::build_core;
use ffet_tech::{RoutingPattern, Technology};

#[test]
fn rv32_placement_beats_random_by_2x() {
    let lib = Library::new(Technology::ffet_3p5t());
    let nl = build_core(&lib, "rv32").netlist;
    let fp = floorplan(&nl, &lib, 0.7, 1.0).unwrap();
    let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 12).unwrap());
    let pl = place(&nl, &lib, &fp, &pp, 1);
    // Random-placement expectation: every net's bounding box is a random
    // sample of the die; for small nets HPWL ≈ (W+H)/3 per net.
    let random_est = nl.nets().len() as i64 * (fp.die.width() + fp.die.height()) / 3;
    assert!(
        pl.hpwl_nm * 2 < random_est,
        "placement ratio {:.2} worse than half-random",
        pl.hpwl_nm as f64 / random_est as f64
    );
}
