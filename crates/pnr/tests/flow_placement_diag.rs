//! Diagnoses where the flow's placement wirelength goes relative to the
//! standalone placement of the same design.

use ffet_cells::Library;
use ffet_pnr::{floorplan, place, powerplan, synthesize_clock_tree};
use ffet_rv32::build_core;
use ffet_tech::{RoutingPattern, Technology};

#[test]
fn hpwl_before_and_after_cts() {
    let lib = Library::new(Technology::ffet_3p5t());
    let mut nl = build_core(&lib, "rv32").netlist;
    let pattern = RoutingPattern::new(12, 0).unwrap();

    let fp0 = floorplan(&nl, &lib, 0.7, 1.0).unwrap();
    let pp0 = powerplan(&fp0, &lib, pattern);
    let pl0 = place(&nl, &lib, &fp0, &pp0, 42);

    let tree = synthesize_clock_tree(&mut nl, &lib, &pl0).expect("clock buffer available");
    assert!(!tree.buffers.is_empty(), "CTS inserted no buffers");

    let fp = floorplan(&nl, &lib, 0.7, 1.0).unwrap();
    let pp = powerplan(&fp, &lib, pattern);
    let pl = place(&nl, &lib, &fp, &pp, 42);

    assert!(
        pl.hpwl_nm < pl0.hpwl_nm * 3 / 2,
        "CTS must not blow up wirelength: {} -> {}",
        pl0.hpwl_nm,
        pl.hpwl_nm
    );
}

#[test]
fn hpwl_after_buffering_like_synthesis() {
    use ffet_cells::{CellFunction, CellKind, DriveStrength};
    // Emulate the synthesis fanout buffering: split every >16-sink net.
    let lib = Library::new(Technology::ffet_3p5t());
    let mut nl = build_core(&lib, "rv32").netlist;
    let buf = lib
        .id(CellKind::new(CellFunction::Buf, DriveStrength::D4))
        .unwrap();
    let mut inserted = 0;
    let net_count = nl.nets().len();
    for ni in 0..net_count {
        let id = ffet_netlist::NetId(ni as u32);
        if nl.net(id).is_clock || nl.net(id).sinks.len() <= 16 {
            continue;
        }
        let sinks: Vec<_> = nl.net(id).sinks.clone();
        for (gi, group) in sinks.chunks(16).enumerate().skip(1) {
            let out = nl.add_net(format!("_fob{ni}_{gi}"));
            nl.add_instance(&lib, format!("fob_{ni}_{gi}"), buf, &[Some(id), Some(out)]);
            for &pin in group {
                nl.move_sink(id, pin, out);
            }
            inserted += 1;
        }
    }
    assert!(inserted > 0, "fanout buffering inserted nothing");
    let pattern = RoutingPattern::new(12, 0).unwrap();
    let fp = floorplan(&nl, &lib, 0.7, 1.0).unwrap();
    let pp = powerplan(&fp, &lib, pattern);
    let pl = place(&nl, &lib, &fp, &pp, 42);
    assert!(
        pl.hpwl_nm > 0,
        "buffered placement produced zero wirelength"
    );
}
