//! Differential property tests of the batched parallel router.
//!
//! The claim under test is the determinism contract of DESIGN §7: every
//! rip-up batch is routed against a *frozen* grid snapshot and committed in
//! ascending connection-id order, so `route_jobs` changes which worker
//! computes a read-only search and nothing else. These tests pin that claim
//! on seeded random congestion landscapes — paths, geometry, overflow, via
//! counts, and every observability counter must be *bit-identical* between
//! the sequential router (`route_jobs = 1`) and the parallel one at worker
//! counts 2, 4, and 7, for batch sizes 1, 3, and 64, including runs whose
//! rounds grow their worklist mid-round (rip-up engaged).

use ffet_geom::{Axis, Point, Rect, Rng64};
use ffet_netlist::NetId;
use ffet_pnr::{route_nets_opts, RouteOpts, RoutingGrid, RoutingResult, SideNet};
use ffet_tech::{RoutingPattern, Side, Technology};

const DIE_W: i64 = 60_000;
const DIE_H: i64 = 50_000;

/// Seeded random multi-pin nets across both sides of the die.
fn random_nets(rng: &mut Rng64, n: usize, both_sides: bool) -> Vec<SideNet> {
    (0..n)
        .map(|i| {
            let side = if both_sides && rng.next_u64() & 3 == 0 {
                Side::Back
            } else {
                Side::Front
            };
            let pins = (0..rng.range_usize(2, 4))
                .map(|_| Point::new(rng.range_i64(0, DIE_W - 1), rng.range_i64(0, DIE_H - 1)))
                .collect();
            SideNet {
                net: NetId(i as u32),
                side,
                pins,
                is_clock: false,
            }
        })
        .collect()
}

/// A congestion landscape seeded from `seed`: background demand, a few
/// saturated hotspots, and pin-access load — rebuilt identically for every
/// routing run so only `opts` differs between compared runs.
fn seeded_grid(tech: &Technology, pattern: RoutingPattern, seed: u64) -> RoutingGrid {
    let mut rng = Rng64::new(seed);
    let mut grid = RoutingGrid::new(tech, Rect::new(0, 0, DIE_W, DIE_H), pattern);
    for _ in 0..150 {
        let at = Point::new(rng.range_i64(0, DIE_W - 1), rng.range_i64(0, DIE_H - 1));
        let side = if rng.next_u64() & 1 == 0 {
            Side::Front
        } else {
            Side::Back
        };
        let axis = if rng.next_u64() & 1 == 0 {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        let amount = if rng.next_u64().is_multiple_of(4) {
            30.0
        } else {
            2.0
        };
        let g = grid.gcell_at(at);
        grid.add_demand(side, g, axis, amount);
    }
    for _ in 0..60 {
        let at = Point::new(rng.range_i64(0, DIE_W - 1), rng.range_i64(0, DIE_H - 1));
        grid.add_pin(Side::Front, at);
    }
    grid
}

/// One routing run under its own metrics collector: the full
/// [`RoutingResult`] plus every counter/gauge/histogram it recorded.
struct RunOut {
    result: RoutingResult,
    metrics: ffet_obs::MetricsSnapshot,
}

fn run(
    tech: &Technology,
    pattern: RoutingPattern,
    nets: &[SideNet],
    grid_seed: u64,
    opts: &RouteOpts,
) -> RunOut {
    let mut grid = seeded_grid(tech, pattern, grid_seed);
    let collector = ffet_obs::Collector::new();
    let _guard = collector.install();
    let result = route_nets_opts(tech, &mut grid, nets, pattern, opts);
    let metrics = collector.finish().metrics;
    RunOut { result, metrics }
}

/// Bit-level equality of two runs: geometry, counters, and every float
/// compared by bits, not tolerance.
fn assert_identical(a: &RunOut, b: &RunOut, label: &str) {
    assert_eq!(a.result.nets, b.result.nets, "{label}: routed geometry");
    assert_eq!(
        a.result.overflow_tracks.to_bits(),
        b.result.overflow_tracks.to_bits(),
        "{label}: overflow_tracks"
    );
    assert_eq!(a.result.drv_count, b.result.drv_count, "{label}: drv_count");
    assert_eq!(
        a.result.wirelength_nm, b.result.wirelength_nm,
        "{label}: wirelength"
    );
    assert_eq!(
        a.result.back_wirelength_nm, b.result.back_wirelength_nm,
        "{label}: back wirelength"
    );
    assert_eq!(a.result.via_count, b.result.via_count, "{label}: vias");
    assert_eq!(
        a.result.peak_congestion.to_bits(),
        b.result.peak_congestion.to_bits(),
        "{label}: peak congestion"
    );
    assert_eq!(
        format!("{:?}", a.result.hot_gcells),
        format!("{:?}", b.result.hot_gcells),
        "{label}: hot gcells"
    );
    assert_eq!(a.metrics, b.metrics, "{label}: metrics snapshots");
}

fn counter(out: &RunOut, name: &str) -> i64 {
    out.metrics.counters.get(name).copied().unwrap_or(0)
}

/// The core differential property on a congested landscape: for every
/// batch size, the parallel router at 2/4/7 workers is bit-identical to
/// the sequential router at the same batch size.
#[test]
fn parallel_routing_matches_sequential_bit_for_bit() {
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(2, 2).expect("legal");
    let mut rng = Rng64::new(0x9b1d);
    let nets = random_nets(&mut rng, 220, true);

    for batch_size in [1usize, 3, 64] {
        let base = run(
            &tech,
            pattern,
            &nets,
            0xfeed,
            &RouteOpts {
                route_jobs: 1,
                batch_size,
                ..RouteOpts::default()
            },
        );
        // The landscape must actually engage the negotiation machinery,
        // otherwise the property is vacuous: rip-ups happened, and the
        // round worklists were split into more than one batch.
        assert!(
            counter(&base, "route.ripups") > 0,
            "batch {batch_size}: no rip-ups — landscape too easy"
        );
        assert!(
            counter(&base, "route.batch.count") > 1,
            "batch {batch_size}: a single batch routed everything"
        );
        assert_eq!(
            counter(&base, "route.batch.size"),
            counter(&base, "route.batch.commits"),
            "batch {batch_size}: every selected connection must commit"
        );
        for route_jobs in [2usize, 4, 7] {
            let par = run(
                &tech,
                pattern,
                &nets,
                0xfeed,
                &RouteOpts {
                    route_jobs,
                    batch_size,
                    ..RouteOpts::default()
                },
            );
            assert_identical(
                &base,
                &par,
                &format!("batch_size {batch_size}, route_jobs {route_jobs}"),
            );
        }
    }
}

/// Mid-round rip-up growth: a round's commits can push *later* connections
/// into the same round's worklist. Force that regime (many overlapping
/// nets, tiny batches) and check the worklist bookkeeping and results stay
/// identical at every worker count.
#[test]
fn mid_round_ripup_growth_stays_identical() {
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(2, 0).expect("legal");
    // Parallel long nets crammed through the same rows: every commit
    // overflows cells shared with higher-id connections.
    let nets: Vec<SideNet> = (0..140)
        .map(|i| {
            let y = 2_000 + (i as i64 % 12) * 150;
            SideNet {
                net: NetId(i as u32),
                side: Side::Front,
                pins: vec![
                    Point::new(500, y),
                    Point::new(DIE_W - 1_000, DIE_H - 2_000 - y),
                ],
                is_clock: false,
            }
        })
        .collect();
    let base = run(
        &tech,
        pattern,
        &nets,
        0xbeef,
        &RouteOpts {
            route_jobs: 1,
            batch_size: 3,
            ..RouteOpts::default()
        },
    );
    // More pops than initially-dirty connections means the worklist grew
    // mid-round — the regime this test exists to cover.
    assert!(
        counter(&base, "route.dirty.visited") > counter(&base, "route.ripups"),
        "worklist never grew mid-round (visited {}, ripups {})",
        counter(&base, "route.dirty.visited"),
        counter(&base, "route.ripups"),
    );
    for route_jobs in [2usize, 4, 7] {
        let par = run(
            &tech,
            pattern,
            &nets,
            0xbeef,
            &RouteOpts {
                route_jobs,
                batch_size: 3,
                ..RouteOpts::default()
            },
        );
        assert_identical(&base, &par, &format!("mid-round growth, jobs {route_jobs}"));
    }
}

/// A congestion-free landscape exits the rip-up loop before any batch is
/// formed; the parallel and sequential routers must agree there too (the
/// pool is constructed but never dispatches).
#[test]
fn uncongested_runs_are_identical_and_batch_free() {
    let tech = Technology::ffet_3p5t();
    let pattern = RoutingPattern::new(12, 12).expect("legal");
    let mut rng = Rng64::new(0x51de);
    let nets = random_nets(&mut rng, 40, true);
    let base = run(&tech, pattern, &nets, 1, &RouteOpts::default());
    assert_eq!(counter(&base, "route.batch.count"), 0, "no rip-up batches");
    for route_jobs in [2usize, 7] {
        let par = run(
            &tech,
            pattern,
            &nets,
            1,
            &RouteOpts {
                route_jobs,
                ..RouteOpts::default()
            },
        );
        assert_identical(&base, &par, &format!("uncongested, jobs {route_jobs}"));
    }
}
