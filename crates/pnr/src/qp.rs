//! SimPL-style quadratic global placement: bound-to-bound (B2B) net model,
//! Jacobi-preconditioned conjugate-gradient solves, and upper-bound anchors
//! from the density-spreading projection.
//!
//! Each outer iteration solves the wirelength-minimal quadratic program
//! (lower bound), computes a spread, density-feasible version of that
//! solution (upper bound), and pulls the next solve toward it with
//! pseudo-net anchors of geometrically increasing weight — the standard
//! SimPL recipe, reduced to the essentials.

use ffet_geom::Point;
use ffet_netlist::Netlist;

/// One pin of a QP net: a movable cell or a fixed location (port).
#[derive(Debug, Clone, Copy)]
pub enum QpPin {
    /// Movable cell by instance index.
    Cell(u32),
    /// Fixed coordinate (die-boundary port).
    Fixed(Point),
}

/// The connectivity view the QP solver works on.
#[derive(Debug, Clone, Default)]
pub struct QpNets {
    nets: Vec<Vec<QpPin>>,
}

impl QpNets {
    /// Extracts QP nets from the netlist: every non-clock net with at
    /// least two pins, ports included as fixed pins. High-fanout nets are
    /// kept — the B2B model weights them by `1/(p-1)` so they do not
    /// dominate.
    #[must_use]
    pub fn build(netlist: &Netlist, port_positions: &[Point]) -> QpNets {
        let port_of_net: ffet_geom::FxHashMap<u32, Point> = netlist
            .ports()
            .iter()
            .enumerate()
            .map(|(pi, p)| (p.net.0, port_positions[pi]))
            .collect();
        let mut nets = Vec::new();
        for (ni, net) in netlist.nets().iter().enumerate() {
            if net.is_clock {
                continue;
            }
            let mut pins: Vec<QpPin> = Vec::with_capacity(net.degree() + 1);
            if let Some(d) = net.driver {
                pins.push(QpPin::Cell(d.inst.0));
            }
            for s in &net.sinks {
                pins.push(QpPin::Cell(s.inst.0));
            }
            if let Some(p) = port_of_net.get(&(ni as u32)) {
                pins.push(QpPin::Fixed(*p));
            }
            if pins.len() >= 2 {
                nets.push(pins);
            }
        }
        QpNets { nets }
    }

    /// Number of QP nets.
    #[allow(dead_code)] // used by tests and diagnostics
    #[must_use]
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether there are no nets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }
}

/// Sparse symmetric system in adjacency form plus diagonal.
struct System {
    diag: Vec<f64>,
    /// Off-diagonal entries: per row, (column, weight) with weight > 0
    /// meaning matrix entry `-weight`.
    off: Vec<Vec<(u32, f64)>>,
    rhs: Vec<f64>,
}

impl System {
    fn new(n: usize) -> System {
        System {
            diag: vec![0.0; n],
            off: vec![Vec::new(); n],
            rhs: vec![0.0; n],
        }
    }

    fn add_edge(&mut self, a: usize, b: usize, w: f64) {
        self.diag[a] += w;
        self.diag[b] += w;
        self.off[a].push((b as u32, w));
        self.off[b].push((a as u32, w));
    }

    fn add_fixed(&mut self, a: usize, pos: f64, w: f64) {
        self.diag[a] += w;
        self.rhs[a] += w * pos;
    }

    /// Jacobi-preconditioned CG solve, warm-started from `x`.
    fn solve(&self, x: &mut [f64], iterations: usize) {
        let n = x.len();
        let matvec = |v: &[f64], out: &mut [f64]| {
            for i in 0..n {
                let mut acc = self.diag[i] * v[i];
                for &(j, w) in &self.off[i] {
                    acc -= w * v[j as usize];
                }
                out[i] = acc;
            }
        };
        let mut r = vec![0.0; n];
        matvec(x, &mut r);
        for (ri, rhs) in r.iter_mut().zip(&self.rhs) {
            *ri = rhs - *ri;
        }
        let minv: Vec<f64> = self.diag.iter().map(|&d| 1.0 / d.max(1e-12)).collect();
        let mut z: Vec<f64> = r.iter().zip(&minv).map(|(ri, mi)| ri * mi).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut ap = vec![0.0; n];
        for _ in 0..iterations {
            if rz.abs() < 1e-9 {
                break;
            }
            matvec(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap.abs() < 1e-12 {
                break;
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..n {
                z[i] = r[i] * minv[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
    }
}

/// One QP solve along a single axis with B2B weights derived from the
/// current coordinates, plus per-cell anchors.
///
/// `coords` is updated in place (warm start). `anchors`/`anchor_w` pull
/// each movable cell toward its density-feasible position.
pub fn solve_axis(
    nets: &QpNets,
    axis: ffet_geom::Axis,
    coords: &mut [f64],
    anchors: &[f64],
    anchor_w: f64,
    fixed_mask: &[bool],
) {
    let n = coords.len();
    let fixed_coord = |pt: &Point| -> f64 {
        match axis {
            ffet_geom::Axis::Horizontal => pt.x as f64,
            ffet_geom::Axis::Vertical => pt.y as f64,
        }
    };
    let mut sys = System::new(n);
    for pins in &nets.nets {
        // Locate extreme pins under the current coordinates.
        let value = |p: &QpPin| -> f64 {
            match p {
                QpPin::Cell(i) => coords[*i as usize],
                QpPin::Fixed(pt) => fixed_coord(pt),
            }
        };
        let (mut lo, mut hi) = (0usize, 0usize);
        for (k, p) in pins.iter().enumerate() {
            if value(p) < value(&pins[lo]) {
                lo = k;
            }
            if value(p) > value(&pins[hi]) {
                hi = k;
            }
        }
        let k = pins.len();
        let base = 2.0 / (k as f64 - 1.0);
        let mut connect = |a: usize, b: usize| {
            if a == b {
                return;
            }
            let (pa, pb) = (&pins[a], &pins[b]);
            let len = (value(pa) - value(pb)).abs().max(50.0);
            let w = base / len;
            match (pa, pb) {
                (QpPin::Cell(i), QpPin::Cell(j)) => {
                    if i != j {
                        sys.add_edge(*i as usize, *j as usize, w);
                    }
                }
                (QpPin::Cell(i), QpPin::Fixed(pt)) | (QpPin::Fixed(pt), QpPin::Cell(i)) => {
                    sys.add_fixed(*i as usize, fixed_coord(pt), w);
                }
                (QpPin::Fixed(_), QpPin::Fixed(_)) => {}
            }
        };
        for m in 0..k {
            connect(lo, m);
            if m != lo {
                connect(hi, m);
            }
        }
    }
    for i in 0..n {
        if fixed_mask[i] {
            sys.add_fixed(i, coords[i], 1e6);
        } else {
            sys.add_fixed(i, anchors[i], anchor_w);
        }
    }
    sys.solve(coords, 48);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_cells::Library;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    #[test]
    fn chain_collapses_between_fixed_ends() {
        // x_port(0) - c0 - c1 - c2 - y_port(3000): QP puts cells evenly.
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "chain");
        let x = b.input("x");
        let c0 = b.not(x);
        let c1 = b.not(c0);
        let c2 = b.not(c1);
        b.output("y", c2);
        let nl = b.finish();
        let ports = vec![Point::new(0, 0), Point::new(3000, 0)];
        let nets = QpNets::build(&nl, &ports);
        assert_eq!(nets.len(), 4);
        let mut coords = vec![1500.0; 3];
        let anchors = vec![1500.0; 3];
        let fixed = vec![false; 3];
        for _ in 0..10 {
            solve_axis(
                &nets,
                ffet_geom::Axis::Horizontal,
                &mut coords,
                &anchors,
                1e-9,
                &fixed,
            );
        }
        assert!(coords[0] < coords[1] && coords[1] < coords[2], "{coords:?}");
        assert!((coords[1] - 1500.0).abs() < 200.0, "{coords:?}");
    }

    #[test]
    fn anchors_dominate_when_heavy() {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "pair");
        let x = b.input("x");
        let c0 = b.not(x);
        b.output("y", c0);
        let nl = b.finish();
        let ports = vec![Point::new(0, 0), Point::new(1000, 0)];
        let nets = QpNets::build(&nl, &ports);
        let mut coords = vec![500.0];
        let anchors = vec![9000.0];
        solve_axis(
            &nets,
            ffet_geom::Axis::Horizontal,
            &mut coords,
            &anchors,
            1e3,
            &[false],
        );
        assert!((coords[0] - 9000.0).abs() < 50.0, "{coords:?}");
    }
}
