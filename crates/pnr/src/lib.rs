//! Physical implementation for dual-sided technologies: floorplan, BSPDN
//! powerplan with Power Tap Cells, placement, CTS, and dual-sided global
//! routing (the paper's Algorithm 1).
//!
//! The [`run_pnr`] convenience drives the whole sequence of paper §III.C:
//!
//! ```text
//! floorplan → powerplan → placement → CTS → (re)placement → dual-sided
//! routing → two DEFs
//! ```
//!
//! # Example
//!
//! ```no_run
//! use ffet_cells::Library;
//! use ffet_netlist::NetlistBuilder;
//! use ffet_pnr::{run_pnr, PnrConfig};
//! use ffet_pool::CancelToken;
//! use ffet_tech::{RoutingPattern, Technology};
//!
//! let lib = Library::new(Technology::ffet_3p5t());
//! let mut b = NetlistBuilder::new(&lib, "demo");
//! let x = b.input("x");
//! let y = b.not(x);
//! b.output("y", y);
//! let mut netlist = b.finish();
//!
//! let config = PnrConfig {
//!     utilization: 0.7,
//!     aspect_ratio: 1.0,
//!     pattern: RoutingPattern::new(12, 12)?,
//!     seed: 42,
//!     bridging_min_nm: None,
//!     extra_reroute_rounds: 0,
//!     route_jobs: 1,
//!     route_panic: false,
//!     cancel: CancelToken::none(),
//! };
//! let result = run_pnr(&mut netlist, &lib, &config)?;
//! println!("DRVs: {}", result.drv_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bridging;
pub mod calib;
mod cts;
mod dualside;
mod export;
mod fillers;
mod floorplan;
mod grid;
mod integrity;
pub mod maze;
mod placement;
mod powerplan;
mod qp;
mod route;

pub use bridging::{insert_bridging_cells, BridgingStats};
pub use cts::{synthesize_clock_tree, ClockTree, CtsError};
pub use dualside::{decompose_nets, pin_position, pin_sides, DecomposeError, SideNet};
pub use export::export_defs;
pub use fillers::{check_legality, insert_fillers, Filler, LegalityViolation};
pub use floorplan::{floorplan, Floorplan, FloorplanError, Row};
pub use grid::{GCell, HotGcell, RoutingGrid};
pub use integrity::{analyze_pdn, PdnReport};
pub use placement::{place, Placement};
pub use powerplan::{powerplan, PowerPlan, TapCell};
pub use route::{
    pattern_path, route_nets, route_nets_opts, route_nets_with_effort, RouteOpts, RoutedNet,
    RoutingResult,
};

use ffet_cells::{Library, PinSides};
use ffet_lefdef::Def;
use ffet_netlist::Netlist;
pub use ffet_pool::CancelToken;
use ffet_tech::{PatternError, RoutingPattern, Side};

/// Configuration of one P&R run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PnrConfig {
    /// Target placement utilization (cell area / core area), `(0, 1]`.
    pub utilization: f64,
    /// Die aspect ratio, width/height.
    pub aspect_ratio: f64,
    /// BEOL routing-layer pattern (`FMnBMm`).
    pub pattern: RoutingPattern,
    /// Seed for the deterministic placement heuristics.
    pub seed: u64,
    /// When set, nets longer than this (placed HPWL, nm) are moved to the
    /// backside through conventional bridging cells instead of relying on
    /// redistributed input pins — the ablation of the paper's Algorithm 1.
    pub bridging_min_nm: Option<i64>,
    /// Additional rip-up-and-reroute rounds beyond the calibrated budget
    /// (the recovery ladder's first escalation; 0 in normal runs).
    pub extra_reroute_rounds: u32,
    /// Worker count for the router's batched rip-up rounds (`--route-jobs`
    /// / `FFET_ROUTE_JOBS`; 1 = fully inline). Wall-clock only: routing
    /// results are bit-identical at any value (see [`RouteOpts`]).
    pub route_jobs: usize,
    /// Deterministic fault injection (`FFET_FAULTS=panic-route`): panic
    /// inside the router's batch workers. Never set in normal runs.
    pub route_panic: bool,
    /// Cooperative deadline token, polled at rip-up-round and route-batch
    /// boundaries and re-checked after routing. Expiry aborts the run with
    /// [`PnrError::Cancelled`]. The default token never cancels.
    pub cancel: CancelToken,
}

/// Everything a finished P&R run produced.
#[derive(Debug, Clone)]
pub struct PnrResult {
    /// The floorplan (die, rows, utilization bookkeeping).
    pub floorplan: Floorplan,
    /// The power plan (BSPDN + Power Tap Cells).
    pub powerplan: PowerPlan,
    /// Final legalized placement (after CTS).
    pub placement: Placement,
    /// The synthesized clock tree.
    pub clock: ClockTree,
    /// Routing result (geometry + congestion metrics).
    pub routing: RoutingResult,
    /// Frontside DEF.
    pub front_def: Def,
    /// Backside DEF.
    pub back_def: Def,
}

impl PnrResult {
    /// Total DRV count: routing overflow plus placement violations —
    /// checked against the paper's "valid iff below 10" rule.
    #[must_use]
    pub fn drv_count(&self) -> u32 {
        self.routing.drv_count + self.placement.violations
    }

    /// Whether this run is valid under the design rules.
    #[must_use]
    pub fn is_valid(&self, library: &Library) -> bool {
        library.tech().rules().is_valid_run(self.drv_count())
    }
}

/// Error from [`run_pnr`].
#[derive(Debug, Clone, PartialEq)]
pub enum PnrError {
    /// Floorplanning failed.
    Floorplan(FloorplanError),
    /// Net decomposition failed (backside pins without backside layers).
    Decompose(DecomposeError),
    /// The pattern is illegal for the library's technology.
    Pattern(PatternError),
    /// Clock-tree synthesis failed (e.g. no clock buffer in the library).
    Cts(CtsError),
    /// The run's [`PnrConfig::cancel`] token expired: the router stopped
    /// cooperatively and the partial result was discarded. The flow maps
    /// this to its `timeout(pnr)` disposition.
    Cancelled,
}

impl std::fmt::Display for PnrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PnrError::Floorplan(e) => write!(f, "floorplan: {e}"),
            PnrError::Decompose(e) => write!(f, "net decomposition: {e}"),
            PnrError::Pattern(e) => write!(f, "routing pattern: {e}"),
            PnrError::Cts(e) => write!(f, "clock-tree synthesis: {e}"),
            PnrError::Cancelled => f.write_str("deadline cancelled the run"),
        }
    }
}

impl std::error::Error for PnrError {}

impl From<FloorplanError> for PnrError {
    fn from(e: FloorplanError) -> PnrError {
        PnrError::Floorplan(e)
    }
}

impl From<DecomposeError> for PnrError {
    fn from(e: DecomposeError) -> PnrError {
        PnrError::Decompose(e)
    }
}

impl From<PatternError> for PnrError {
    fn from(e: PatternError) -> PnrError {
        PnrError::Pattern(e)
    }
}

impl From<CtsError> for PnrError {
    fn from(e: CtsError) -> PnrError {
        PnrError::Cts(e)
    }
}

/// Runs the complete physical-implementation sequence on `netlist`
/// (mutated: CTS inserts clock buffers).
///
/// # Errors
///
/// [`PnrError`] if the floorplan, pattern, or decomposition is infeasible.
/// Congestion and placement violations do **not** error — they surface as
/// the DRV count, matching how the paper treats invalid runs.
pub fn run_pnr(
    netlist: &mut Netlist,
    library: &Library,
    config: &PnrConfig,
) -> Result<PnrResult, PnrError> {
    library.tech().check_pattern(config.pattern)?;
    // First placement pass positions the clock sinks for CTS.
    let sp = ffet_obs::span("pnr.floorplan");
    let fp0 = floorplan(netlist, library, config.utilization, config.aspect_ratio)?;
    sp.close();
    let sp = ffet_obs::span("pnr.powerplan");
    let pp0 = powerplan(&fp0, library, config.pattern);
    sp.close();
    let sp = ffet_obs::span("pnr.place");
    let pl0 = place(netlist, library, &fp0, &pp0, config.seed);
    sp.close();
    let sp = ffet_obs::span("pnr.cts");
    let clock = synthesize_clock_tree(netlist, library, &pl0)?;
    sp.attr("levels", clock.levels)
        .attr("buffers", clock.buffers.len())
        .attr("sinks", clock.sink_count)
        .close();
    ffet_obs::gauge_set("cts.levels", f64::from(clock.levels));
    ffet_obs::counter_add("cts.buffers", clock.buffers.len() as i64);
    ffet_obs::counter_add("cts.sinks", clock.sink_count as i64);
    if let Some(min_len) = config.bridging_min_nm {
        let sp = ffet_obs::span("pnr.bridging");
        let stats = insert_bridging_cells(netlist, library, &pl0, min_len);
        sp.attr("inserted", stats.bridges_inserted).close();
        ffet_obs::counter_add("pnr.bridging_cells", stats.bridges_inserted as i64);
    }

    // Final floorplan/placement including the clock and bridging cells.
    let sp = ffet_obs::span("pnr.floorplan2");
    let fp = floorplan(netlist, library, config.utilization, config.aspect_ratio)?;
    sp.close();
    let pp = powerplan(&fp, library, config.pattern);
    let sp = ffet_obs::span("pnr.place2");
    let pl = place(netlist, library, &fp, &pp, config.seed);
    sp.close();
    ffet_obs::gauge_set("place.hpwl_nm", pl.hpwl_nm as f64);
    ffet_obs::gauge_set("place.violations", f64::from(pl.violations));

    // Dual-sided routing.
    let sp = ffet_obs::span("pnr.decompose");
    let side_nets = decompose_nets(netlist, library, &pl, config.pattern)?;
    sp.attr("side_nets", side_nets.len()).close();
    let sp = ffet_obs::span("pnr.route");
    let mut grid = RoutingGrid::new(library.tech(), fp.die, config.pattern);
    add_pin_demand(netlist, library, &pl, &mut grid, config.pattern);
    let routing = route_nets_opts(
        library.tech(),
        &mut grid,
        &side_nets,
        config.pattern,
        &RouteOpts {
            extra_rounds: config.extra_reroute_rounds,
            route_jobs: config.route_jobs,
            fault_panic: config.route_panic,
            cancel: config.cancel,
            ..RouteOpts::default()
        },
    );
    sp.attr("drv", routing.drv_count)
        .attr("vias", routing.via_count)
        .close();
    // The router exits cooperatively on expiry (best-effort partial
    // state); a cancelled run must not masquerade as a routed one.
    if config.cancel.cancelled() {
        return Err(PnrError::Cancelled);
    }

    let sp = ffet_obs::span("pnr.export");
    let (front_def, back_def) = export_defs(netlist, library, &fp, &pp, &pl, &routing);
    sp.close();
    Ok(PnrResult {
        floorplan: fp,
        powerplan: pp,
        placement: pl,
        clock,
        routing,
        front_def,
        back_def,
    })
}

/// Seeds the congestion grid with pin-access demand: every connected pin
/// consumes local routing resource on each side it is accessible from
/// (dual-sided output pins load both sides — but only sides that have
/// routing layers at all).
fn add_pin_demand(
    netlist: &Netlist,
    library: &Library,
    placement: &Placement,
    grid: &mut RoutingGrid,
    pattern: RoutingPattern,
) {
    let side_has_layers = |side: Side| match side {
        Side::Front => pattern.front_layers() > 0,
        Side::Back => pattern.back_layers() > 0,
    };
    // CFET-only: supervia stacks and the BPR shadow block lower-metal
    // tracks above every cell (calib::CFET_SUPERVIA_BLOCKAGE).
    if library.tech().kind() == ffet_tech::TechKind::Cfet4t {
        let tech = library.tech();
        for (i, inst) in netlist.instances().iter().enumerate() {
            let cell = library.cell(inst.cell);
            let w = cell.width_cpp * tech.cpp();
            let at = placement.center(i, w, tech.cell_height());
            grid.add_blockage(Side::Front, at, calib::CFET_SUPERVIA_BLOCKAGE);
        }
    }
    for (i, inst) in netlist.instances().iter().enumerate() {
        for (pi, conn) in inst.conns.iter().enumerate() {
            if conn.is_none() {
                continue;
            }
            let pin = ffet_netlist::PinRef::new(ffet_netlist::InstId(i as u32), pi);
            let pos = pin_position(netlist, library, placement, pin);
            match pin_sides(netlist, library, pin) {
                PinSides::One(side) => {
                    if side_has_layers(side) {
                        grid.add_pin(side, pos);
                    }
                }
                PinSides::Both => {
                    for side in Side::BOTH {
                        if side_has_layers(side) {
                            grid.add_pin(side, pos);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    fn mixed_netlist(lib: &Library, n: usize) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "mixed");
        let clk = b.input("clk");
        b.netlist_mut().mark_clock(clk);
        let mut x = b.input("x");
        let mut y = b.input("z");
        for i in 0..n {
            let t = b.nand2(x, y);
            y = x;
            x = if i % 5 == 0 { b.dff(t, clk) } else { t };
        }
        b.output("y", x);
        b.finish()
    }

    #[test]
    fn full_pnr_on_ffet_dual_sided() {
        let mut lib = Library::new(Technology::ffet_3p5t());
        lib.redistribute_input_pins(0.5, 42).unwrap();
        let mut nl = mixed_netlist(&lib, 300);
        let config = PnrConfig {
            utilization: 0.6,
            aspect_ratio: 1.0,
            pattern: RoutingPattern::new(6, 6).unwrap(),
            seed: 1,
            bridging_min_nm: None,
            extra_reroute_rounds: 0,
            route_jobs: 1,
            route_panic: false,
            cancel: CancelToken::none(),
        };
        let result = run_pnr(&mut nl, &lib, &config).expect("pnr runs");
        assert!(result.is_valid(&lib), "drv = {}", result.drv_count());
        assert!(
            result.routing.back_wirelength_nm > 0,
            "dual-sided routing used"
        );
        assert!(!result.clock.buffers.is_empty());
        assert!(result.front_def.nets.len() + result.back_def.nets.len() >= nl.nets().len() / 2);
        nl.check_consistency(&lib).unwrap();
    }

    #[test]
    fn full_pnr_on_cfet_baseline() {
        let lib = Library::new(Technology::cfet_4t());
        let mut nl = mixed_netlist(&lib, 300);
        let config = PnrConfig {
            utilization: 0.6,
            aspect_ratio: 1.0,
            pattern: RoutingPattern::new(12, 0).unwrap(),
            seed: 1,
            bridging_min_nm: None,
            extra_reroute_rounds: 0,
            route_jobs: 1,
            route_panic: false,
            cancel: CancelToken::none(),
        };
        let result = run_pnr(&mut nl, &lib, &config).expect("pnr runs");
        assert!(result.is_valid(&lib));
        assert_eq!(result.routing.back_wirelength_nm, 0);
        assert!(result.powerplan.taps.is_empty());
    }

    #[test]
    fn cfet_rejects_dual_sided_pattern() {
        let lib = Library::new(Technology::cfet_4t());
        let mut nl = mixed_netlist(&lib, 50);
        let config = PnrConfig {
            utilization: 0.6,
            aspect_ratio: 1.0,
            pattern: RoutingPattern::new(6, 6).unwrap(),
            seed: 1,
            bridging_min_nm: None,
            extra_reroute_rounds: 0,
            route_jobs: 1,
            route_panic: false,
            cancel: CancelToken::none(),
        };
        assert!(matches!(
            run_pnr(&mut nl, &lib, &config),
            Err(PnrError::Pattern(_))
        ));
    }
}
