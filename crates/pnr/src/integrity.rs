//! Static IR-drop analysis of the backside power-delivery network.
//!
//! The paper's powerplan (§III.B) exists to "ensure the power integrity and
//! the even distribution of power supply across both sides of the chip".
//! This module quantifies that: a resistive model of the two supply paths,
//!
//! * **VDD** — backside M0 rail → backside stripe → bump (direct),
//! * **VSS** — *frontside* M0 rail → **Power Tap Cell** → backside VSS
//!   stripe → bump (the FFET's extra hop; CFET reaches its BPR through an
//!   nTSV instead),
//!
//! with the block current drawn uniformly across the rows. The worst drop
//! is the figure of merit: Power Tap Cells at the 64-CPP stripe pitch keep
//! the frontside rail excursion bounded by the half-pitch rail resistance.

use crate::floorplan::Floorplan;
use crate::powerplan::PowerPlan;
use ffet_cells::Library;
use ffet_liberty::VDD;
use ffet_tech::TechKind;

/// Result of the PDN IR-drop analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnReport {
    /// Worst VSS-path drop, mV (frontside rail → tap → stripe for FFET).
    pub worst_vss_drop_mv: f64,
    /// Worst VDD-path drop, mV (direct backside connection).
    pub worst_vdd_drop_mv: f64,
    /// Total block current, mA.
    pub total_current_ma: f64,
    /// Current through the single most-loaded Power Tap Cell, mA.
    pub worst_tap_current_ma: f64,
    /// Number of Power Tap Cells carrying the VSS return (0 for CFET,
    /// whose nTSVs live under the BPR instead).
    pub tap_count: usize,
}

/// Per-nm resistance of an M0 power rail, Ω (wider than signal M0).
const RAIL_OHM_PER_NM: f64 = 0.03;
/// Per-nm resistance of a backside power stripe, Ω (thick backside metal).
const STRIPE_OHM_PER_NM: f64 = 0.002;
/// Resistance of one Power Tap Cell's intra-cell hookup, Ω.
const TAP_RES_OHM: f64 = 45.0;
/// Resistance of one CFET nTSV (BPR → backside PDN), Ω.
const NTSV_RES_OHM: f64 = 30.0;
/// nTSV pitch along the BPR for CFET, nm (one per power-stripe crossing).
const BPR_SEGMENT_NM: f64 = 3_200.0;

/// Analyzes the PDN for a powered block.
///
/// `total_power_mw` is the block power (e.g. from the flow's power
/// analysis); the block current `P/VDD` is distributed uniformly over the
/// core rows.
#[must_use]
pub fn analyze_pdn(
    floorplan: &Floorplan,
    powerplan: &PowerPlan,
    library: &Library,
    total_power_mw: f64,
) -> PdnReport {
    let tech = library.tech();
    let total_current_ma = total_power_mw / VDD;
    let n_rows = floorplan.rows.len().max(1);
    let row_current_ma = total_current_ma / n_rows as f64;

    // Worst lateral rail excursion: half the distance between adjacent
    // connection points (taps for FFET VSS; stripe crossings otherwise).
    let stripe_pitch = tech.power_stripe_pitch() as f64;
    // VSS and VDD stripes alternate, so same-polarity stripes sit at twice
    // the interleave distance.
    let same_polarity_pitch = 2.0 * stripe_pitch;
    let rail_half_span = same_polarity_pitch / 2.0;
    // Current collected by one connection point: the row current share of
    // one same-polarity pitch of row length.
    let row_len = floorplan.core.width().max(1) as f64;
    let conn_current_ma = row_current_ma * (same_polarity_pitch / row_len).min(1.0);
    // Lateral drop along the rail: uniformly drawn current into one point
    // gives I·R/2 over the half-span.
    let rail_drop =
        |current_ma: f64| current_ma * 1e-3 * (rail_half_span * RAIL_OHM_PER_NM) / 2.0 * 1e3;

    // Vertical collection: stripe from the row to the bump at the die edge
    // (worst row is the farthest, carrying the accumulated stripe current).
    let stripe_len = floorplan.core.height() as f64;
    let taps_per_stripe = n_rows as f64;
    let stripe_current_ma = conn_current_ma * taps_per_stripe;
    // Uniform collection into a centre bump: effective resistance L·R/8.
    let stripe_drop_mv = stripe_current_ma * 1e-3 * (stripe_len * STRIPE_OHM_PER_NM) / 8.0 * 1e3;

    let (vss_hop_mv, tap_count, worst_tap_current_ma) = match tech.kind() {
        TechKind::Ffet3p5t => {
            let tap_count = powerplan.taps.len();
            let tap_drop_mv = conn_current_ma * 1e-3 * TAP_RES_OHM * 1e3;
            (tap_drop_mv, tap_count, conn_current_ma)
        }
        TechKind::Cfet4t => {
            // nTSV under the BPR, one per stripe crossing.
            let seg_current =
                row_current_ma * (BPR_SEGMENT_NM / row_len).min(1.0) * taps_per_stripe;
            let ntsv_drop_mv = seg_current * 1e-3 * NTSV_RES_OHM * 1e3 / taps_per_stripe;
            (ntsv_drop_mv, 0, 0.0)
        }
    };

    let worst_vdd_drop_mv = rail_drop(conn_current_ma) + stripe_drop_mv;
    let worst_vss_drop_mv = rail_drop(conn_current_ma) + vss_hop_mv + stripe_drop_mv;

    PdnReport {
        worst_vss_drop_mv,
        worst_vdd_drop_mv,
        total_current_ma,
        worst_tap_current_ma,
        tap_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use crate::powerplan::powerplan;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    fn setup(tech: Technology) -> (Library, Floorplan, PowerPlan) {
        let lib = Library::new(tech);
        let mut b = NetlistBuilder::new(&lib, "p");
        let mut x = b.input("x");
        for _ in 0..3000 {
            x = b.not(x);
        }
        b.output("y", x);
        let nl = b.finish();
        let fp = floorplan(&nl, &lib, 0.7, 1.0).unwrap();
        let pattern = lib.tech().max_routing_pattern();
        let pp = powerplan(&fp, &lib, pattern);
        (lib, fp, pp)
    }

    #[test]
    fn drop_scales_with_power() {
        let (lib, fp, pp) = setup(Technology::ffet_3p5t());
        let low = analyze_pdn(&fp, &pp, &lib, 5.0);
        let high = analyze_pdn(&fp, &pp, &lib, 20.0);
        assert!(high.worst_vss_drop_mv > low.worst_vss_drop_mv * 3.5);
        assert!((high.total_current_ma / low.total_current_ma - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ffet_vss_pays_the_tap_hop() {
        // The FFET's frontside VSS must cross through the Power Tap Cell,
        // so its drop strictly exceeds the direct backside VDD path.
        let (lib, fp, pp) = setup(Technology::ffet_3p5t());
        let r = analyze_pdn(&fp, &pp, &lib, 10.0);
        assert!(r.worst_vss_drop_mv > r.worst_vdd_drop_mv);
        assert!(r.tap_count > 0);
        assert!(r.worst_tap_current_ma > 0.0);
    }

    #[test]
    fn drops_stay_in_plausible_range() {
        // A ~10mW block at this die size should see single-digit-mV drops —
        // the powerplan exists precisely to keep it there.
        let (lib, fp, pp) = setup(Technology::ffet_3p5t());
        let r = analyze_pdn(&fp, &pp, &lib, 10.0);
        assert!(
            r.worst_vss_drop_mv > 0.01 && r.worst_vss_drop_mv < 50.0,
            "vss drop {} mV",
            r.worst_vss_drop_mv
        );
    }

    #[test]
    fn cfet_uses_ntsvs_not_taps() {
        let (lib, fp, pp) = setup(Technology::cfet_4t());
        let r = analyze_pdn(&fp, &pp, &lib, 10.0);
        assert_eq!(r.tap_count, 0);
        assert!(r.worst_vss_drop_mv >= r.worst_vdd_drop_mv);
    }
}
