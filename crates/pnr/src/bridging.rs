//! Bridging-cell insertion: the conventional way to move a signal to the
//! wafer backside.
//!
//! FinFET/nanosheet/CFET flows that want backside signal routing must
//! transfer each net through a *bridging cell* (paper refs \[4\], \[7\]) —
//! a buffer whose input is reached from the backside. The FFET's inherent
//! dual-sided output pins make this unnecessary (paper §III.A: "we can do
//! the signal routing without using the bridging cells"), and the paper
//! explicitly skips them "to minimize the area cost".
//!
//! This module implements the bridging alternative anyway, so the claim is
//! testable: enable it via [`crate::PnrConfig::bridging_min_nm`] and
//! compare against Algorithm 1 (see the `bridging_ablation` experiment).

use crate::dualside::pin_position;
use crate::placement::Placement;
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_geom::{Nm, Rect};
use ffet_netlist::{NetId, Netlist};
use ffet_tech::Side;

/// What bridging insertion did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BridgingStats {
    /// Bridging cells inserted (one per re-routed net).
    pub bridges_inserted: usize,
}

/// Inserts a bridging cell into every non-clock signal net whose placed
/// half-perimeter exceeds `min_length_nm`: the driver's long haul then
/// reaches the bridge's *backside* input pin (routing that hop on the
/// backside stack), and the bridge re-drives the original sinks on the
/// front.
///
/// Nets touching instances without placement data (CTS buffers inserted
/// after the reference placement) are left alone — they are clock nets,
/// which bridging never applies to anyway.
///
/// Returns the number of bridges inserted. A technology without backside
/// pins (CFET) gets none: there is nothing to transfer to.
#[must_use]
pub fn insert_bridging_cells(
    netlist: &mut Netlist,
    library: &Library,
    placement: &Placement,
    min_length_nm: Nm,
) -> BridgingStats {
    if !library.tech().supports_pins_on(Side::Back) {
        return BridgingStats::default();
    }
    let bridge = library
        .id(CellKind::new(CellFunction::Bridge, DriveStrength::D2))
        .expect("BRIDGED2 in library");
    let placed = placement.origins.len();
    let mut inserted = 0;

    let net_count = netlist.nets().len();
    for ni in 0..net_count {
        let net_id = NetId(ni as u32);
        {
            let net = netlist.net(net_id);
            if net.is_clock || net.sinks.is_empty() {
                continue;
            }
            let all_placed = net
                .driver
                .iter()
                .map(|d| d.inst.0 as usize)
                .chain(net.sinks.iter().map(|s| s.inst.0 as usize))
                .all(|i| i < placed);
            if !all_placed || net.driver.is_none() {
                continue;
            }
        }
        let pins: Vec<_> = {
            let net = netlist.net(net_id);
            net.driver
                .iter()
                .chain(net.sinks.iter())
                .map(|&p| pin_position(netlist, library, placement, p))
                .collect()
        };
        let hpwl = Rect::bounding(pins).map_or(0, |bb| bb.half_perimeter());
        if hpwl <= min_length_nm {
            continue;
        }
        // driver ── (backside haul) ──▶ BRIDGE ── (front) ──▶ sinks
        let out = netlist.add_net(format!("_bridge{inserted}_{ni}"));
        let bridge_inst = netlist.add_instance(
            library,
            format!("bridge_{ni}"),
            bridge,
            &[Some(net_id), Some(out)],
        );
        let sinks: Vec<_> = netlist.net(net_id).sinks.clone();
        for pin in sinks {
            // The bridge's own input stays on the original net.
            if pin.inst != bridge_inst {
                netlist.move_sink(net_id, pin, out);
            }
        }
        inserted += 1;
    }
    BridgingStats {
        bridges_inserted: inserted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use crate::placement::place;
    use crate::powerplan::powerplan;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::{RoutingPattern, Technology};

    fn placed_design(lib: &Library) -> (Netlist, Placement) {
        let mut b = NetlistBuilder::new(lib, "t");
        let x = b.input("x");
        let mut v = b.not(x);
        for _ in 0..400 {
            v = b.not(v);
        }
        b.output("y", v);
        let nl = b.finish();
        let fp = floorplan(&nl, lib, 0.6, 1.0).unwrap();
        let pp = powerplan(&fp, lib, RoutingPattern::new(6, 6).unwrap());
        let pl = place(&nl, lib, &fp, &pp, 1);
        (nl, pl)
    }

    /// Longest placed net HPWL in the design (to pick test thresholds
    /// robustly against placement-quality changes).
    fn max_net_hpwl(nl: &Netlist, lib: &Library, pl: &Placement) -> i64 {
        nl.nets()
            .iter()
            .filter(|n| !n.is_clock && n.driver.is_some() && !n.sinks.is_empty())
            .map(|n| {
                let pins: Vec<_> = n
                    .driver
                    .iter()
                    .chain(n.sinks.iter())
                    .map(|&p| pin_position(nl, lib, pl, p))
                    .collect();
                Rect::bounding(pins).map_or(0, |bb| bb.half_perimeter())
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn long_nets_get_bridged() {
        let lib = Library::new(Technology::ffet_3p5t());
        let (mut nl, pl) = placed_design(&lib);
        let before = nl.instances().len();
        let threshold = max_net_hpwl(&nl, &lib, &pl) / 2;
        let stats = insert_bridging_cells(&mut nl, &lib, &pl, threshold);
        assert!(
            stats.bridges_inserted > 0,
            "nets above half the max must bridge"
        );
        assert_eq!(nl.instances().len(), before + stats.bridges_inserted);
        nl.check_consistency(&lib).unwrap();
        // Bridged nets now sink only into the bridge's backside input.
        let bridged = nl
            .instances()
            .iter()
            .filter(|i| lib.cell(i.cell).kind.function == CellFunction::Bridge)
            .count();
        assert_eq!(bridged, stats.bridges_inserted);
    }

    #[test]
    fn threshold_controls_count() {
        let lib = Library::new(Technology::ffet_3p5t());
        let (nl0, pl) = placed_design(&lib);
        let mut aggressive = nl0.clone();
        let mut lazy = nl0.clone();
        let max_len = max_net_hpwl(&nl0, &lib, &pl);
        let many = insert_bridging_cells(&mut aggressive, &lib, &pl, max_len / 8);
        let few = insert_bridging_cells(&mut lazy, &lib, &pl, max_len + 1);
        assert!(many.bridges_inserted > few.bridges_inserted);
        assert_eq!(few.bridges_inserted, 0);
    }

    #[test]
    fn cfet_gets_no_bridges() {
        let lib = Library::new(Technology::cfet_4t());
        let (mut nl, pl) = placed_design(&lib);
        let stats = insert_bridging_cells(&mut nl, &lib, &pl, 500);
        assert_eq!(stats.bridges_inserted, 0);
    }

    #[test]
    fn functionality_preserved() {
        use ffet_netlist::Simulator;
        let lib = Library::new(Technology::ffet_3p5t());
        let (mut nl, pl) = placed_design(&lib);
        let x = nl.net_by_name("x").unwrap();
        let y = nl.ports().iter().find(|p| p.name == "y").unwrap().net;
        let expected = {
            let mut sim = Simulator::new(&nl, &lib).unwrap();
            sim.set(x, true);
            sim.settle();
            sim.get(y)
        };
        let _ = insert_bridging_cells(&mut nl, &lib, &pl, 1_000);
        let mut sim = Simulator::new(&nl, &lib).unwrap();
        sim.set(x, true);
        sim.settle();
        assert_eq!(sim.get(y), expected);
    }
}
