//! The A* maze-routing kernel: epoch-stamped scratch state and a bounded
//! search window, tuned for the rip-up-and-reroute hot loop.
//!
//! The original maze router allocated (and zero-initialized) two
//! whole-grid arrays per call, so every reroute paid O(grid) even when the
//! search settled a handful of GCells. This module keeps that state in a
//! reusable [`MazeScratch`]: `best`/`prev` entries are valid only when
//! their epoch stamp matches the current search, so "resetting" the arrays
//! is a single counter increment and the binary heap's storage is reused
//! across calls. Steady-state reroutes allocate nothing but the winning
//! path.
//!
//! On top of the scratch, [`maze_path`] searches inside a bounded window —
//! the net bounding box inflated by [`crate::calib::MAZE_WINDOW_MARGIN`]
//! GCells — and only falls back to wider windows (geometric growth by
//! [`crate::calib::MAZE_WINDOW_GROWTH`], ending at the full grid) when the
//! window provably might have truncated the optimum. The acceptance test
//! makes the window *exact*, not heuristic: see [`maze_path`] for the
//! argument. [`reference_path`] keeps the original allocating full-grid
//! implementation as the equivalence oracle and benchmark baseline.

use crate::grid::{GCell, RoutingGrid};
use ffet_tech::Side;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost of one step between adjacent GCells: the mean of the two cells'
/// directional congestion costs along the step's axis.
pub(crate) fn step_cost(grid: &RoutingGrid, side: Side, a: GCell, b: GCell) -> f64 {
    let axis = if a.y == b.y {
        ffet_geom::Axis::Horizontal
    } else {
        ffet_geom::Axis::Vertical
    };
    0.5 * (grid.step_cost(side, a, axis) + grid.step_cost(side, b, axis))
}

/// Total congestion cost of a GCell path (sum of its step costs, in path
/// order — the quantity both the pattern candidates and the maze minimize).
#[must_use]
pub fn path_cost(grid: &RoutingGrid, side: Side, path: &[GCell]) -> f64 {
    path.windows(2)
        .map(|w| step_cost(grid, side, w[0], w[1]))
        .sum()
}

/// Heap node: `(f = cost + heuristic, cell index)` with deterministic
/// tie-breaking on the index.
#[derive(PartialEq)]
struct Node(f64, u32);

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, o: &Node) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Node {
    fn cmp(&self, o: &Node) -> std::cmp::Ordering {
        self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
    }
}

/// Reusable maze-search state, sized to one grid.
///
/// `best[i]` and `prev[i]` are meaningful only while `stamp[i] == epoch`;
/// bumping the epoch invalidates every entry at once, so consecutive
/// searches share the arrays with no per-call clearing. The heap's backing
/// storage survives `clear()`, so a warmed-up scratch performs the whole
/// search without touching the allocator.
#[derive(Debug, Default)]
pub struct MazeScratch {
    epoch: u32,
    stamp: Vec<u32>,
    best: Vec<f64>,
    prev: Vec<u32>,
    heap: BinaryHeap<Reverse<Node>>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node({}, {})", self.0, self.1)
    }
}

impl MazeScratch {
    /// Creates an empty scratch; arrays grow on first use with a grid.
    #[must_use]
    pub fn new() -> MazeScratch {
        MazeScratch::default()
    }

    /// Sizes the arrays for `len` cells and starts a fresh search epoch.
    fn begin(&mut self, len: usize) {
        if self.stamp.len() != len {
            self.stamp.clear();
            self.stamp.resize(len, 0);
            self.best.resize(len, f64::INFINITY);
            self.prev.resize(len, u32::MAX);
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            // Epoch counter wrapped: old stamps could alias the new epoch,
            // so pay one full clear every 2^32 searches.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
    }
}

/// The inclusive GCell rectangle a search may touch.
#[derive(Debug, Clone, Copy)]
struct Window {
    x0: u16,
    y0: u16,
    x1: u16,
    y1: u16,
}

impl Window {
    /// The `start`/`goal` bounding box inflated by `margin` cells, clamped
    /// to the grid.
    fn around(start: GCell, goal: GCell, margin: usize, cols: usize, rows: usize) -> Window {
        let m = margin as u64;
        let clamp = |v: u64, hi: usize| (v.min(hi as u64 - 1)) as u16;
        Window {
            x0: u64::from(start.x.min(goal.x)).saturating_sub(m) as u16,
            y0: u64::from(start.y.min(goal.y)).saturating_sub(m) as u16,
            x1: clamp(u64::from(start.x.max(goal.x)) + m, cols),
            y1: clamp(u64::from(start.y.max(goal.y)) + m, rows),
        }
    }

    fn covers(&self, cols: usize, rows: usize) -> bool {
        self.x0 == 0 && self.y0 == 0 && self.x1 as usize == cols - 1 && self.y1 as usize == rows - 1
    }

    fn contains(&self, x: i64, y: i64) -> bool {
        x >= i64::from(self.x0)
            && x <= i64::from(self.x1)
            && y >= i64::from(self.y0)
            && y <= i64::from(self.y1)
    }
}

/// A* from `start` to `goal`, restricted to `win`. Returns the goal's
/// settled cost if it was reached. On success `scratch.prev` holds the
/// tree for [`build_path`].
fn search(
    grid: &RoutingGrid,
    side: Side,
    start: GCell,
    goal: GCell,
    win: Window,
    scratch: &mut MazeScratch,
) -> Option<f64> {
    let cols = grid.cols;
    scratch.begin(cols * grid.rows);
    let idx = |g: GCell| g.y as usize * cols + g.x as usize;
    let heuristic = |g: GCell| -> f64 {
        ((g.x as i64 - goal.x as i64).abs() + (g.y as i64 - goal.y as i64).abs()) as f64
    };
    let epoch = scratch.epoch;
    let si = idx(start);
    scratch.stamp[si] = epoch;
    scratch.best[si] = 0.0;
    scratch.prev[si] = u32::MAX;
    scratch
        .heap
        .push(Reverse(Node(heuristic(start), si as u32)));
    while let Some(Reverse(Node(_, u))) = scratch.heap.pop() {
        let u = u as usize;
        let g = GCell {
            x: (u % cols) as u16,
            y: (u / cols) as u16,
        };
        if g == goal {
            break;
        }
        let gcost = scratch.best[u];
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let nx = g.x as i64 + dx;
            let ny = g.y as i64 + dy;
            if !win.contains(nx, ny) {
                continue;
            }
            let ng = GCell {
                x: nx as u16,
                y: ny as u16,
            };
            let cost = gcost + step_cost(grid, side, g, ng);
            let ni = idx(ng);
            if scratch.stamp[ni] != epoch || cost + 1e-12 < scratch.best[ni] {
                scratch.stamp[ni] = epoch;
                scratch.best[ni] = cost;
                scratch.prev[ni] = u as u32;
                scratch
                    .heap
                    .push(Reverse(Node(cost + heuristic(ng), ni as u32)));
            }
        }
    }
    let gi = idx(goal);
    (scratch.stamp[gi] == epoch).then(|| scratch.best[gi])
}

/// Walks `scratch.prev` from `goal` back to `start`. `None` on a malformed
/// tree (defensive; relaxation keeps `prev` acyclic).
fn build_path(
    grid: &RoutingGrid,
    start: GCell,
    goal: GCell,
    scratch: &MazeScratch,
) -> Option<Vec<GCell>> {
    let cols = grid.cols;
    let idx = |g: GCell| g.y as usize * cols + g.x as usize;
    let mut path = vec![goal];
    let mut cur = idx(goal);
    while cur != idx(start) {
        cur = scratch.prev[cur] as usize;
        path.push(GCell {
            x: (cur % cols) as u16,
            y: (cur / cols) as u16,
        });
        if path.len() > cols * grid.rows {
            return None;
        }
    }
    path.reverse();
    Some(path)
}

/// Full-grid A* maze search using the reusable scratch. Produces the same
/// path as [`reference_path`] without its per-call allocations.
#[must_use]
pub fn maze_path_full(
    grid: &RoutingGrid,
    side: Side,
    from: ffet_geom::Point,
    to: ffet_geom::Point,
    scratch: &mut MazeScratch,
) -> Option<Vec<GCell>> {
    let start = grid.gcell_at(from);
    let goal = grid.gcell_at(to);
    if start == goal {
        return Some(vec![start]);
    }
    let win = Window {
        x0: 0,
        y0: 0,
        x1: (grid.cols - 1) as u16,
        y1: (grid.rows - 1) as u16,
    };
    search(grid, side, start, goal, win, scratch)?;
    build_path(grid, start, goal, scratch)
}

/// Windowed A* maze search: the production reroute kernel.
///
/// The search runs inside the net bounding box inflated by
/// [`crate::calib::MAZE_WINDOW_MARGIN`] GCells. A windowed result of cost
/// `c` is accepted only when `c < d + 2·(margin + 1)`, where `d` is the
/// start–goal Manhattan distance in cells. Because every step costs at
/// least 1, any path that visits a cell outside the window must detour at
/// least `margin + 1` cells beyond the bounding box and back, i.e. costs at
/// least `d + 2·(margin + 1)` — so an accepted windowed path is a global
/// optimum, and (stronger) the whole A* exploration region
/// `{n : d(start,n) + d(n,goal) ≤ c}` lies inside the window, which makes
/// the windowed search's pop sequence, tie-breaks and `prev` tree
/// *identical* to the full-grid search's. Results are therefore
/// bit-identical to [`maze_path_full`]/[`reference_path`], never merely
/// close. On rejection the margin grows by
/// [`crate::calib::MAZE_WINDOW_GROWTH`] (counted in the
/// `route.maze.window_expansions` metric) until the window covers the
/// grid.
///
/// Returns `None` when `to` is unreachable from `from` (cannot happen on a
/// connected grid); the caller falls back to pattern routing, as the
/// original kernel did.
#[must_use]
pub fn maze_path(
    grid: &RoutingGrid,
    side: Side,
    from: ffet_geom::Point,
    to: ffet_geom::Point,
    scratch: &mut MazeScratch,
) -> Option<Vec<GCell>> {
    let start = grid.gcell_at(from);
    let goal = grid.gcell_at(to);
    if start == goal {
        return Some(vec![start]);
    }
    let base =
        ((start.x as i64 - goal.x as i64).abs() + (start.y as i64 - goal.y as i64).abs()) as f64;
    let mut margin = crate::calib::MAZE_WINDOW_MARGIN;
    let mut expansions = 0i64;
    let result = loop {
        let win = Window::around(start, goal, margin, grid.cols, grid.rows);
        let full = win.covers(grid.cols, grid.rows);
        match search(grid, side, start, goal, win, scratch) {
            // A full-grid window is the reference search itself.
            Some(_) if full => break build_path(grid, start, goal, scratch),
            // Exactness bound: cheaper than any window-escaping path
            // (strictly, with an epsilon so borderline costs expand
            // instead of risking a tie with an outside detour).
            Some(cost) if cost < base + 2.0 * (margin as f64 + 1.0) - 1e-9 => {
                break build_path(grid, start, goal, scratch);
            }
            Some(_) | None if full => break None,
            // Window may have truncated the optimum (or the goal): grow.
            Some(_) | None => {
                expansions += 1;
                margin *= crate::calib::MAZE_WINDOW_GROWTH;
            }
        }
    };
    if expansions > 0 {
        ffet_obs::counter_add("route.maze.window_expansions", expansions);
    }
    result
}

/// The original full-grid maze router, kept as the equivalence oracle and
/// benchmark baseline: allocates fresh `best`/`prev` arrays and a heap on
/// every call. Bit-for-bit the pre-scratch implementation, except that
/// unreachable goals return `None` instead of falling back to pattern
/// routing (the caller owns that fallback).
#[must_use]
pub fn reference_path(
    grid: &RoutingGrid,
    side: Side,
    from: ffet_geom::Point,
    to: ffet_geom::Point,
) -> Option<Vec<GCell>> {
    let start = grid.gcell_at(from);
    let goal = grid.gcell_at(to);
    if start == goal {
        return Some(vec![start]);
    }
    let cols = grid.cols;
    let rows = grid.rows;
    let idx = |g: GCell| g.y as usize * cols + g.x as usize;
    let mut best = vec![f64::INFINITY; cols * rows];
    let mut prev: Vec<u32> = vec![u32::MAX; cols * rows];
    let heuristic = |g: GCell| -> f64 {
        ((g.x as i64 - goal.x as i64).abs() + (g.y as i64 - goal.y as i64).abs()) as f64
    };
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    best[idx(start)] = 0.0;
    heap.push(Reverse(Node(heuristic(start), idx(start) as u32)));
    while let Some(Reverse(Node(_, u))) = heap.pop() {
        let u = u as usize;
        let g = GCell {
            x: (u % cols) as u16,
            y: (u / cols) as u16,
        };
        if g == goal {
            break;
        }
        let gcost = best[u];
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let nx = g.x as i64 + dx;
            let ny = g.y as i64 + dy;
            if nx < 0 || ny < 0 || nx >= cols as i64 || ny >= rows as i64 {
                continue;
            }
            let ng = GCell {
                x: nx as u16,
                y: ny as u16,
            };
            let cost = gcost + step_cost(grid, side, g, ng);
            let ni = idx(ng);
            if cost + 1e-12 < best[ni] {
                best[ni] = cost;
                prev[ni] = u as u32;
                heap.push(Reverse(Node(cost + heuristic(ng), ni as u32)));
            }
        }
    }
    if prev[idx(goal)] == u32::MAX {
        return None;
    }
    let mut path = vec![goal];
    let mut cur = idx(goal);
    while cur != idx(start) {
        cur = prev[cur] as usize;
        path.push(GCell {
            x: (cur % cols) as u16,
            y: (cur / cols) as u16,
        });
        if path.len() > cols * rows {
            return None;
        }
    }
    path.reverse();
    Some(path)
}
