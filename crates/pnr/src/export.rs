//! DEF export: assembles placement + powerplan + per-side routing into the
//! two DEF files the paper's flow hands to RC extraction.

use crate::floorplan::Floorplan;
use crate::placement::Placement;
use crate::powerplan::PowerPlan;
use crate::route::RoutingResult;
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_geom::Point;
use ffet_lefdef::{Def, DefComponent, DefConnection, DefNet};
use ffet_netlist::Netlist;
use ffet_tech::Side;

/// Builds one DEF per wafer side from a finished P&R run. Components and
/// PDN appear in both (the die is one physical object); each side's DEF
/// carries only that side's routing — exactly the "two separate DEF files"
/// of the paper's Algorithm 1 output, ready for [`ffet_lefdef::merge_defs`].
#[must_use]
pub fn export_defs(
    netlist: &Netlist,
    library: &Library,
    floorplan: &Floorplan,
    powerplan: &PowerPlan,
    placement: &Placement,
    routing: &RoutingResult,
) -> (Def, Def) {
    let tech = library.tech();
    let mut base = Def::new(netlist.name(), floorplan.die);

    for (i, inst) in netlist.instances().iter().enumerate() {
        base.components.push(DefComponent {
            name: inst.name.clone(),
            macro_name: library.cell(inst.cell).name.clone(),
            origin: placement.origins[i],
            orient: placement.orients[i],
            fixed: inst.fixed,
        });
    }
    // Power Tap Cells are physical components too.
    let tap_name = library
        .cell_by_kind(CellKind::new(CellFunction::PowerTap, DriveStrength::D1))
        .map_or_else(|| "PWRTAP".to_owned(), |c| c.name.clone());
    for (ti, tap) in powerplan.taps.iter().enumerate() {
        base.components.push(DefComponent {
            name: format!("pwrtap_{ti}"),
            macro_name: tap_name.clone(),
            origin: Point::new(tap.site * tech.cpp(), floorplan.rows[tap.row].y),
            orient: floorplan.rows[tap.row].orient,
            fixed: true,
        });
    }
    base.special_nets = powerplan.special_nets.clone();

    let mut front = base.clone();
    let mut back = base;

    for routed in &routing.nets {
        let net = &netlist.nets()[routed.net.0 as usize];
        let mut connections: Vec<DefConnection> = Vec::new();
        if let Some(d) = net.driver {
            let inst = &netlist.instances()[d.inst.0 as usize];
            let cell = library.cell(inst.cell);
            connections.push(DefConnection {
                instance: inst.name.clone(),
                pin: cell.pins[d.pin].name.clone(),
            });
        }
        for s in &net.sinks {
            let inst = &netlist.instances()[s.inst.0 as usize];
            let cell = library.cell(inst.cell);
            connections.push(DefConnection {
                instance: inst.name.clone(),
                pin: cell.pins[s.pin].name.clone(),
            });
        }
        let def_net = DefNet {
            name: net.name.clone(),
            connections,
            wires: routed.wires.clone(),
            vias: routed.vias.clone(),
        };
        match routed.side {
            Side::Front => front.nets.push(def_net),
            Side::Back => back.nets.push(def_net),
        }
    }
    (front, back)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use crate::placement::place;
    use crate::powerplan::powerplan;
    use crate::route::route_nets;
    use crate::{dualside::decompose_nets, grid::RoutingGrid};
    use ffet_lefdef::{merge_defs, parse_def, write_def};
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::{RoutingPattern, Technology};

    #[test]
    fn export_and_merge_roundtrip() {
        let mut lib = Library::new(Technology::ffet_3p5t());
        lib.redistribute_input_pins(0.5, 42).unwrap();
        let mut b = NetlistBuilder::new(&lib, "exp");
        let x = b.input("x");
        let mut v = x;
        let mut w = x;
        // Mixed gate types so the per-cell pin redistribution puts a good
        // share of sink pins on the backside.
        for i in 0..40 {
            let t = match i % 5 {
                0 => b.nand2(v, w),
                1 => b.nor2(v, w),
                2 => b.xor2(v, w),
                3 => b.aoi21(v, w, x),
                _ => b.not(v),
            };
            w = v;
            v = t;
        }
        b.output("y", v);
        let nl = b.finish();

        let pattern = RoutingPattern::new(6, 6).unwrap();
        let fp = floorplan(&nl, &lib, 0.6, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, pattern);
        let pl = place(&nl, &lib, &fp, &pp, 1);
        let side_nets = decompose_nets(&nl, &lib, &pl, pattern).unwrap();
        let mut grid = RoutingGrid::new(lib.tech(), fp.die, pattern);
        let routing = route_nets(lib.tech(), &mut grid, &side_nets, pattern);
        let (front, back) = export_defs(&nl, &lib, &fp, &pp, &pl, &routing);

        // Both sides agree on components; merge succeeds.
        let merged = merge_defs(&front, &back).expect("merge");
        assert_eq!(
            merged.total_wirelength(),
            front.total_wirelength() + back.total_wirelength()
        );
        // Text round trip of the merged database.
        let reparsed = parse_def(&write_def(&merged)).expect("parse back");
        assert_eq!(reparsed, merged);
        // Power taps present as FIXED components.
        assert!(merged
            .components
            .iter()
            .any(|c| c.fixed && c.macro_name == "PWRTAP"));
        // Backside routing exists (pins were redistributed 50/50).
        assert!(back.total_wirelength() > 0);
    }
}
