//! Calibration constants of the physical-implementation models.
//!
//! Every quantity here abstracts a detailed-router or legalizer effect that
//! our flow models statistically rather than exactly. With the exception of
//! [`CFET_SUPERVIA_BLOCKAGE`] (a structural property of the CFET cell
//! architecture), they are shared by both technologies — the FFET/CFET
//! differences come from the PDK data (cell sizes, pin sides, layer
//! stacks), not from these knobs.

/// Fraction of theoretical routing tracks usable by the global router
/// (losses to via landing pads, wrong-way jogs, PDN pass-throughs and
/// rule-driven spacing; pin-access cost is charged separately through
/// [`PIN_ACCESS_DEMAND`]).
pub const CAPACITY_DERATE: f64 = 1.0;

/// Routing-track demand added per cell pin inside a GCell (pin-access
/// cost). Pin-dense regions congest first — the mechanism that limits the
/// single-sided FFET FM12 before the CFET (paper Fig. 8c).
pub const PIN_ACCESS_DEMAND: f64 = 1.35;

/// Routing-track demand added per *CFET* cell, modelling the supervia
/// stacks and BPR shadow that block lower-metal tracks above every
/// ultra-scaled CFET cell ("very high pin density, thus worse
/// routability" — the paper's ref. \[11\], Zografos et al., DATE 2022).
/// FFET cells pay nothing here: the symmetric dual-sided M0 eliminates
/// supervias (paper §II.B).
pub const CFET_SUPERVIA_BLOCKAGE: f64 = 0.5;

/// Maximum horizontal displacement (in CPP) the legalizer may apply to a
/// cell relative to its global-placement position before reporting a
/// placement violation. Bounded displacement is what makes Power-Tap-Cell
/// fragmentation bite at high utilization (paper Fig. 8a: 86% ceiling).
pub const MAX_LEGALIZE_DISPLACEMENT_CPP: i64 = 12;

/// Fraction of a routed step's track demand actually consumed, accounting
/// for Steiner sharing the MST decomposition cannot see (same-net trunks
/// double-counted by 2-pin paths, detailed-route trunk merging) and the
/// residual wirelength gap between this placer and the commercial
/// reference flow. Pin-access demand is *not* scaled: it is the
/// layer-count-independent cost that keeps the maximum utilization flat
/// as layers shrink (paper Fig. 12) until wire demand takes over.
pub const STEINER_SHARING: f64 = 0.61;

/// Number of rip-up-and-reroute refinement iterations of the global router.
pub const REROUTE_ITERATIONS: usize = 12;

/// Connections per rip-up batch of the batched negotiated-congestion
/// router: a batch is ripped up together, routed against the frozen grid
/// (in parallel when `route_jobs > 1`), and committed in ascending
/// connection-id order. Batch composition depends only on grid state —
/// never on the worker count — so routing results are bit-identical at any
/// `route_jobs`. The batch size itself *is* part of the algorithm: it
/// controls how stale the congestion view of a batch member may be.
/// Calibrated at 8: large batches (32+) let batch members pile onto the
/// same cells blindly and measurably degrade congested dual-sided points
/// (the Fig. 9/Table III class), while 8 keeps negotiation quality within
/// noise of the sequential router and still amortizes pool dispatch.
pub const ROUTE_BATCH: usize = 8;

/// Initial margin (GCells) added around a net's bounding box to form the
/// maze-search window. The windowed search only accepts a path it can
/// prove equal to the full-grid answer, so this knob trades re-search work
/// against window size — it cannot change results.
pub const MAZE_WINDOW_MARGIN: usize = 4;

/// Geometric growth factor applied to the window margin each time the
/// windowed search cannot certify its answer.
pub const MAZE_WINDOW_GROWTH: usize = 4;

/// GCell width in CPP (horizontal extent of one congestion bin).
pub const GCELL_WIDTH_CPP: i64 = 16;

/// GCell height in cell rows.
pub const GCELL_ROWS: i64 = 8;

/// History-cost weight of the negotiated-congestion router.
pub const HISTORY_WEIGHT: f64 = 2.5;

/// Present-congestion penalty weight.
pub const CONGESTION_WEIGHT: f64 = 8.0;

/// Outer iterations of the SimPL-style quadratic placement loop.
pub const PLACEMENT_ITERATIONS: usize = 32;

/// Clock buffer maximum fanout before the CTS splits a level.
pub const CTS_MAX_FANOUT: usize = 24;
