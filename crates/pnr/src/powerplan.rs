use crate::floorplan::Floorplan;
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_geom::Rect;
use ffet_lefdef::DefSpecialNet;
use ffet_tech::{LayerId, RoutingPattern, Side, TechKind};

/// A Power Tap Cell placement: connects a frontside VSS rail to the BSPDN
/// (FFET only). Fixed before placement; standard cells must avoid it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapCell {
    /// Row index in the floorplan.
    pub row: usize,
    /// First site (CPP index) the tap occupies.
    pub site: i64,
    /// Number of sites occupied.
    pub width_sites: i64,
}

/// The power plan: BSPDN stripes and (for FFET) the Power Tap Cells.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPlan {
    /// PDN stripe geometry (interleaved VSS/VDD for FFET; BM1/BM2 grid for
    /// CFET), as DEF special nets.
    pub special_nets: Vec<DefSpecialNet>,
    /// Fixed Power Tap Cells (empty for CFET).
    pub taps: Vec<TapCell>,
    /// Stripe x positions (nm) of the VSS stripes (tap columns).
    pub vss_stripe_x: Vec<i64>,
}

impl PowerPlan {
    /// Sites lost to Power Tap Cells.
    #[must_use]
    pub fn tap_sites(&self) -> i64 {
        self.taps.iter().map(|t| t.width_sites).sum()
    }
}

/// Builds the power plan for a floorplanned die.
///
/// FFET (paper §III.B): backside VSS and VDD stripes alternate at the
/// 64-CPP power-stripe pitch; backside M0 VDD rails connect straight up,
/// while the frontside VSS M0 rails need a Power Tap Cell in every row at
/// every VSS stripe. CFET: BSPDN on BM1/BM2 reaches the buried power rail
/// through nTSVs, costing no placement sites.
#[must_use]
pub fn powerplan(floorplan: &Floorplan, library: &Library, pattern: RoutingPattern) -> PowerPlan {
    let tech = library.tech();
    let cpp = tech.cpp();
    let stripe_pitch = tech.power_stripe_pitch();
    let die = floorplan.die;

    let mut vss = DefSpecialNet {
        name: "VSS".into(),
        shapes: Vec::new(),
    };
    let mut vdd = DefSpecialNet {
        name: "VDD".into(),
        shapes: Vec::new(),
    };
    let stripe_width = 8 * cpp / 10; // 0.8 CPP wide stripes

    // For the FFET the PDN sits just above the highest backside signal
    // layer; for the CFET it is the dedicated BM1/BM2 pair.
    let (layer_a, layer_b) = match tech.kind() {
        TechKind::Ffet3p5t => {
            let base = (pattern.back_layers() + 1).clamp(2, 11);
            (
                LayerId::new(Side::Back, base),
                LayerId::new(Side::Back, base + 1),
            )
        }
        TechKind::Cfet4t => (LayerId::new(Side::Back, 1), LayerId::new(Side::Back, 2)),
    };

    // Stripes cover the core at the 64-CPP pitch, starting on the core's
    // left edge (the IO margin needs no PDN).
    let core = floorplan.core;
    let mut vss_stripe_x = Vec::new();
    let mut x = core.lo.x;
    let mut k = 0;
    while x <= core.hi.x {
        let shape = Rect::new(x, die.lo.y, (x + stripe_width).min(die.hi.x), die.hi.y);
        if k % 2 == 0 {
            vss.shapes.push((layer_a, shape));
            vss_stripe_x.push(x);
        } else {
            vdd.shapes.push((layer_a, shape));
        }
        x += stripe_pitch;
        k += 1;
    }
    // A horizontal distribution spine on the next layer up ties the stripes.
    vss.shapes.push((
        layer_b,
        Rect::new(die.lo.x, die.lo.y, die.hi.x, die.lo.y + stripe_width),
    ));
    vdd.shapes.push((
        layer_b,
        Rect::new(die.lo.x, die.hi.y - stripe_width, die.hi.x, die.hi.y),
    ));

    // Power Tap Cells: FFET only, one per row per VSS stripe.
    let mut taps = Vec::new();
    if tech.kind() == TechKind::Ffet3p5t {
        let tap_width = library
            .cell_by_kind(CellKind::new(CellFunction::PowerTap, DriveStrength::D1))
            .map_or(tech.rules().power_tap_width_cpp, |c| c.width_cpp);
        for (row_idx, row) in floorplan.rows.iter().enumerate() {
            // Sites are in absolute CPP units; the row spans
            // [row.x/cpp, row.x/cpp + row.sites).
            let base = row.x / cpp;
            let row_end = base + row.sites;
            for &sx in &vss_stripe_x {
                let site = (sx / cpp).clamp(base, (row_end - tap_width).max(base));
                if site + tap_width <= row_end && sx >= row.x && sx <= row.x + row.sites * cpp {
                    taps.push(TapCell {
                        row: row_idx,
                        site,
                        width_sites: tap_width,
                    });
                }
            }
        }
    }

    PowerPlan {
        special_nets: vec![vss, vdd],
        taps,
        vss_stripe_x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    fn nl(lib: &Library, n: usize) -> ffet_netlist::Netlist {
        let mut b = NetlistBuilder::new(lib, "t");
        let mut x = b.input("x");
        for _ in 0..n {
            x = b.not(x);
        }
        b.output("y", x);
        b.finish()
    }

    #[test]
    fn ffet_gets_taps_on_every_row_and_stripe() {
        let lib = Library::new(Technology::ffet_3p5t());
        let netlist = nl(&lib, 2000);
        let fp = floorplan(&netlist, &lib, 0.7, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 12).unwrap());
        assert!(!pp.taps.is_empty());
        assert_eq!(pp.taps.len(), fp.rows.len() * pp.vss_stripe_x.len());
        // Tap overhead is small but nonzero (2 of every 64 CPP ≈ 3%).
        let frac = pp.tap_sites() as f64 / fp.total_sites() as f64;
        assert!(frac > 0.01 && frac < 0.06, "tap fraction {frac}");
    }

    #[test]
    fn cfet_has_no_taps() {
        let lib = Library::new(Technology::cfet_4t());
        let netlist = nl(&lib, 2000);
        let fp = floorplan(&netlist, &lib, 0.7, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 0).unwrap());
        assert!(pp.taps.is_empty());
        // But it still has a backside PDN (BM1/BM2).
        assert_eq!(pp.special_nets.len(), 2);
        assert!(pp.special_nets.iter().all(|sn| sn
            .shapes
            .iter()
            .all(|(l, _)| l.side == Side::Back && l.index <= 2)));
    }

    #[test]
    fn ffet_pdn_sits_above_backside_signal_stack() {
        let lib = Library::new(Technology::ffet_3p5t());
        let netlist = nl(&lib, 2000);
        let fp = floorplan(&netlist, &lib, 0.7, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(6, 6).unwrap());
        for sn in &pp.special_nets {
            for (l, _) in &sn.shapes {
                assert_eq!(l.side, Side::Back);
                assert!(l.index >= 7, "PDN layer {l} must clear BM6 signals");
            }
        }
    }

    #[test]
    fn stripes_alternate_vss_vdd() {
        let lib = Library::new(Technology::ffet_3p5t());
        let netlist = nl(&lib, 4000);
        let fp = floorplan(&netlist, &lib, 0.6, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 12).unwrap());
        let vss = &pp.special_nets[0];
        let vdd = &pp.special_nets[1];
        // Stripe counts differ by at most one.
        let v = vss.shapes.len() as i64 - 1; // minus the spine
        let d = vdd.shapes.len() as i64 - 1;
        assert!((v - d).abs() <= 1, "vss {v} vdd {d}");
    }
}
