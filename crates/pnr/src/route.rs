//! Congestion-negotiated global routing over the dual-sided GCell grid.
//!
//! Nets are decomposed into 2-pin connections by a Manhattan MST, routed
//! with pattern candidates (L- and Z-shapes inside the bounding box), and
//! refined by rip-up-and-reroute rounds that re-price overflowed GCells
//! (PathFinder-style history costs). Residual overflow after the final round is
//! the framework's DRV proxy: the detailed router would turn every track
//! over capacity into a short or spacing violation.

use crate::calib::REROUTE_ITERATIONS;
use crate::dualside::SideNet;
use crate::grid::{GCell, RoutingGrid};
use ffet_geom::{Axis, Nm, Point};
use ffet_lefdef::{DefVia, DefWire};
use ffet_netlist::NetId;
use ffet_tech::{LayerId, RoutingPattern, Side, Technology};

/// The routed geometry of one (sub-)net on one side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedNet {
    /// The original netlist net.
    pub net: NetId,
    /// Side the geometry is on.
    pub side: Side,
    /// Wire segments (nm coordinates, GCell-center resolution + pin stubs).
    pub wires: Vec<DefWire>,
    /// Vias (bends and pin stacks).
    pub vias: Vec<DefVia>,
}

/// Routing outcome for a whole design.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// Per-net routed geometry.
    pub nets: Vec<RoutedNet>,
    /// Total overflow in track·GCells after the final iteration.
    pub overflow_tracks: f64,
    /// DRV proxy (⌈overflow⌉) checked against the "< 10" validity rule.
    pub drv_count: u32,
    /// Total routed wirelength, nm.
    pub wirelength_nm: Nm,
    /// Total via count.
    pub via_count: usize,
    /// Peak demand/capacity ratio.
    pub peak_congestion: f64,
    /// Wirelength on the backside only, nm (reporting).
    pub back_wirelength_nm: Nm,
    /// The worst overflowed GCells `(x, y, side, h_demand, v_demand)`,
    /// worst first (congestion debugging).
    pub hot_gcells: Vec<crate::grid::HotGcell>,
}

/// One 2-pin connection of a decomposed net.
#[derive(Debug, Clone)]
struct Connection {
    side_net: usize,
    from: Point,
    to: Point,
    path: Vec<GCell>,
}

/// Routes all decomposed nets on the grid. `grid` must already carry the
/// pin-access demand.
#[must_use]
pub fn route_nets(
    tech: &Technology,
    grid: &mut RoutingGrid,
    side_nets: &[SideNet],
    pattern: RoutingPattern,
) -> RoutingResult {
    route_nets_with_effort(tech, grid, side_nets, pattern, 0)
}

/// [`route_nets`] with `extra_rounds` additional rip-up-and-reroute
/// iterations on top of the calibrated [`REROUTE_ITERATIONS`] budget — the
/// first rung of the flow-recovery ladder. With `extra_rounds == 0` this is
/// exactly `route_nets`; a congestion-free run exits the loop early either
/// way, so the knob only changes outcomes that still carry overflow.
#[must_use]
pub fn route_nets_with_effort(
    tech: &Technology,
    grid: &mut RoutingGrid,
    side_nets: &[SideNet],
    pattern: RoutingPattern,
    extra_rounds: u32,
) -> RoutingResult {
    // MST decomposition into 2-pin connections.
    let mut conns: Vec<Connection> = Vec::new();
    for (si, sn) in side_nets.iter().enumerate() {
        for (a, b) in mst_edges(&sn.pins) {
            conns.push(Connection {
                side_net: si,
                from: a,
                to: b,
                path: Vec::new(),
            });
        }
    }
    // Short connections first: they have the least detour freedom.
    conns.sort_by_key(|c| c.from.manhattan(c.to));

    // Initial routing.
    for ci in 0..conns.len() {
        let side = side_nets[conns[ci].side_net].side;
        let path = best_path(grid, side, conns[ci].from, conns[ci].to);
        commit(grid, side, &path, 1.0);
        conns[ci].path = path;
    }

    // Rip-up and reroute overflowed connections; the reroute uses a full
    // A* maze search so detours can leave the bounding box (pattern
    // candidates alone cannot relieve a hotspot).
    // Snapshot the initial solution: negotiated rerouting may only make
    // things worse, and the restore below must be able to fall back to it.
    let mut best_overflow = grid.total_overflow();
    let mut best_paths: Option<Vec<Vec<GCell>>> =
        Some(conns.iter().map(|c| c.path.clone()).collect());
    let rounds = REROUTE_ITERATIONS + extra_rounds as usize;
    for it in 0..rounds {
        let overflow_now = grid.total_overflow();
        if overflow_now <= 0.0 {
            break;
        }
        // Deeply infeasible runs (hundreds of times the validity budget)
        // cannot be negotiated back under 10 DRVs; stop burning maze time
        // once that is clear — the run is reported invalid either way.
        if it >= 2 && overflow_now > 2_000.0 {
            break;
        }
        let mut round_span = ffet_obs::span("route.round").attr("round", it);
        grid.update_history();
        let mut rerouted = 0usize;
        for ci in 0..conns.len() {
            let side = side_nets[conns[ci].side_net].side;
            let crosses = conns[ci].path.iter().any(|&g| grid.is_overflowed(side, g));
            if !crosses {
                continue;
            }
            let old = std::mem::take(&mut conns[ci].path);
            commit(grid, side, &old, -1.0);
            let path = maze_path(grid, side, conns[ci].from, conns[ci].to);
            commit(grid, side, &path, 1.0);
            conns[ci].path = path;
            rerouted += 1;
        }
        let overflow = grid.total_overflow();
        round_span.set_attr("rerouted", rerouted);
        round_span.set_attr("overflow", overflow);
        round_span.set_attr("peak", grid.peak_congestion());
        round_span.close();
        ffet_obs::counter_add("route.rounds", 1);
        ffet_obs::counter_add("route.ripups", rerouted as i64);
        if overflow < best_overflow {
            best_overflow = overflow;
            best_paths = Some(conns.iter().map(|c| c.path.clone()).collect());
        }
    }
    // Negotiated congestion can oscillate: restore the best solution seen.
    if let Some(paths) = best_paths {
        if grid.total_overflow() > best_overflow {
            for (ci, path) in paths.into_iter().enumerate() {
                let side = side_nets[conns[ci].side_net].side;
                let old = std::mem::replace(&mut conns[ci].path, path);
                commit(grid, side, &old, -1.0);
                commit(grid, side, &conns[ci].path.clone(), 1.0);
            }
        }
    }

    // Emit geometry.
    let mut nets: Vec<RoutedNet> = side_nets
        .iter()
        .map(|sn| RoutedNet {
            net: sn.net,
            side: sn.side,
            wires: Vec::new(),
            vias: Vec::new(),
        })
        .collect();
    let mut wirelength = 0;
    let mut back_wirelength = 0;
    let mut via_count = 0;
    let mut vias_by_side = [0i64; 2];
    for conn in &conns {
        let sn = &side_nets[conn.side_net];
        let hpwl = conn.from.manhattan(conn.to);
        let (wires, vias) = emit_geometry(tech, grid, sn.side, pattern, conn, hpwl);
        for w in &wires {
            wirelength += w.length();
            if sn.side == Side::Back {
                back_wirelength += w.length();
            }
        }
        via_count += vias.len();
        vias_by_side[usize::from(sn.side == Side::Back)] += vias.len() as i64;
        let rn = &mut nets[conn.side_net];
        rn.wires.extend(wires);
        rn.vias.extend(vias);
    }
    ffet_obs::counter_add("route.vias.front", vias_by_side[0]);
    ffet_obs::counter_add("route.vias.back", vias_by_side[1]);

    let overflow = grid.total_overflow();
    let breakdown = grid.overflow_breakdown();
    ffet_obs::gauge_set("route.overflow.front.h", breakdown[0][0]);
    ffet_obs::gauge_set("route.overflow.front.v", breakdown[0][1]);
    ffet_obs::gauge_set("route.overflow.back.h", breakdown[1][0]);
    ffet_obs::gauge_set("route.overflow.back.v", breakdown[1][1]);
    ffet_obs::gauge_set("route.peak_congestion", grid.peak_congestion());
    RoutingResult {
        nets,
        overflow_tracks: overflow,
        drv_count: overflow.ceil() as u32,
        wirelength_nm: wirelength,
        via_count,
        peak_congestion: grid.peak_congestion(),
        back_wirelength_nm: back_wirelength,
        hot_gcells: grid.worst_gcells(12),
    }
}

/// Prim MST over pins (pin 0 = source), returning parent→child edges.
fn mst_edges(pins: &[Point]) -> Vec<(Point, Point)> {
    let n = pins.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut dist = vec![i64::MAX; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        dist[i] = pins[0].manhattan(pins[i]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = i64::MAX;
        for i in 0..n {
            if !in_tree[i] && dist[i] < best_d {
                best = i;
                best_d = dist[i];
            }
        }
        in_tree[best] = true;
        edges.push((pins[parent[best]], pins[best]));
        for i in 0..n {
            if !in_tree[i] {
                let d = pins[best].manhattan(pins[i]);
                if d < dist[i] {
                    dist[i] = d;
                    parent[i] = best;
                }
            }
        }
    }
    edges
}

/// Cost of one step between adjacent GCells.
fn step_cost(grid: &RoutingGrid, side: Side, a: GCell, b: GCell) -> f64 {
    let axis = if a.y == b.y {
        Axis::Horizontal
    } else {
        Axis::Vertical
    };
    0.5 * (grid.step_cost(side, a, axis) + grid.step_cost(side, b, axis))
}

/// Total cost of a path.
fn path_cost(grid: &RoutingGrid, side: Side, path: &[GCell]) -> f64 {
    path.windows(2)
        .map(|w| step_cost(grid, side, w[0], w[1]))
        .sum()
}

/// Straight run of GCells from `a` towards `b` along one axis (inclusive).
fn straight(a: GCell, b: GCell) -> Vec<GCell> {
    let mut v = Vec::new();
    if a.y == b.y {
        let (x0, x1) = (a.x, b.x);
        let range: Box<dyn Iterator<Item = u16>> = if x0 <= x1 {
            Box::new(x0..=x1)
        } else {
            Box::new((x1..=x0).rev())
        };
        for x in range {
            v.push(GCell { x, y: a.y });
        }
    } else {
        let (y0, y1) = (a.y, b.y);
        let range: Box<dyn Iterator<Item = u16>> = if y0 <= y1 {
            Box::new(y0..=y1)
        } else {
            Box::new((y1..=y0).rev())
        };
        for y in range {
            v.push(GCell { x: a.x, y });
        }
    }
    v
}

/// Concatenates straight runs, dropping duplicated corners.
fn join(runs: &[Vec<GCell>]) -> Vec<GCell> {
    let mut out: Vec<GCell> = Vec::new();
    for run in runs {
        for &g in run {
            if out.last() != Some(&g) {
                out.push(g);
            }
        }
    }
    out
}

/// Candidate-pattern routing: both L-shapes plus Z-shapes through sampled
/// intermediate columns/rows inside the bounding box. Returns the cheapest.
fn best_path(grid: &RoutingGrid, side: Side, from: Point, to: Point) -> Vec<GCell> {
    let a = grid.gcell_at(from);
    let b = grid.gcell_at(to);
    if a == b {
        return vec![a];
    }
    let mut candidates: Vec<Vec<GCell>> = Vec::new();
    // L-shapes.
    let corner1 = GCell { x: b.x, y: a.y };
    let corner2 = GCell { x: a.x, y: b.y };
    candidates.push(join(&[straight(a, corner1), straight(corner1, b)]));
    candidates.push(join(&[straight(a, corner2), straight(corner2, b)]));
    // Z-shapes through intermediate columns.
    let (xl, xr) = (a.x.min(b.x), a.x.max(b.x));
    if xr - xl >= 2 {
        for k in 1..=3 {
            let xm = xl + (xr - xl) * k / 4;
            if xm == a.x || xm == b.x {
                continue;
            }
            let m1 = GCell { x: xm, y: a.y };
            let m2 = GCell { x: xm, y: b.y };
            candidates.push(join(&[straight(a, m1), straight(m1, m2), straight(m2, b)]));
        }
    }
    // Z-shapes through intermediate rows.
    let (yl, yr) = (a.y.min(b.y), a.y.max(b.y));
    if yr - yl >= 2 {
        for k in 1..=3 {
            let ym = yl + (yr - yl) * k / 4;
            if ym == a.y || ym == b.y {
                continue;
            }
            let m1 = GCell { x: a.x, y: ym };
            let m2 = GCell { x: b.x, y: ym };
            candidates.push(join(&[straight(a, m1), straight(m1, m2), straight(m2, b)]));
        }
    }
    candidates
        .into_iter()
        .min_by(|p, q| path_cost(grid, side, p).total_cmp(&path_cost(grid, side, q)))
        .expect("at least the L candidates exist")
}

/// A* maze routing over the full grid with congestion-aware step costs.
/// Used by rip-up-and-reroute so detours can leave the net bounding box.
fn maze_path(grid: &RoutingGrid, side: Side, from: Point, to: Point) -> Vec<GCell> {
    let start = grid.gcell_at(from);
    let goal = grid.gcell_at(to);
    if start == goal {
        return vec![start];
    }
    let cols = grid.cols;
    let rows = grid.rows;
    let idx = |g: GCell| g.y as usize * cols + g.x as usize;
    let mut best = vec![f64::INFINITY; cols * rows];
    let mut prev: Vec<u32> = vec![u32::MAX; cols * rows];
    let heuristic = |g: GCell| -> f64 {
        ((g.x as i64 - goal.x as i64).abs() + (g.y as i64 - goal.y as i64).abs()) as f64
    };
    // Binary heap over (cost+h) with deterministic tie-breaking on index.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Node(f64, u32);
    impl Eq for Node {}
    impl PartialOrd for Node {
        fn partial_cmp(&self, o: &Node) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Node {
        fn cmp(&self, o: &Node) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
        }
    }
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    best[idx(start)] = 0.0;
    heap.push(Reverse(Node(heuristic(start), idx(start) as u32)));
    while let Some(Reverse(Node(_, u))) = heap.pop() {
        let u = u as usize;
        let g = GCell {
            x: (u % cols) as u16,
            y: (u / cols) as u16,
        };
        if g == goal {
            break;
        }
        let gcost = best[u];
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let nx = g.x as i64 + dx;
            let ny = g.y as i64 + dy;
            if nx < 0 || ny < 0 || nx >= cols as i64 || ny >= rows as i64 {
                continue;
            }
            let ng = GCell {
                x: nx as u16,
                y: ny as u16,
            };
            let cost = gcost + step_cost(grid, side, g, ng);
            let ni = idx(ng);
            if cost + 1e-12 < best[ni] {
                best[ni] = cost;
                prev[ni] = u as u32;
                heap.push(Reverse(Node(cost + heuristic(ng), ni as u32)));
            }
        }
    }
    if prev[idx(goal)] == u32::MAX && start != goal {
        // Unreachable should not happen on a connected grid; fall back to
        // the pattern router.
        return best_path(grid, side, from, to);
    }
    let mut path = vec![goal];
    let mut cur = idx(goal);
    while cur != idx(start) {
        cur = prev[cur] as usize;
        path.push(GCell {
            x: (cur % cols) as u16,
            y: (cur / cols) as u16,
        });
        if path.len() > cols * rows {
            return best_path(grid, side, from, to);
        }
    }
    path.reverse();
    path
}

/// Adds (`amount = 1.0`) or removes (`-1.0`) a path's demand, scaled by
/// the Steiner-sharing correction (see [`crate::calib::STEINER_SHARING`]).
fn commit(grid: &mut RoutingGrid, side: Side, path: &[GCell], amount: f64) {
    let amount = amount * crate::calib::STEINER_SHARING;
    for w in path.windows(2) {
        let axis = if w[0].y == w[1].y {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        grid.add_demand(side, w[0], axis, 0.5 * amount);
        grid.add_demand(side, w[1], axis, 0.5 * amount);
    }
}

/// Chooses the H/V layer pair for a connection by its length class: short
/// nets stay on the fine lower metals, long nets climb to the coarse upper
/// metals (lower RC per mm).
fn pick_layers(
    tech: &Technology,
    side: Side,
    pattern: RoutingPattern,
    hpwl_nm: Nm,
    gcell_w: Nm,
) -> (LayerId, LayerId) {
    let max_index = match side {
        Side::Front => pattern.front_layers(),
        Side::Back => pattern.back_layers(),
    };
    let layers = tech.stack().routing_layers(side, max_index);
    let h: Vec<LayerId> = layers
        .iter()
        .filter(|l| l.id.axis() == Axis::Horizontal)
        .map(|l| l.id)
        .collect();
    let v: Vec<LayerId> = layers
        .iter()
        .filter(|l| l.id.axis() == Axis::Vertical)
        .map(|l| l.id)
        .collect();
    // Layer promotion thresholds: at 5nm-class pitches the lowest metals
    // are too resistive for anything but local hops, so promotion kicks in
    // early (as commercial layer assignment does for timing).
    let class = if hpwl_nm < 3 * gcell_w {
        0
    } else if hpwl_nm < 8 * gcell_w {
        1
    } else {
        2
    };
    let pick = |list: &[LayerId], fallback: &[LayerId]| -> LayerId {
        // A 1-layer pattern has only one direction; geometry for the other
        // direction goes wrong-way on that same layer (as a detailed router
        // would), at the overflow cost the grid already charged.
        let list = if list.is_empty() { fallback } else { list };
        assert!(!list.is_empty(), "side has no routing layers at all");
        let idx = (class * (list.len() - 1)) / 2;
        list[idx.min(list.len() - 1)]
    };
    (pick(&h, &v), pick(&v, &h))
}

/// Converts a GCell path to DEF wires and vias: pin stubs at both ends,
/// collinear runs merged, a via at every bend plus the two pin via stacks.
fn emit_geometry(
    tech: &Technology,
    grid: &RoutingGrid,
    side: Side,
    pattern: RoutingPattern,
    conn: &Connection,
    hpwl_nm: Nm,
) -> (Vec<DefWire>, Vec<DefVia>) {
    let (h_layer, v_layer) = pick_layers(tech, side, pattern, hpwl_nm, grid.gcell_w);
    let m0 = LayerId::new(side, 0);
    let mut wires = Vec::new();
    let mut vias = Vec::new();

    // Corner points: exact pin coordinates at the ends, GCell centers only
    // for *interior* path cells (using the end cells' centers would add a
    // spurious half-GCell stub to every short connection).
    let mut pts: Vec<Point> = Vec::with_capacity(conn.path.len() + 2);
    pts.push(conn.from);
    if conn.path.len() > 2 {
        for &g in &conn.path[1..conn.path.len() - 1] {
            pts.push(grid.center(g));
        }
    }
    pts.push(conn.to);

    // Emit rectilinear segments between consecutive points (diagonal jumps
    // decompose into an H then V piece).
    let mut prev = pts[0];
    vias.push(DefVia {
        at: prev,
        from_layer: m0,
        to_layer: v_layer,
    });
    for &p in &pts[1..] {
        if p == prev {
            continue;
        }
        if p.x != prev.x && p.y != prev.y {
            let mid = Point::new(p.x, prev.y);
            wires.push(DefWire {
                layer: h_layer,
                from: prev,
                to: mid,
            });
            vias.push(DefVia {
                at: mid,
                from_layer: h_layer,
                to_layer: v_layer,
            });
            wires.push(DefWire {
                layer: v_layer,
                from: mid,
                to: p,
            });
        } else {
            let layer = if p.y == prev.y { h_layer } else { v_layer };
            wires.push(DefWire {
                layer,
                from: prev,
                to: p,
            });
        }
        prev = p;
    }
    vias.push(DefVia {
        at: prev,
        from_layer: m0,
        to_layer: v_layer,
    });

    // Merge collinear same-layer runs.
    let merged = merge_collinear(wires);
    (merged, vias)
}

fn merge_collinear(wires: Vec<DefWire>) -> Vec<DefWire> {
    let mut out: Vec<DefWire> = Vec::with_capacity(wires.len());
    for w in wires {
        if w.from == w.to {
            continue;
        }
        if let Some(last) = out.last_mut() {
            let same_layer = last.layer == w.layer;
            let continues = last.to == w.from;
            let collinear =
                (last.from.y == last.to.y && w.from.y == w.to.y && last.from.y == w.from.y)
                    || (last.from.x == last.to.x && w.from.x == w.to.x && last.from.x == w.from.x);
            if same_layer && continues && collinear {
                last.to = w.to;
                continue;
            }
        }
        out.push(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_geom::Rect;
    use ffet_tech::Technology;

    fn setup() -> (Technology, RoutingGrid) {
        let tech = Technology::ffet_3p5t();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let grid = RoutingGrid::new(&tech, Rect::new(0, 0, 60_000, 50_000), pattern);
        (tech, grid)
    }

    fn side_net(pins: Vec<Point>) -> SideNet {
        SideNet {
            net: NetId(0),
            side: Side::Front,
            pins,
            is_clock: false,
        }
    }

    #[test]
    fn two_pin_net_routes_near_hpwl() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let nets = vec![side_net(vec![
            Point::new(1_000, 1_000),
            Point::new(31_000, 21_000),
        ])];
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        assert_eq!(r.drv_count, 0);
        let hpwl = 30_000 + 20_000;
        assert!(
            r.wirelength_nm >= hpwl && r.wirelength_nm < hpwl * 13 / 10,
            "wl {} vs hpwl {hpwl}",
            r.wirelength_nm
        );
        assert!(!r.nets[0].wires.is_empty());
        assert!(r.via_count >= 2);
    }

    #[test]
    fn multi_pin_net_uses_mst_not_star() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        // Three collinear pins: MST length = end-to-end span.
        let nets = vec![side_net(vec![
            Point::new(1_000, 1_000),
            Point::new(41_000, 1_000),
            Point::new(21_000, 1_000),
        ])];
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        assert!(
            r.wirelength_nm < 50_000,
            "wl {} suggests star routing",
            r.wirelength_nm
        );
    }

    #[test]
    fn overload_produces_overflow() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(1, 0).unwrap();
        let mut grid1 = RoutingGrid::new(&tech, Rect::new(0, 0, 60_000, 50_000), pattern);
        // Hundreds of parallel long nets through the same row of GCells on
        // a single-layer pattern must overflow.
        let nets: Vec<SideNet> = (0..400)
            .map(|i| {
                side_net(vec![
                    Point::new(500, 25_000 + (i % 3)),
                    Point::new(59_000, 25_000 + (i % 3)),
                ])
            })
            .collect();
        let r = route_nets(&tech, &mut grid1, &nets, pattern);
        assert!(r.drv_count > 0, "expected overflow, got none");
        assert!(r.overflow_tracks > 0.0);
        let _ = &mut grid; // silence unused
    }

    #[test]
    fn reroute_reduces_overflow_vs_single_pass() {
        // Construct a hotspot and verify the final overflow is bounded by
        // what pure L-routing would produce (Z detours relieve pressure).
        let (tech, _) = setup();
        let pattern = RoutingPattern::new(2, 0).unwrap();
        let die = Rect::new(0, 0, 60_000, 50_000);
        let mut grid = RoutingGrid::new(&tech, die, pattern);
        let nets: Vec<SideNet> = (0..120)
            .map(|i| {
                let y = 2_000 + (i as i64 % 10) * 100;
                side_net(vec![Point::new(500, y), Point::new(59_000, 48_000 - y)])
            })
            .collect();
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        // All nets still connected (geometry emitted).
        assert!(r.nets.iter().all(|n| !n.wires.is_empty()));
        assert!(r.wirelength_nm > 0);
    }

    #[test]
    fn back_wirelength_tracked_separately() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let nets = vec![
            SideNet {
                net: NetId(0),
                side: Side::Back,
                pins: vec![Point::new(1_000, 1_000), Point::new(11_000, 1_000)],
                is_clock: false,
            },
            side_net(vec![Point::new(1_000, 5_000), Point::new(6_000, 5_000)]),
        ];
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        assert!(r.back_wirelength_nm >= 10_000);
        assert!(r.wirelength_nm > r.back_wirelength_nm);
        assert!(r.nets[0].wires.iter().all(|w| w.layer.side == Side::Back));
    }

    #[test]
    fn longer_nets_ride_higher_layers() {
        let tech = Technology::ffet_3p5t();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let short = pick_layers(&tech, Side::Front, pattern, 2_000, 800);
        let long = pick_layers(&tech, Side::Front, pattern, 500_000, 800);
        assert!(long.0.index > short.0.index);
    }
}
