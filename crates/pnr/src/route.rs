//! Congestion-negotiated global routing over the dual-sided GCell grid.
//!
//! Nets are decomposed into 2-pin connections by a Manhattan MST, routed
//! with pattern candidates (L- and Z-shapes inside the bounding box), and
//! refined by rip-up-and-reroute rounds that re-price overflowed GCells
//! (PathFinder-style history costs). Residual overflow after the final round is
//! the framework's DRV proxy: the detailed router would turn every track
//! over capacity into a short or spacing violation.
//!
//! **Batched rounds.** Each rip-up round processes its worklist in
//! fixed-size batches (see [`crate::calib::ROUTE_BATCH`]): the batch is
//! selected against the live grid in ascending connection-id order, ripped
//! up together, routed against the now-*frozen* grid — in parallel across
//! an [`ffet_pool::Pool`] when [`RouteOpts::route_jobs`] > 1 — and
//! committed serially in ascending id order. Because every batch member
//! reads the same immutable snapshot and commits in a fixed order, the
//! worker count changes wall-clock only, never a single path, cost, or
//! counter (see DESIGN §7).

use crate::calib::REROUTE_ITERATIONS;
use crate::dualside::SideNet;
use crate::grid::{GCell, RoutingGrid};
use crate::maze::{self, MazeScratch};
use ffet_geom::{Axis, Nm, Point};
use ffet_lefdef::{DefVia, DefWire};
use ffet_netlist::NetId;
use ffet_pool::{CancelToken, JobError, Pool};
use ffet_tech::{LayerId, RoutingPattern, Side, Technology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The routed geometry of one (sub-)net on one side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedNet {
    /// The original netlist net.
    pub net: NetId,
    /// Side the geometry is on.
    pub side: Side,
    /// Wire segments (nm coordinates, GCell-center resolution + pin stubs).
    pub wires: Vec<DefWire>,
    /// Vias (bends and pin stacks).
    pub vias: Vec<DefVia>,
}

/// Routing outcome for a whole design.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// Per-net routed geometry.
    pub nets: Vec<RoutedNet>,
    /// Total overflow in track·GCells after the final iteration.
    pub overflow_tracks: f64,
    /// DRV proxy (⌈overflow⌉) checked against the "< 10" validity rule.
    pub drv_count: u32,
    /// Total routed wirelength, nm.
    pub wirelength_nm: Nm,
    /// Total via count.
    pub via_count: usize,
    /// Peak demand/capacity ratio.
    pub peak_congestion: f64,
    /// Wirelength on the backside only, nm (reporting).
    pub back_wirelength_nm: Nm,
    /// The worst overflowed GCells `(x, y, side, h_demand, v_demand)`,
    /// worst first (congestion debugging).
    pub hot_gcells: Vec<crate::grid::HotGcell>,
}

/// One 2-pin connection of a decomposed net.
#[derive(Debug, Clone)]
struct Connection {
    side_net: usize,
    from: Point,
    to: Point,
    path: Vec<GCell>,
}

/// Options of [`route_nets_opts`]: reroute effort plus the intra-point
/// parallelism of the batched rip-up rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOpts {
    /// Additional rip-up rounds on top of [`REROUTE_ITERATIONS`] — the
    /// first rung of the flow-recovery ladder.
    pub extra_rounds: u32,
    /// Worker count for routing a batch (`1` = inline on the caller
    /// thread, no pool threads). Changes wall-clock only: every batch is
    /// routed against the same frozen grid snapshot and committed in the
    /// same ascending-id order at any value.
    pub route_jobs: usize,
    /// Connections per rip-up batch (clamped to ≥ 1). Unlike
    /// `route_jobs` this *is* part of the algorithm: it decides which
    /// grid snapshot each connection negotiates against, so changing it
    /// changes the (still deterministic) result.
    pub batch_size: usize,
    /// Deterministic fault injection (`FFET_FAULTS=panic-route`): a
    /// dedicated one-job batch panics inside a pool worker before the
    /// first rip-up round, exercising the pool's panic containment
    /// through the batched path regardless of congestion. Never set
    /// outside fault-injection runs.
    pub fault_panic: bool,
    /// Cooperative deadline token, polled at the top of every rip-up
    /// round and every batch. On expiry the negotiation loop stops
    /// best-effort (the caller discards the partial result via
    /// `PnrError::Cancelled`); the default token never cancels.
    pub cancel: CancelToken,
}

impl Default for RouteOpts {
    fn default() -> RouteOpts {
        RouteOpts {
            extra_rounds: 0,
            route_jobs: 1,
            batch_size: crate::calib::ROUTE_BATCH,
            fault_panic: false,
            cancel: CancelToken::none(),
        }
    }
}

/// Routes all decomposed nets on the grid. `grid` must already carry the
/// pin-access demand.
#[must_use]
pub fn route_nets(
    tech: &Technology,
    grid: &mut RoutingGrid,
    side_nets: &[SideNet],
    pattern: RoutingPattern,
) -> RoutingResult {
    route_nets_opts(tech, grid, side_nets, pattern, &RouteOpts::default())
}

/// [`route_nets`] with `extra_rounds` additional rip-up-and-reroute
/// iterations on top of the calibrated [`REROUTE_ITERATIONS`] budget — the
/// first rung of the flow-recovery ladder. With `extra_rounds == 0` this is
/// exactly `route_nets`; a congestion-free run exits the loop early either
/// way, so the knob only changes outcomes that still carry overflow.
#[must_use]
pub fn route_nets_with_effort(
    tech: &Technology,
    grid: &mut RoutingGrid,
    side_nets: &[SideNet],
    pattern: RoutingPattern,
    extra_rounds: u32,
) -> RoutingResult {
    let opts = RouteOpts {
        extra_rounds,
        ..RouteOpts::default()
    };
    route_nets_opts(tech, grid, side_nets, pattern, &opts)
}

/// The full router entry point: [`route_nets`] plus every knob of the
/// batched negotiated-congestion loop (see [`RouteOpts`]).
#[must_use]
pub fn route_nets_opts(
    tech: &Technology,
    grid: &mut RoutingGrid,
    side_nets: &[SideNet],
    pattern: RoutingPattern,
    opts: &RouteOpts,
) -> RoutingResult {
    let extra_rounds = opts.extra_rounds;
    // MST decomposition into 2-pin connections.
    let mut conns: Vec<Connection> = Vec::new();
    for (si, sn) in side_nets.iter().enumerate() {
        for (a, b) in mst_edges(&sn.pins) {
            conns.push(Connection {
                side_net: si,
                from: a,
                to: b,
                path: Vec::new(),
            });
        }
    }
    // Short connections first: they have the least detour freedom.
    conns.sort_by_key(|c| c.from.manhattan(c.to));

    // Initial routing.
    for ci in 0..conns.len() {
        let side = side_nets[conns[ci].side_net].side;
        let path = best_path(grid, side, conns[ci].from, conns[ci].to);
        commit(grid, side, &path, 1.0);
        conns[ci].path = path;
    }

    // GCell → connection inverted index (per side, flat cell layout): the
    // dirty set of a rip-up round is read from here instead of scanning
    // every connection's path. Entries are append-only — a rerouted
    // connection's old cells keep their (now stale) entries — because every
    // candidate is re-checked against the live grid before rip-up, so a
    // stale entry costs one overflow probe, never a wrong reroute.
    let cols = grid.cols;
    let cell_of = |g: GCell| g.y as usize * cols + g.x as usize;
    let side_of = |side: Side| usize::from(side == Side::Back);
    let mut index: [Vec<Vec<u32>>; 2] = [
        vec![Vec::new(); cols * grid.rows],
        vec![Vec::new(); cols * grid.rows],
    ];
    for (ci, conn) in conns.iter().enumerate() {
        let s = side_of(side_nets[conn.side_net].side);
        for &g in &conn.path {
            index[s][cell_of(g)].push(ci as u32);
        }
    }

    // Rip-up and reroute overflowed connections; the reroute uses an A*
    // maze search (windowed, scratch-backed — see `crate::maze`) so
    // detours can leave the bounding box (pattern candidates alone cannot
    // relieve a hotspot).
    // Snapshot the initial solution: negotiated rerouting may only make
    // things worse, and the restore below must be able to fall back to it.
    // The snapshot is maintained copy-on-improve: `saved` always holds the
    // best solution seen, and an improving round refreshes only the paths
    // in `changed` (connections rerouted since the previous snapshot)
    // instead of cloning every path.
    // One pool + one maze scratch per worker, reused across every batch of
    // every round (the scratch is epoch-stamped, so reuse cannot leak state
    // between searches — results are independent of which worker ran them).
    let route_jobs = opts.route_jobs.max(1);
    let batch_cap = opts.batch_size.max(1);
    let pool = Pool::new(route_jobs);
    let mut scratches: Vec<MazeScratch> = (0..route_jobs).map(|_| MazeScratch::new()).collect();
    if opts.fault_panic {
        inject_route_panic(&pool, &mut scratches);
    }
    let mut batch_ids: Vec<u32> = Vec::with_capacity(batch_cap);
    let mut batch_jobs: Vec<(Side, Point, Point)> = Vec::with_capacity(batch_cap);
    let mut best_overflow = grid.total_overflow();
    let mut saved: Vec<Vec<GCell>> = conns.iter().map(|c| c.path.clone()).collect();
    let mut changed: Vec<bool> = vec![false; conns.len()];
    let mut changed_list: Vec<u32> = Vec::new();
    // Rip-up worklist: ascending-id heap + per-round queued stamps, so
    // connections are visited in the same order the full scan used.
    let mut queue: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    let mut queued: Vec<u32> = vec![0; conns.len()];
    let mut dirty_cells: Vec<(u8, u32)> = Vec::new();
    let rounds = REROUTE_ITERATIONS + extra_rounds as usize;
    for it in 0..rounds {
        // Deadline watchdog: stop negotiating before the round starts.
        // With a forced (fault-injected) token this fires before round 0
        // at any `route_jobs`, keeping the timeout path deterministic.
        if opts.cancel.cancelled() {
            ffet_obs::counter_add("route.cancelled", 1);
            break;
        }
        let overflow_now = grid.total_overflow();
        if overflow_now <= 0.0 {
            break;
        }
        // Deeply infeasible runs (hundreds of times the validity budget)
        // cannot be negotiated back under 10 DRVs; stop burning maze time
        // once that is clear — the run is reported invalid either way.
        if it >= 2 && overflow_now > 2_000.0 {
            break;
        }
        let mut round_span = ffet_obs::span("route.round").attr("round", it);
        // One grid scan prices history *and* yields the round's dirty set.
        dirty_cells.clear();
        grid.update_history_collect(&mut dirty_cells);
        let round_stamp = it as u32 + 1;
        for &(s, i) in &dirty_cells {
            for &ci in &index[s as usize][i as usize] {
                if queued[ci as usize] != round_stamp {
                    queued[ci as usize] = round_stamp;
                    queue.push(Reverse(ci));
                }
            }
        }
        let mut rerouted = 0usize;
        let mut visited = 0i64;
        let mut batch_seq = 0usize;
        loop {
            // Deadline watchdog, between batches: the committed state is
            // consistent here (ripped-up batches are always re-committed
            // before this point), so stopping mid-round is safe.
            if opts.cancel.cancelled() {
                break;
            }
            // Batch selection, against the *live* grid: pop candidates in
            // ascending id order and keep the ones whose current path still
            // crosses an overflowed cell (an earlier batch this round may
            // have relieved it, or a stale index entry may never have
            // crossed). Selection never depends on `route_jobs`: the queue,
            // the stamps, and the grid are all committed state.
            batch_ids.clear();
            while batch_ids.len() < batch_cap {
                let Some(Reverse(ci)) = queue.pop() else {
                    break;
                };
                visited += 1;
                let c = ci as usize;
                let side = side_nets[conns[c].side_net].side;
                if conns[c].path.iter().any(|&g| grid.is_overflowed(side, g)) {
                    batch_ids.push(ci);
                }
            }
            if batch_ids.is_empty() {
                // The selection loop only stops short of the cap when the
                // queue is empty — the round's worklist is drained.
                break;
            }
            // Rip up the whole batch, then freeze the grid: every batch
            // member negotiates against the same immutable snapshot, so the
            // paths are a pure function of (snapshot, endpoints) and can be
            // computed in any order, on any worker.
            batch_jobs.clear();
            for &ci in &batch_ids {
                let c = ci as usize;
                let side = side_nets[conns[c].side_net].side;
                let old = std::mem::take(&mut conns[c].path);
                commit(grid, side, &old, -1.0);
                batch_jobs.push((side, conns[c].from, conns[c].to));
            }
            let frozen: &RoutingGrid = grid;
            let batch_span = ffet_obs::span("route.batch")
                .attr("round", it)
                .attr("batch", batch_seq)
                .attr("size", batch_ids.len());
            let outcomes = pool.run_with(&mut scratches, &batch_jobs, |scratch, job| {
                let &(side, from, to) = job;
                let path = maze::maze_path(frozen, side, from, to, scratch)
                    .unwrap_or_else(|| best_path(frozen, side, from, to));
                Ok::<Vec<GCell>, std::convert::Infallible>(path)
            });
            batch_span.close();
            batch_seq += 1;
            ffet_obs::counter_add("route.batch.count", 1);
            ffet_obs::counter_add("route.batch.size", batch_ids.len() as i64);
            // Merge worker-side metrics (maze counters) in submission
            // order, then re-raise the first panic with its original
            // payload: containment at the flow level is byte-identical to a
            // panic on the caller thread, at any worker count.
            for o in &outcomes {
                ffet_obs::merge_metrics(&o.trace.metrics);
            }
            for o in &outcomes {
                if let Err(JobError::Panicked(msg)) = &o.result {
                    std::panic::resume_unwind(Box::new(msg.clone()));
                }
            }
            // Commit serially, ascending id — the one and only place batch
            // results touch shared state, in an order fixed by net ids.
            for (outcome, &ci) in outcomes.into_iter().zip(&batch_ids) {
                let c = ci as usize;
                let side = side_nets[conns[c].side_net].side;
                let path = match outcome.result {
                    Ok(path) => path,
                    Err(JobError::Failed(never)) => match never {},
                    Err(JobError::Panicked(_)) => unreachable!("panics re-raised above"),
                };
                commit(grid, side, &path, 1.0);
                conns[c].path = path;
                // Index the new path, and propagate overflow it *created*
                // to later connections in this round's visit order: only
                // commits add demand, so these cells are the only places
                // the dirty set can grow mid-round. Earlier ids (already
                // visited) are excluded — the full scan would not have
                // revisited them.
                let s = side_of(side);
                for &g in &conns[c].path {
                    let i = cell_of(g);
                    index[s][i].push(ci);
                    if grid.is_overflowed(side, g) {
                        for &cj in &index[s][i] {
                            if cj as usize > c && queued[cj as usize] != round_stamp {
                                queued[cj as usize] = round_stamp;
                                queue.push(Reverse(cj));
                            }
                        }
                    }
                }
                if !changed[c] {
                    changed[c] = true;
                    changed_list.push(ci);
                }
                rerouted += 1;
            }
            ffet_obs::counter_add("route.batch.commits", batch_ids.len() as i64);
        }
        let overflow = grid.total_overflow();
        round_span.set_attr("rerouted", rerouted);
        round_span.set_attr("overflow", overflow);
        round_span.set_attr("peak", grid.peak_congestion());
        round_span.close();
        ffet_obs::counter_add("route.rounds", 1);
        ffet_obs::counter_add("route.ripups", rerouted as i64);
        ffet_obs::counter_add("route.dirty.visited", visited);
        if overflow < best_overflow {
            best_overflow = overflow;
            for &ci in &changed_list {
                let ci = ci as usize;
                saved[ci].clone_from(&conns[ci].path);
                changed[ci] = false;
            }
            changed_list.clear();
        }
    }
    // Negotiated congestion can oscillate: restore the best solution seen.
    // Every connection is re-committed (not just the changed ones) so the
    // grid's demand totals go through the same remove/re-add floating-point
    // sequence as the historical implementation — overflow and congestion
    // metrics stay bit-identical.
    if grid.total_overflow() > best_overflow {
        for (ci, path) in saved.into_iter().enumerate() {
            let side = side_nets[conns[ci].side_net].side;
            let old = std::mem::replace(&mut conns[ci].path, path);
            commit(grid, side, &old, -1.0);
            commit(grid, side, &conns[ci].path, 1.0);
        }
    }

    // Emit geometry.
    let mut nets: Vec<RoutedNet> = side_nets
        .iter()
        .map(|sn| RoutedNet {
            net: sn.net,
            side: sn.side,
            wires: Vec::new(),
            vias: Vec::new(),
        })
        .collect();
    let mut wirelength = 0;
    let mut back_wirelength = 0;
    let mut via_count = 0;
    let mut vias_by_side = [0i64; 2];
    for conn in &conns {
        let sn = &side_nets[conn.side_net];
        let hpwl = conn.from.manhattan(conn.to);
        let (wires, vias) = emit_geometry(tech, grid, sn.side, pattern, conn, hpwl);
        for w in &wires {
            wirelength += w.length();
            if sn.side == Side::Back {
                back_wirelength += w.length();
            }
        }
        via_count += vias.len();
        vias_by_side[usize::from(sn.side == Side::Back)] += vias.len() as i64;
        let rn = &mut nets[conn.side_net];
        rn.wires.extend(wires);
        rn.vias.extend(vias);
    }
    ffet_obs::counter_add("route.vias.front", vias_by_side[0]);
    ffet_obs::counter_add("route.vias.back", vias_by_side[1]);

    let overflow = grid.total_overflow();
    let breakdown = grid.overflow_breakdown();
    ffet_obs::gauge_set("route.overflow.front.h", breakdown[0][0]);
    ffet_obs::gauge_set("route.overflow.front.v", breakdown[0][1]);
    ffet_obs::gauge_set("route.overflow.back.h", breakdown[1][0]);
    ffet_obs::gauge_set("route.overflow.back.v", breakdown[1][1]);
    ffet_obs::gauge_set("route.peak_congestion", grid.peak_congestion());
    RoutingResult {
        nets,
        overflow_tracks: overflow,
        drv_count: overflow.ceil() as u32,
        wirelength_nm: wirelength,
        via_count,
        peak_congestion: grid.peak_congestion(),
        back_wirelength_nm: back_wirelength,
        hot_gcells: grid.worst_gcells(12),
    }
}

/// Fires `FaultKind::RoutePanic` through the batch-worker machinery: a
/// dedicated one-job batch whose worker panics, so the payload travels the
/// exact containment path a real batch would take (worker `catch_unwind` →
/// outcome slot → re-raise on the routing thread). Dispatching it before
/// the first rip-up round makes the fault fire deterministically even on
/// landscapes that never form a congestion batch.
fn inject_route_panic(pool: &Pool, scratches: &mut [MazeScratch]) {
    let outcomes = pool.run_with(
        scratches,
        &[()],
        |_scratch, (): &()| -> Result<(), std::convert::Infallible> {
            // ffet-analyze: allow(R001) -- deliberate fault injection: this panic is the behavior under test
            panic!("fault: injected panic in route batch worker")
        },
    );
    for o in &outcomes {
        if let Err(JobError::Panicked(msg)) = &o.result {
            std::panic::resume_unwind(Box::new(msg.clone()));
        }
    }
    unreachable!("the injected batch always panics");
}

/// Prim MST over pins (pin 0 = source), returning parent→child edges.
fn mst_edges(pins: &[Point]) -> Vec<(Point, Point)> {
    let n = pins.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut dist = vec![i64::MAX; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        dist[i] = pins[0].manhattan(pins[i]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = i64::MAX;
        for i in 0..n {
            if !in_tree[i] && dist[i] < best_d {
                best = i;
                best_d = dist[i];
            }
        }
        in_tree[best] = true;
        edges.push((pins[parent[best]], pins[best]));
        for i in 0..n {
            if !in_tree[i] {
                let d = pins[best].manhattan(pins[i]);
                if d < dist[i] {
                    dist[i] = d;
                    parent[i] = best;
                }
            }
        }
    }
    edges
}

/// Straight run of GCells from `a` towards `b` along one axis (inclusive).
fn straight(a: GCell, b: GCell) -> Vec<GCell> {
    let span = (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as usize + 1;
    let mut v = Vec::with_capacity(span);
    let (mut x, mut y) = (a.x, a.y);
    loop {
        v.push(GCell { x, y });
        if (x, y) == (b.x, b.y) {
            break;
        }
        if a.y == b.y {
            x = if b.x > x { x + 1 } else { x - 1 };
        } else {
            y = if b.y > y { y + 1 } else { y - 1 };
        }
    }
    v
}

/// Concatenates straight runs, dropping duplicated corners.
fn join(runs: &[Vec<GCell>]) -> Vec<GCell> {
    let mut out: Vec<GCell> = Vec::new();
    for run in runs {
        for &g in run {
            if out.last() != Some(&g) {
                out.push(g);
            }
        }
    }
    out
}

/// Up to four corner GCells describing one rectilinear pattern candidate
/// (`len` of them are meaningful; consecutive equal corners mark a
/// degenerate leg).
type Corners = ([GCell; 4], usize);

/// Cost of the candidate described by `corners`, accumulated leg by leg
/// through [`RoutingGrid::run_cost`] — no cell materialization. The
/// accumulator threads through the legs so the floating-point rounding
/// sequence matches summing the materialized path pair-by-pair.
fn corners_cost(grid: &RoutingGrid, side: Side, corners: &Corners) -> f64 {
    let (pts, len) = corners;
    let mut acc = 0.0;
    for w in pts[..*len].windows(2) {
        let (p, q) = (w[0], w[1]);
        if p == q {
            continue;
        }
        let axis = if p.y == q.y {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        acc = grid.run_cost(side, p, q, axis, acc);
    }
    acc
}

/// Materializes a candidate's GCell path (corners → joined straight runs).
fn corners_path(corners: &Corners) -> Vec<GCell> {
    let (pts, len) = corners;
    let runs: Vec<Vec<GCell>> = pts[..*len]
        .windows(2)
        .map(|w| straight(w[0], w[1]))
        .collect();
    join(&runs)
}

/// Candidate-pattern routing: both L-shapes plus Z-shapes through sampled
/// intermediate columns/rows inside the bounding box. Costs every
/// candidate incrementally and materializes only the winner.
pub(crate) fn best_path(grid: &RoutingGrid, side: Side, from: Point, to: Point) -> Vec<GCell> {
    best_path_impl(grid, side, from, to)
}

/// Pattern (L/Z-candidate) routing, exposed for benches and equivalence
/// tests. Identical to the router's internal first-pass candidate search.
#[must_use]
pub fn pattern_path(grid: &RoutingGrid, side: Side, from: Point, to: Point) -> Vec<GCell> {
    best_path_impl(grid, side, from, to)
}

fn best_path_impl(grid: &RoutingGrid, side: Side, from: Point, to: Point) -> Vec<GCell> {
    let a = grid.gcell_at(from);
    let b = grid.gcell_at(to);
    if a == b {
        return vec![a];
    }
    // Seeded with the first L-shape, so a best candidate always exists.
    // Candidate order matters for tie-breaking (first minimum wins, as
    // `min_by` over the materialized candidates chose).
    let corner1 = GCell { x: b.x, y: a.y };
    let first: Corners = ([a, corner1, b, b], 3);
    let mut best: (f64, Corners) = (corners_cost(grid, side, &first), first);
    let mut consider = |corners: Corners| {
        let cost = corners_cost(grid, side, &corners);
        if cost.total_cmp(&best.0) == std::cmp::Ordering::Less {
            best = (cost, corners);
        }
    };
    // The second L-shape.
    let corner2 = GCell { x: a.x, y: b.y };
    consider(([a, corner2, b, b], 3));
    // Z-shapes through intermediate columns.
    let (xl, xr) = (a.x.min(b.x), a.x.max(b.x));
    if xr - xl >= 2 {
        for k in 1..=3 {
            let xm = xl + (xr - xl) * k / 4;
            if xm == a.x || xm == b.x {
                continue;
            }
            let m1 = GCell { x: xm, y: a.y };
            let m2 = GCell { x: xm, y: b.y };
            consider(([a, m1, m2, b], 4));
        }
    }
    // Z-shapes through intermediate rows.
    let (yl, yr) = (a.y.min(b.y), a.y.max(b.y));
    if yr - yl >= 2 {
        for k in 1..=3 {
            let ym = yl + (yr - yl) * k / 4;
            if ym == a.y || ym == b.y {
                continue;
            }
            let m1 = GCell { x: a.x, y: ym };
            let m2 = GCell { x: b.x, y: ym };
            consider(([a, m1, m2, b], 4));
        }
    }
    let (_, corners) = best;
    corners_path(&corners)
}

/// Adds (`amount = 1.0`) or removes (`-1.0`) a path's demand, scaled by
/// the Steiner-sharing correction (see [`crate::calib::STEINER_SHARING`]).
fn commit(grid: &mut RoutingGrid, side: Side, path: &[GCell], amount: f64) {
    let amount = amount * crate::calib::STEINER_SHARING;
    for w in path.windows(2) {
        let axis = if w[0].y == w[1].y {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        grid.add_demand(side, w[0], axis, 0.5 * amount);
        grid.add_demand(side, w[1], axis, 0.5 * amount);
    }
}

/// Chooses the H/V layer pair for a connection by its length class: short
/// nets stay on the fine lower metals, long nets climb to the coarse upper
/// metals (lower RC per mm).
fn pick_layers(
    tech: &Technology,
    side: Side,
    pattern: RoutingPattern,
    hpwl_nm: Nm,
    gcell_w: Nm,
) -> (LayerId, LayerId) {
    let max_index = match side {
        Side::Front => pattern.front_layers(),
        Side::Back => pattern.back_layers(),
    };
    let layers = tech.stack().routing_layers(side, max_index);
    let h: Vec<LayerId> = layers
        .iter()
        .filter(|l| l.id.axis() == Axis::Horizontal)
        .map(|l| l.id)
        .collect();
    let v: Vec<LayerId> = layers
        .iter()
        .filter(|l| l.id.axis() == Axis::Vertical)
        .map(|l| l.id)
        .collect();
    // Layer promotion thresholds: at 5nm-class pitches the lowest metals
    // are too resistive for anything but local hops, so promotion kicks in
    // early (as commercial layer assignment does for timing).
    let class = if hpwl_nm < 3 * gcell_w {
        0
    } else if hpwl_nm < 8 * gcell_w {
        1
    } else {
        2
    };
    let pick = |list: &[LayerId], fallback: &[LayerId]| -> LayerId {
        // A 1-layer pattern has only one direction; geometry for the other
        // direction goes wrong-way on that same layer (as a detailed router
        // would), at the overflow cost the grid already charged.
        let list = if list.is_empty() { fallback } else { list };
        assert!(!list.is_empty(), "side has no routing layers at all");
        let idx = (class * (list.len() - 1)) / 2;
        list[idx.min(list.len() - 1)]
    };
    (pick(&h, &v), pick(&v, &h))
}

/// Converts a GCell path to DEF wires and vias: pin stubs at both ends,
/// collinear runs merged, a via at every bend plus the two pin via stacks.
fn emit_geometry(
    tech: &Technology,
    grid: &RoutingGrid,
    side: Side,
    pattern: RoutingPattern,
    conn: &Connection,
    hpwl_nm: Nm,
) -> (Vec<DefWire>, Vec<DefVia>) {
    let (h_layer, v_layer) = pick_layers(tech, side, pattern, hpwl_nm, grid.gcell_w);
    let m0 = LayerId::new(side, 0);
    let mut wires = Vec::new();
    let mut vias = Vec::new();

    // Corner points: exact pin coordinates at the ends, GCell centers only
    // for *interior* path cells (using the end cells' centers would add a
    // spurious half-GCell stub to every short connection).
    let mut pts: Vec<Point> = Vec::with_capacity(conn.path.len() + 2);
    pts.push(conn.from);
    if conn.path.len() > 2 {
        for &g in &conn.path[1..conn.path.len() - 1] {
            pts.push(grid.center(g));
        }
    }
    pts.push(conn.to);

    // Emit rectilinear segments between consecutive points (diagonal jumps
    // decompose into an H then V piece).
    let mut prev = pts[0];
    vias.push(DefVia {
        at: prev,
        from_layer: m0,
        to_layer: v_layer,
    });
    for &p in &pts[1..] {
        if p == prev {
            continue;
        }
        if p.x != prev.x && p.y != prev.y {
            let mid = Point::new(p.x, prev.y);
            wires.push(DefWire {
                layer: h_layer,
                from: prev,
                to: mid,
            });
            vias.push(DefVia {
                at: mid,
                from_layer: h_layer,
                to_layer: v_layer,
            });
            wires.push(DefWire {
                layer: v_layer,
                from: mid,
                to: p,
            });
        } else {
            let layer = if p.y == prev.y { h_layer } else { v_layer };
            wires.push(DefWire {
                layer,
                from: prev,
                to: p,
            });
        }
        prev = p;
    }
    vias.push(DefVia {
        at: prev,
        from_layer: m0,
        to_layer: v_layer,
    });

    // Merge collinear same-layer runs.
    let merged = merge_collinear(wires);
    (merged, vias)
}

fn merge_collinear(wires: Vec<DefWire>) -> Vec<DefWire> {
    let mut out: Vec<DefWire> = Vec::with_capacity(wires.len());
    for w in wires {
        if w.from == w.to {
            continue;
        }
        if let Some(last) = out.last_mut() {
            let same_layer = last.layer == w.layer;
            let continues = last.to == w.from;
            let collinear =
                (last.from.y == last.to.y && w.from.y == w.to.y && last.from.y == w.from.y)
                    || (last.from.x == last.to.x && w.from.x == w.to.x && last.from.x == w.from.x);
            if same_layer && continues && collinear {
                last.to = w.to;
                continue;
            }
        }
        out.push(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_geom::Rect;
    use ffet_tech::Technology;

    fn setup() -> (Technology, RoutingGrid) {
        let tech = Technology::ffet_3p5t();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let grid = RoutingGrid::new(&tech, Rect::new(0, 0, 60_000, 50_000), pattern);
        (tech, grid)
    }

    fn side_net(pins: Vec<Point>) -> SideNet {
        SideNet {
            net: NetId(0),
            side: Side::Front,
            pins,
            is_clock: false,
        }
    }

    #[test]
    fn two_pin_net_routes_near_hpwl() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let nets = vec![side_net(vec![
            Point::new(1_000, 1_000),
            Point::new(31_000, 21_000),
        ])];
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        assert_eq!(r.drv_count, 0);
        let hpwl = 30_000 + 20_000;
        assert!(
            r.wirelength_nm >= hpwl && r.wirelength_nm < hpwl * 13 / 10,
            "wl {} vs hpwl {hpwl}",
            r.wirelength_nm
        );
        assert!(!r.nets[0].wires.is_empty());
        assert!(r.via_count >= 2);
    }

    #[test]
    fn multi_pin_net_uses_mst_not_star() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        // Three collinear pins: MST length = end-to-end span.
        let nets = vec![side_net(vec![
            Point::new(1_000, 1_000),
            Point::new(41_000, 1_000),
            Point::new(21_000, 1_000),
        ])];
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        assert!(
            r.wirelength_nm < 50_000,
            "wl {} suggests star routing",
            r.wirelength_nm
        );
    }

    #[test]
    fn overload_produces_overflow() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(1, 0).unwrap();
        let mut grid1 = RoutingGrid::new(&tech, Rect::new(0, 0, 60_000, 50_000), pattern);
        // Hundreds of parallel long nets through the same row of GCells on
        // a single-layer pattern must overflow.
        let nets: Vec<SideNet> = (0..400)
            .map(|i| {
                side_net(vec![
                    Point::new(500, 25_000 + (i % 3)),
                    Point::new(59_000, 25_000 + (i % 3)),
                ])
            })
            .collect();
        let r = route_nets(&tech, &mut grid1, &nets, pattern);
        assert!(r.drv_count > 0, "expected overflow, got none");
        assert!(r.overflow_tracks > 0.0);
        let _ = &mut grid; // silence unused
    }

    #[test]
    fn reroute_reduces_overflow_vs_single_pass() {
        // Construct a hotspot and verify the final overflow is bounded by
        // what pure L-routing would produce (Z detours relieve pressure).
        let (tech, _) = setup();
        let pattern = RoutingPattern::new(2, 0).unwrap();
        let die = Rect::new(0, 0, 60_000, 50_000);
        let mut grid = RoutingGrid::new(&tech, die, pattern);
        let nets: Vec<SideNet> = (0..120)
            .map(|i| {
                let y = 2_000 + (i as i64 % 10) * 100;
                side_net(vec![Point::new(500, y), Point::new(59_000, 48_000 - y)])
            })
            .collect();
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        // All nets still connected (geometry emitted).
        assert!(r.nets.iter().all(|n| !n.wires.is_empty()));
        assert!(r.wirelength_nm > 0);
    }

    #[test]
    fn back_wirelength_tracked_separately() {
        let (tech, mut grid) = setup();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let nets = vec![
            SideNet {
                net: NetId(0),
                side: Side::Back,
                pins: vec![Point::new(1_000, 1_000), Point::new(11_000, 1_000)],
                is_clock: false,
            },
            side_net(vec![Point::new(1_000, 5_000), Point::new(6_000, 5_000)]),
        ];
        let r = route_nets(&tech, &mut grid, &nets, pattern);
        assert!(r.back_wirelength_nm >= 10_000);
        assert!(r.wirelength_nm > r.back_wirelength_nm);
        assert!(r.nets[0].wires.iter().all(|w| w.layer.side == Side::Back));
    }

    #[test]
    fn longer_nets_ride_higher_layers() {
        let tech = Technology::ffet_3p5t();
        let pattern = RoutingPattern::new(12, 12).unwrap();
        let short = pick_layers(&tech, Side::Front, pattern, 2_000, 800);
        let long = pick_layers(&tech, Side::Front, pattern, 500_000, 800);
        assert!(long.0.index > short.0.index);
    }
}
