use ffet_cells::Library;
use ffet_geom::{Nm, Orientation, Rect};
use ffet_netlist::Netlist;

/// One placement row of the core area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Bottom edge of the row, nm.
    pub y: Nm,
    /// Leftmost site x, nm.
    pub x: Nm,
    /// Number of placement sites (CPP-wide).
    pub sites: i64,
    /// Orientation of cells in the row (alternating N/FS so power rails
    /// abut).
    pub orient: Orientation,
}

/// Routing margin between the core (placement rows) and the die boundary,
/// nm. Boundary ports land on the die edge; the margin gives the pin-access
/// band routing capacity without cell demand underneath — the core-to-IO
/// halo every real floorplan keeps.
pub const CORE_MARGIN_NM: Nm = 1_700;

/// The floorplan: die, core rows, and the utilization bookkeeping the
/// experiments sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Die area (core plus the IO routing margin).
    pub die: Rect,
    /// Core area (the placement rows' bounding box).
    pub core: Rect,
    /// Placement rows, bottom-up.
    pub rows: Vec<Row>,
    /// Requested utilization (cell area / core area).
    pub target_utilization: f64,
    /// Total standard-cell area of the design, nm².
    pub cell_area_nm2: i128,
}

impl Floorplan {
    /// Core area in nm² (the paper's utilization denominator).
    #[must_use]
    pub fn core_area_nm2(&self) -> i128 {
        self.core.area()
    }

    /// Actually achieved utilization (cell area over core area).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.cell_area_nm2 as f64 / self.core_area_nm2() as f64
    }

    /// Total placement sites over all rows.
    #[must_use]
    pub fn total_sites(&self) -> i64 {
        self.rows.iter().map(|r| r.sites).sum()
    }
}

/// Error from [`floorplan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FloorplanError {
    /// Utilization outside `(0, 1]`.
    InvalidUtilization(f64),
    /// The netlist has no instances.
    EmptyDesign,
}

impl std::fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FloorplanError::InvalidUtilization(u) => {
                write!(f, "utilization {u} outside (0, 1]")
            }
            FloorplanError::EmptyDesign => f.write_str("cannot floorplan an empty netlist"),
        }
    }
}

impl std::error::Error for FloorplanError {}

/// Builds a floorplan for `netlist` at the target utilization and aspect
/// ratio (width/height), with the die snapped to whole sites and rows.
///
/// The core area is `cell_area / utilization`, exactly the paper's
/// definition when it sweeps "utilization from 46% to 76%".
///
/// # Errors
///
/// [`FloorplanError`] on invalid utilization or an empty design.
pub fn floorplan(
    netlist: &Netlist,
    library: &Library,
    utilization: f64,
    aspect_ratio: f64,
) -> Result<Floorplan, FloorplanError> {
    if !(utilization > 0.0 && utilization <= 1.0) {
        return Err(FloorplanError::InvalidUtilization(utilization));
    }
    if netlist.instances().is_empty() {
        return Err(FloorplanError::EmptyDesign);
    }
    let tech = library.tech();
    let cpp = tech.cpp();
    let row_h = tech.cell_height();

    let total_width_cpp: i64 = netlist
        .instances()
        .iter()
        .map(|inst| library.cell(inst.cell).width_cpp)
        .sum();
    let cell_area_nm2 = i128::from(total_width_cpp * cpp) * i128::from(row_h);

    // Core area = cell area / utilization; solve W·H = A with W/H = aspect.
    let core_area = cell_area_nm2 as f64 / utilization;
    let height = (core_area / aspect_ratio).sqrt();
    let width = height * aspect_ratio;
    let n_rows = (height / row_h as f64).ceil().max(1.0) as i64;
    let sites_per_row = (width / cpp as f64).ceil().max(1.0) as i64;

    let m = CORE_MARGIN_NM;
    let core = Rect::new(m, m, m + sites_per_row * cpp, m + n_rows * row_h);
    let die = core.inflated(m);
    let rows = (0..n_rows)
        .map(|r| Row {
            y: m + r * row_h,
            x: m,
            sites: sites_per_row,
            orient: if r % 2 == 0 {
                Orientation::North
            } else {
                Orientation::FlippedSouth
            },
        })
        .collect();
    Ok(Floorplan {
        die,
        core,
        rows,
        target_utilization: utilization,
        cell_area_nm2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    fn small_netlist(lib: &Library) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "t");
        let mut x = b.input("x");
        for _ in 0..100 {
            x = b.not(x);
        }
        b.output("y", x);
        b.finish()
    }

    #[test]
    fn utilization_close_to_target() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = small_netlist(&lib);
        for util in [0.4, 0.6, 0.86] {
            let fp = floorplan(&nl, &lib, util, 1.0).unwrap();
            let achieved = fp.utilization();
            assert!(
                (achieved - util).abs() / util < 0.15,
                "target {util}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn higher_utilization_shrinks_core() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = small_netlist(&lib);
        let lo = floorplan(&nl, &lib, 0.5, 1.0).unwrap();
        let hi = floorplan(&nl, &lib, 0.8, 1.0).unwrap();
        assert!(hi.core_area_nm2() < lo.core_area_nm2());
        assert_eq!(lo.cell_area_nm2, hi.cell_area_nm2);
    }

    #[test]
    fn aspect_ratio_respected() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = small_netlist(&lib);
        let fp = floorplan(&nl, &lib, 0.6, 2.0).unwrap();
        let ratio = fp.core.width() as f64 / fp.core.height() as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn rows_alternate_orientation() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = small_netlist(&lib);
        let fp = floorplan(&nl, &lib, 0.6, 1.0).unwrap();
        assert!(fp.rows.len() >= 2);
        assert_ne!(fp.rows[0].orient, fp.rows[1].orient);
    }

    #[test]
    fn rejects_bad_inputs() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = small_netlist(&lib);
        assert!(matches!(
            floorplan(&nl, &lib, 0.0, 1.0),
            Err(FloorplanError::InvalidUtilization(_))
        ));
        let empty = Netlist::new("e");
        assert_eq!(
            floorplan(&empty, &lib, 0.5, 1.0),
            Err(FloorplanError::EmptyDesign)
        );
    }

    #[test]
    fn ffet_core_smaller_than_cfet_at_same_utilization() {
        // The Fig. 8 area gap at equal utilization comes from cell area.
        let ffet_lib = Library::new(Technology::ffet_3p5t());
        let cfet_lib = Library::new(Technology::cfet_4t());
        let nl_f = small_netlist(&ffet_lib);
        let nl_c = small_netlist(&cfet_lib);
        let f = floorplan(&nl_f, &ffet_lib, 0.7, 1.0).unwrap();
        let c = floorplan(&nl_c, &cfet_lib, 0.7, 1.0).unwrap();
        assert!(f.core_area_nm2() < c.core_area_nm2());
    }
}
