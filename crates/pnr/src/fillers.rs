//! Filler insertion and placement-legality checking.
//!
//! After legalization the rows contain gaps (spacing slack, tap
//! fragmentation); production flows fill them with filler cells so the
//! power rails and wells stay continuous. The legality checker is the
//! flow's own referee: every placement the framework produces must pass it.

use crate::floorplan::Floorplan;
use crate::placement::Placement;
use crate::powerplan::PowerPlan;
use ffet_cells::{CellFunction, CellKind, DriveStrength, Library};
use ffet_geom::{Point, Rect};
use ffet_netlist::Netlist;

/// A filler cell to drop into a row gap (DEF `FILL`-style record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filler {
    /// Library cell name (`FILLD1`-class).
    pub macro_name: String,
    /// Lower-left origin, nm.
    pub origin: Point,
    /// Width in sites.
    pub width_sites: i64,
}

/// Computes the filler cells needed to plug every gap between placed cells
/// and Power Tap Cells. Fillers are 1-CPP wide, so any integer gap fills
/// exactly.
#[must_use]
pub fn insert_fillers(
    netlist: &Netlist,
    library: &Library,
    floorplan: &Floorplan,
    powerplan: &PowerPlan,
    placement: &Placement,
) -> Vec<Filler> {
    let tech = library.tech();
    let cpp = tech.cpp();
    let fill_name = library
        .cell_by_kind(CellKind::new(CellFunction::Filler, DriveStrength::D1))
        .map_or_else(|| "FILL".to_owned(), |c| c.name.clone());

    // Occupied intervals (in absolute sites) per row.
    let mut occupied: Vec<Vec<(i64, i64)>> = vec![Vec::new(); floorplan.rows.len()];
    let row_of = |y: i64| -> Option<usize> { floorplan.rows.iter().position(|r| r.y == y) };
    for (i, inst) in netlist.instances().iter().enumerate() {
        let Some(r) = row_of(placement.origins[i].y) else {
            continue;
        };
        let start = placement.origins[i].x / cpp;
        let w = library.cell(inst.cell).width_cpp;
        occupied[r].push((start, start + w));
    }
    for tap in &powerplan.taps {
        occupied[tap.row].push((tap.site, tap.site + tap.width_sites));
    }

    let mut fillers = Vec::new();
    for (r, row) in floorplan.rows.iter().enumerate() {
        let base = row.x / cpp;
        let end = base + row.sites;
        let mut spans = occupied[r].clone();
        spans.sort_unstable();
        let mut cursor = base;
        for (s, e) in spans {
            if s > cursor {
                fillers.push(Filler {
                    macro_name: fill_name.clone(),
                    origin: Point::new(cursor * cpp, row.y),
                    width_sites: s - cursor,
                });
            }
            cursor = cursor.max(e);
        }
        if cursor < end {
            fillers.push(Filler {
                macro_name: fill_name.clone(),
                origin: Point::new(cursor * cpp, row.y),
                width_sites: end - cursor,
            });
        }
    }
    fillers
}

/// A placement-legality violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityViolation {
    /// Instance not aligned to a placement site or row.
    OffGrid {
        /// Offending instance name.
        instance: String,
    },
    /// Instance extends outside its row.
    OutOfRow {
        /// Offending instance name.
        instance: String,
    },
    /// Two instances overlap.
    Overlap {
        /// First instance name.
        a: String,
        /// Second instance name.
        b: String,
    },
    /// Instance overlaps a Power Tap Cell.
    TapOverlap {
        /// Offending instance name.
        instance: String,
    },
}

/// Checks placement legality: site/row alignment, row bounds, no cell–cell
/// or cell–tap overlaps. Returns every violation found (empty = legal).
///
/// Instances counted as placement violations by the legalizer may overlap;
/// the caller decides whether those are acceptable (the flow treats them
/// as DRVs).
#[must_use]
pub fn check_legality(
    netlist: &Netlist,
    library: &Library,
    floorplan: &Floorplan,
    powerplan: &PowerPlan,
    placement: &Placement,
) -> Vec<LegalityViolation> {
    let tech = library.tech();
    let cpp = tech.cpp();
    let row_h = tech.cell_height();
    let mut violations = Vec::new();

    // Per-row sweep for overlaps: collect (start, end, index) per row.
    // Ordered map: violations are reported in ascending row order, never
    // hash order.
    let mut by_row: std::collections::BTreeMap<i64, Vec<(i64, i64, usize)>> =
        std::collections::BTreeMap::new();
    for (i, inst) in netlist.instances().iter().enumerate() {
        let o = placement.origins[i];
        let w = library.cell(inst.cell).width_cpp * cpp;
        if o.x % cpp != 0 || !floorplan.rows.iter().any(|r| r.y == o.y) {
            violations.push(LegalityViolation::OffGrid {
                instance: inst.name.clone(),
            });
            continue;
        }
        let row = floorplan
            .rows
            .iter()
            .find(|r| r.y == o.y)
            .expect("checked above");
        if o.x < row.x || o.x + w > row.x + row.sites * cpp {
            violations.push(LegalityViolation::OutOfRow {
                instance: inst.name.clone(),
            });
        }
        by_row.entry(o.y).or_default().push((o.x, o.x + w, i));
    }

    let tap_rects: Vec<Rect> = powerplan
        .taps
        .iter()
        .map(|t| {
            Rect::from_origin_size(
                Point::new(t.site * cpp, floorplan.rows[t.row].y),
                t.width_sites * cpp,
                row_h,
            )
        })
        .collect();

    for (y, mut spans) in by_row {
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 {
                violations.push(LegalityViolation::Overlap {
                    a: netlist.instances()[w[0].2].name.clone(),
                    b: netlist.instances()[w[1].2].name.clone(),
                });
            }
        }
        for &(x0, x1, i) in &spans {
            let r = Rect::new(x0, y, x1, y + row_h);
            if tap_rects.iter().any(|t| t.overlaps_strictly(&r)) {
                violations.push(LegalityViolation::TapOverlap {
                    instance: netlist.instances()[i].name.clone(),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use crate::placement::place;
    use crate::powerplan::powerplan;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::{RoutingPattern, Technology};

    fn setup() -> (Library, Netlist, Floorplan, PowerPlan, Placement) {
        let lib = Library::new(Technology::ffet_3p5t());
        let mut b = NetlistBuilder::new(&lib, "t");
        let mut x = b.input("x");
        for _ in 0..500 {
            x = b.not(x);
        }
        b.output("y", x);
        let nl = b.finish();
        let fp = floorplan(&nl, &lib, 0.7, 1.0).unwrap();
        let pp = powerplan(&fp, &lib, RoutingPattern::new(12, 12).unwrap());
        let pl = place(&nl, &lib, &fp, &pp, 1);
        (lib, nl, fp, pp, pl)
    }

    #[test]
    fn produced_placements_are_legal() {
        let (lib, nl, fp, pp, pl) = setup();
        assert_eq!(pl.violations, 0);
        let v = check_legality(&nl, &lib, &fp, &pp, &pl);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn fillers_complete_every_row_exactly() {
        let (lib, nl, fp, pp, pl) = setup();
        let fillers = insert_fillers(&nl, &lib, &fp, &pp, &pl);
        // Total sites = cells + taps + fillers.
        let tech = lib.tech();
        let cell_sites: i64 = nl
            .instances()
            .iter()
            .map(|i| lib.cell(i.cell).width_cpp)
            .sum();
        let tap_sites = pp.tap_sites();
        let fill_sites: i64 = fillers.iter().map(|f| f.width_sites).sum();
        assert_eq!(cell_sites + tap_sites + fill_sites, fp.total_sites());
        // Every filler is on-grid and inside its row.
        for f in &fillers {
            assert_eq!(f.origin.x % tech.cpp(), 0);
            assert!(fp.rows.iter().any(|r| r.y == f.origin.y));
            assert!(f.width_sites > 0);
        }
    }

    #[test]
    fn checker_catches_manufactured_overlap() {
        let (lib, nl, fp, pp, mut pl) = setup();
        // Force instance 1 on top of instance 0.
        pl.origins[1] = pl.origins[0];
        let v = check_legality(&nl, &lib, &fp, &pp, &pl);
        assert!(v
            .iter()
            .any(|x| matches!(x, LegalityViolation::Overlap { .. })));
    }

    #[test]
    fn checker_catches_off_grid() {
        let (lib, nl, fp, pp, mut pl) = setup();
        pl.origins[0].x += 7; // not a multiple of CPP
        let v = check_legality(&nl, &lib, &fp, &pp, &pl);
        assert!(v
            .iter()
            .any(|x| matches!(x, LegalityViolation::OffGrid { .. })));
    }
}
