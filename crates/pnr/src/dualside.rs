//! Dual-sided net decomposition — the paper's Algorithm 1.
//!
//! Every FFET output pin is dual-sided (Drain Merge), so a net can be split
//! into a frontside net and a backside net according to where each sink's
//! (redistributed) input pin lives. The two sub-nets are then routed
//! independently on their own layer stacks, with no bridging cells.

use crate::placement::Placement;
use ffet_cells::{Library, PinSides};
use ffet_geom::Point;
use ffet_netlist::{NetId, Netlist, PinRef};
use ffet_tech::{RoutingPattern, Side};

/// One single-sided routing job produced by the decomposition: the source
/// (always first) plus the sinks of one wafer side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideNet {
    /// The original netlist net.
    pub net: NetId,
    /// Which side this sub-net routes on.
    pub side: Side,
    /// Pin positions; `pins[0]` is the source (driver output or input
    /// port), the rest are sinks.
    pub pins: Vec<Point>,
    /// Whether this sub-net is part of the clock network.
    pub is_clock: bool,
}

/// Error from [`decompose_nets`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// A sink pin sits on the backside but the routing pattern has no
    /// backside layers (and this flow uses no bridging cells).
    BacksidePinUnroutable {
        /// The offending net.
        net: String,
    },
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::BacksidePinUnroutable { net } => write!(
                f,
                "net `{net}` has backside sinks but the pattern has no backside layers \
                 (bridging cells are disabled)"
            ),
        }
    }
}

impl std::error::Error for DecomposeError {}

/// Physical position of an instance pin.
#[must_use]
pub fn pin_position(
    netlist: &Netlist,
    library: &Library,
    placement: &Placement,
    pin: PinRef,
) -> Point {
    let tech = library.tech();
    let inst = &netlist.instances()[pin.inst.0 as usize];
    let cell = library.cell(inst.cell);
    let origin = placement.origins[pin.inst.0 as usize];
    Point::new(
        origin.x + cell.pins[pin.pin].offset_cpp * tech.cpp(),
        origin.y + tech.cell_height() / 2,
    )
}

/// Wafer side(s) of an instance pin per the (possibly redistributed)
/// library.
#[must_use]
pub fn pin_sides(netlist: &Netlist, library: &Library, pin: PinRef) -> PinSides {
    let inst = &netlist.instances()[pin.inst.0 as usize];
    library.cell(inst.cell).pins[pin.pin].sides
}

/// Decomposes every routable net into per-side routing jobs (Algorithm 1).
///
/// * The source (a dual-sided output pin in FFET) joins both sub-nets.
/// * Sinks go to the side of their input pin.
/// * Top-level ports anchor on the frontside (package pins bond out
///   through the carrier-side bumps only at the block level; block pins
///   stay front).
///
/// # Errors
///
/// [`DecomposeError::BacksidePinUnroutable`] when a backside sink exists
/// without backside routing layers.
pub fn decompose_nets(
    netlist: &Netlist,
    library: &Library,
    placement: &Placement,
    pattern: RoutingPattern,
) -> Result<Vec<SideNet>, DecomposeError> {
    let mut out = Vec::new();
    for (ni, net) in netlist.nets().iter().enumerate() {
        let net_id = NetId(ni as u32);
        // Source: driver output pin, or an input port position.
        let mut source: Option<Point> = net
            .driver
            .map(|d| pin_position(netlist, library, placement, d));
        let mut port_sinks: Vec<Point> = Vec::new();
        for (pi, port) in netlist.ports().iter().enumerate() {
            if port.net != net_id {
                continue;
            }
            match port.direction {
                ffet_netlist::PortDirection::Input => {
                    source.get_or_insert(placement.port_positions[pi]);
                }
                ffet_netlist::PortDirection::Output => {
                    port_sinks.push(placement.port_positions[pi]);
                }
            }
        }
        let Some(source) = source else { continue };

        let mut front: Vec<Point> = Vec::new();
        let mut back: Vec<Point> = Vec::new();
        for sink in &net.sinks {
            let pos = pin_position(netlist, library, placement, *sink);
            match pin_sides(netlist, library, *sink) {
                PinSides::One(Side::Back) => {
                    if pattern.back_layers() == 0 {
                        return Err(DecomposeError::BacksidePinUnroutable {
                            net: net.name.clone(),
                        });
                    }
                    back.push(pos);
                }
                _ => front.push(pos),
            }
        }
        front.extend(port_sinks);

        if !front.is_empty() {
            let mut pins = Vec::with_capacity(front.len() + 1);
            pins.push(source);
            pins.extend(front);
            out.push(SideNet {
                net: net_id,
                side: Side::Front,
                pins,
                is_clock: net.is_clock,
            });
        }
        if !back.is_empty() {
            let mut pins = Vec::with_capacity(back.len() + 1);
            pins.push(source);
            pins.extend(back);
            out.push(SideNet {
                net: net_id,
                side: Side::Back,
                pins,
                is_clock: net.is_clock,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::floorplan;
    use crate::placement::place;
    use crate::powerplan::powerplan;
    use ffet_netlist::NetlistBuilder;
    use ffet_tech::Technology;

    fn fanout_netlist(lib: &Library) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "fan");
        let x = b.input("x");
        let src = b.not(x);
        let mut last = src;
        for _ in 0..20 {
            last = b.nand2(src, last);
        }
        b.output("y", last);
        b.finish()
    }

    fn placed(lib: &Library, nl: &Netlist) -> Placement {
        let fp = floorplan(nl, lib, 0.6, 1.0).unwrap();
        let pp = powerplan(&fp, lib, lib.tech().max_routing_pattern());
        place(nl, lib, &fp, &pp, 1)
    }

    #[test]
    fn all_front_when_pins_front() {
        let lib = Library::new(Technology::ffet_3p5t());
        let nl = fanout_netlist(&lib);
        let pl = placed(&lib, &nl);
        let nets = decompose_nets(&nl, &lib, &pl, RoutingPattern::new(12, 0).unwrap()).unwrap();
        assert!(nets.iter().all(|n| n.side == Side::Front));
    }

    #[test]
    fn balanced_redistribution_splits_nets() {
        let lib = {
            let mut l = Library::new(Technology::ffet_3p5t());
            l.redistribute_input_pins(0.5, 42).unwrap();
            l
        };
        let nl = fanout_netlist(&lib);
        let pl = placed(&lib, &nl);
        let nets = decompose_nets(&nl, &lib, &pl, RoutingPattern::new(6, 6).unwrap()).unwrap();
        let back = nets.iter().filter(|n| n.side == Side::Back).count();
        let front = nets.iter().filter(|n| n.side == Side::Front).count();
        assert!(back > 0, "some sub-nets must land on the backside");
        assert!(front > 0);
        // Every sub-net has a source plus at least one sink.
        assert!(nets.iter().all(|n| n.pins.len() >= 2));
    }

    #[test]
    fn backside_pins_without_layers_is_an_error() {
        let lib = {
            let mut l = Library::new(Technology::ffet_3p5t());
            l.redistribute_input_pins(0.5, 42).unwrap();
            l
        };
        let nl = fanout_netlist(&lib);
        let pl = placed(&lib, &nl);
        let err = decompose_nets(&nl, &lib, &pl, RoutingPattern::new(12, 0).unwrap()).unwrap_err();
        assert!(matches!(err, DecomposeError::BacksidePinUnroutable { .. }));
    }

    #[test]
    fn sink_counts_preserved_across_decomposition() {
        let lib = {
            let mut l = Library::new(Technology::ffet_3p5t());
            l.redistribute_input_pins(0.3, 7).unwrap();
            l
        };
        let nl = fanout_netlist(&lib);
        let pl = placed(&lib, &nl);
        let nets = decompose_nets(&nl, &lib, &pl, RoutingPattern::new(8, 4).unwrap()).unwrap();
        let decomposed_sinks: usize = nets.iter().map(|n| n.pins.len() - 1).sum();
        let original_sinks: usize = nl.nets().iter().map(|n| n.sinks.len()).sum();
        let port_outputs = nl
            .ports()
            .iter()
            .filter(|p| p.direction == ffet_netlist::PortDirection::Output)
            .count();
        assert_eq!(decomposed_sinks, original_sinks + port_outputs);
    }
}
